// Two more access patterns from the paper's Table 1 / §3.2 in action:
//
//  * Adjacency — sparse matrix-vector multiplication: the dense vector is
//    sporadically accessed and therefore replicated; the sparse structure
//    partitions by variable-size edge ranges (CsrArray) and the output rows
//    align with the partition.
//  * Reductive (Dynamic) — predicate-based array filtering: each GPU appends
//    a runtime-determined number of results, and the gather concatenates
//    them "from each GPU to a single output array".
#include <cstdio>
#include <random>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

using namespace maps::multi;

namespace {

// --- SpMV over the Adjacency pattern -----------------------------------------

struct SpmvKernel {
  // CSR row extents travel as a Window1D (radius 1 covers row_ptr[i+1]);
  // cols/vals are replicated; x is the Adjacency-accessed dense vector.
  template <typename RowPtr, typename Cols, typename Vals, typename X,
            typename Out>
  void operator()(const maps::ThreadContext&, RowPtr& row_ptr, Cols& cols,
                  Vals& vals, X& x, Out& y) const {
    MAPS_FOREACH(row, y) {
      const auto begin = static_cast<std::size_t>(row_ptr.at(row, 0));
      const auto end = static_cast<std::size_t>(row_ptr.at(row, 1));
      float acc = 0.0f;
      for (std::size_t e = begin; e < end; ++e) {
        acc += vals[e] * x[static_cast<std::size_t>(cols[e])];
      }
      *row = acc;
    }
  }
};

// --- Predicate filter over Reductive (Dynamic) --------------------------------

struct FilterKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& values, Out& out) const {
    MAPS_FOREACH(it, out) {
      const float v = values.at(it, 0);
      if (v > 0.8f) {
        out.append(v);
      }
    }
  }
};

} // namespace

int main() {
  sim::Node node(sim::homogeneous_node(sim::titan_black(), 4));
  Scheduler sched(node);

  // Sparse matrix: tridiagonal 4096x4096.
  const std::size_t n = 4096;
  std::vector<int> row_ptr(n + 1), cols;
  std::vector<float> vals, x(n), y(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    row_ptr[i] = static_cast<int>(cols.size());
    for (long d = -1; d <= 1; ++d) {
      const long j = static_cast<long>(i) + d;
      if (j >= 0 && j < static_cast<long>(n)) {
        cols.push_back(static_cast<int>(j));
        vals.push_back(d == 0 ? 2.0f : -1.0f);
      }
    }
    x[i] = static_cast<float>(i % 7);
  }
  row_ptr[n] = static_cast<int>(cols.size());

  Vector<int> RowPtr(n + 1, "row_ptr");
  Vector<int> Cols(cols.size(), "cols");
  Vector<float> Vals(vals.size(), "vals"), X(n, "x"), Y(n, "y");
  RowPtr.Bind(row_ptr.data());
  Cols.Bind(cols.data());
  Vals.Bind(vals.data());
  X.Bind(x.data());
  Y.Bind(y.data());

  sched.Invoke(SpmvKernel{}, Window1D<int, 1, maps::CLAMP>(RowPtr),
               CsrArray<int>(Cols, row_ptr.data()),
               CsrArray<float>(Vals, row_ptr.data()), Adjacency<float>(X),
               StructuredInjective<float, 1>(Y));
  sched.Gather(Y);

  // Verify one interior row: y[i] = -x[i-1] + 2x[i] - x[i+1].
  const std::size_t i = 1234;
  const float expect = -x[i - 1] + 2 * x[i] - x[i + 1];
  std::printf("SpMV on %d GPUs: y[%zu]=%.1f (expected %.1f)\n",
              node.device_count(), i, y[i], expect);

  // Filter: keep values > 0.8 from a random array.
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  const std::size_t elems = 100000;
  std::vector<float> input(elems), output(elems, 0.0f);
  std::size_t expected = 0;
  for (auto& v : input) {
    v = dist(rng);
    expected += v > 0.8f ? 1 : 0;
  }
  Vector<float> In(elems, "input"), Out(elems, "filtered");
  In.Bind(input.data());
  Out.Bind(output.data());
  sched.Invoke(FilterKernel{}, Window1D<float, 0, maps::NO_CHECKS>(In),
               ReductiveDynamic<float>(Out));
  sched.Gather(Out);
  std::printf("filter on %d GPUs: kept %zu of %zu values (expected %zu)\n",
              node.device_count(), sched.gathered_count(Out), elems, expected);

  return (y[i] == expect && sched.gathered_count(Out) == expected) ? 0 : 1;
}
