// Non-negative matrix factorization on multiple GPUs (paper §6.2):
// factorizes a planted low-rank matrix with the Fig 12 task graph and shows
// the two automatic inter-GPU exchange points per iteration.
#include <cstdio>

#include "multi/maps_multi.hpp"
#include "nmf/nmf.hpp"
#include "sim/presets.hpp"

using namespace maps::multi;

int main() {
  const nmf::Shape shape{256, 96, 12};
  auto v = nmf::synthetic_v(shape);
  std::vector<float> w, h;

  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
  Scheduler sched(node);

  const nmf::Result r = nmf::run_maps(sched, v, w, h, shape, 60);

  std::printf("NMF %zux%zu with k=%zu on %d GPUs\n", shape.n, shape.m,
              shape.k, node.device_count());
  std::printf("relative reconstruction error after 60 iterations: %.4f\n",
              r.final_error);
  std::printf("simulated: %.2f ms total, %.1f iterations/s\n", r.sim_ms,
              r.iterations_per_s);
  std::printf("inter-GPU exchange volume: %.2f MiB d2h, %.2f MiB h2d "
              "(Aux/Acc gathers + H broadcasts)\n",
              node.stats().bytes_d2h / 1048576.0,
              node.stats().bytes_h2d / 1048576.0 -
                  static_cast<double>(v.size() * 4) / 1048576.0);
  return r.final_error < 0.1 ? 0 : 1;
}
