// Radix-2 FFT across multiple GPUs — the workload the paper's Table 1 and
// §3.2 use to motivate the Block/Permutation input patterns and the
// Unstructured Injective output pattern.
//
// Stage structure: log2(n) decimation-in-frequency butterfly passes over an
// interleaved re/im array. Butterflies span the whole array, so the input
// of each pass is a Block(1D) (every thread-block may require the entire
// buffer, Table 1) while the outputs stay Structured Injective; the final
// bit-reversal writes to uncorrelated indices and uses Unstructured
// Injective, which duplicates the output datum and merges the scattered
// writes on gather (§3.2).
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

using namespace maps::multi;

namespace {

constexpr std::size_t kN = 1 << 11;

/// One butterfly pass with span `half`; work item j covers one float of the
/// interleaved array (element j/2, component j%2).
struct ButterflyPass {
  std::size_t half = 1;
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& out) const {
    MAPS_FOREACH(it, out) {
      const std::size_t j = it.work_y();
      const std::size_t i = j / 2;
      const std::size_t off = i % (2 * half);
      const std::size_t base = (i / (2 * half)) * 2 * half;
      const std::size_t a = base + off % half;
      const std::size_t b = a + half;
      const double ang = -M_PI * static_cast<double>(off % half) /
                         static_cast<double>(half);
      const std::complex<double> w(std::cos(ang), std::sin(ang));
      const std::complex<double> va(x[2 * a], x[2 * a + 1]);
      const std::complex<double> vb(x[2 * b], x[2 * b + 1]);
      // Decimation in frequency: top half adds, bottom half twiddles the
      // difference.
      const std::complex<double> r =
          off < half ? va + vb : (va - vb) * w;
      *it = static_cast<float>(j % 2 == 0 ? r.real() : r.imag());
    }
  }
};

/// Final bit-reversal: scattered, uncorrelated writes.
struct BitReverseScatter {
  int bits = 11;
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& out) const {
    MAPS_FOREACH(it, out) {
      const std::size_t j = it.work_y();
      const std::size_t i = j / 2;
      std::size_t r = 0;
      for (int b = 0; b < bits; ++b) {
        r = (r << 1) | ((i >> b) & 1);
      }
      out.write(2 * r + j % 2, x[j]);
    }
  }
};

std::vector<std::complex<double>>
reference_dft(const std::vector<float>& interleaved) {
  const std::size_t n = interleaved.size() / 2;
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += std::complex<double>(interleaved[2 * t], interleaved[2 * t + 1]) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

} // namespace

int main() {
  std::vector<float> a(2 * kN, 0.0f), b(2 * kN, 0.0f), result(2 * kN, 0.0f);
  for (std::size_t i = 0; i < kN; ++i) {
    a[2 * i] = static_cast<float>(
        std::sin(2.0 * M_PI * 50.0 * static_cast<double>(i) / kN) +
        0.5 * std::cos(2.0 * M_PI * 300.0 * static_cast<double>(i) / kN));
  }

  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
  Scheduler sched(node);

  Vector<float> A(2 * kN, "A"), B(2 * kN, "B"), R(2 * kN, "R");
  A.Bind(a.data());
  B.Bind(b.data());
  R.Bind(result.data());

  using In = Block1D<float>;
  using Out = StructuredInjective<float, 1>;
  // §4.2: declare every task up front — each array is both a replicated
  // input (whole copy) and an aligned output across the pass chain.
  sched.AnalyzeCall(In(A), Out(B));
  sched.AnalyzeCall(In(B), Out(A));
  sched.AnalyzeCall(In(A), UnstructuredInjective<float>(R));
  sched.AnalyzeCall(In(B), UnstructuredInjective<float>(R));
  int pass = 0;
  for (std::size_t half = kN / 2; half >= 1; half /= 2, ++pass) {
    Vector<float>& in = (pass % 2 == 0) ? A : B;
    Vector<float>& out = (pass % 2 == 0) ? B : A;
    ButterflyPass k;
    k.half = half;
    sched.Invoke(k, In(in), Out(out));
  }
  Vector<float>& last = (pass % 2 == 0) ? A : B;
  BitReverseScatter scatter;
  sched.Invoke(scatter, In(last), UnstructuredInjective<float>(R));
  sched.Gather(R);

  const auto ref = reference_dft(a);
  double max_err = 0;
  for (std::size_t k = 0; k < kN; ++k) {
    max_err = std::max(
        max_err, std::abs(std::complex<double>(result[2 * k],
                                               result[2 * k + 1]) -
                          ref[k]));
  }
  std::printf("%zu-point FFT on %d GPUs: max |error| vs direct DFT = %.3e\n",
              kN, node.device_count(), max_err);
  std::printf("bins 50 and 300 dominate: |X[50]|=%.0f |X[300]|=%.0f "
              "|X[37]|=%.2f\n",
              std::hypot(result[100], result[101]),
              std::hypot(result[600], result[601]),
              std::hypot(result[74], result[75]));
  return max_err < 1e-1 ? 0 : 1;
}
