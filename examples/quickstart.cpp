// Quickstart: SAXPY on multiple (simulated) GPUs in ~30 lines of user code.
//
// Demonstrates the core MAPS-Multi workflow from the paper's Table 2:
//   1. create the node and scheduler,
//   2. Bind data to host buffers,
//   3. run an unmodified BLAS routine across all GPUs (§4.6, Fig 5) —
//      the framework partitions the work and infers every transfer,
//   4. Gather the result.
#include <cstdio>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"
#include "simblas/simblas.hpp"

using namespace maps::multi;

int main() {
  // A node of four GTX 780s, as in the paper's experimental setup (Table 3).
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
  Scheduler sched(node);

  constexpr std::size_t n = 1 << 20;
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i % 100);
    y[i] = 1.0f;
  }

  // Define data structures and bind existing host buffers (Fig 2a style).
  Vector<float> X(n, "x"), Y(n, "y");
  X.Bind(x.data());
  Y.Bind(y.data());

  // y = 2.5 * x + y across all four GPUs: x and (old) y are consumed
  // aligned with the partition; y is produced Structured Injective.
  sched.InvokeUnmodified(simblas::SaxpyRoutine, nullptr, Work{n},
                         Block2D<float>(static_cast<Datum&>(X)),
                         Block2D<float>(static_cast<Datum&>(Y)),
                         StructuredInjective<float, 1>(Y),
                         Constant<float>(2.5f));
  sched.Gather(Y);

  std::printf("y[0]=%.1f y[123456]=%.1f (expected %.1f)\n", y[0], y[123456],
              2.5f * x[123456] + 1.0f);
  std::printf("simulated time: %.3f ms on %d GPUs; %llu kernels, %.1f MiB "
              "host->device\n",
              node.now_ms(), node.device_count(),
              static_cast<unsigned long long>(node.stats().kernels_launched),
              static_cast<double>(node.stats().bytes_h2d) / (1 << 20));
  return y[123456] == 2.5f * x[123456] + 1.0f ? 0 : 1;
}
