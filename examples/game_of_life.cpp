// The paper's running example (Fig 2): Conway's Game of Life as a
// MAPS-Multi kernel — Window(2D) input, Structured Injective output, double
// buffering, automatic boundary exchanges and ILP.
//
// Compare with the paper's observation that this host code is ~11 lines
// versus ~107 lines for an equivalent hand-written multi-GPU program.
#include <cstdio>
#include <random>
#include <vector>

#include "apps/game_of_life.hpp"
#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

using namespace maps::multi;

int main() {
  constexpr std::size_t width = 512, height = 512;
  constexpr int iterations = 64;

  std::mt19937 rng(1234);
  std::vector<int> host_a(width * height), host_b(width * height, 0);
  for (auto& c : host_a) {
    c = static_cast<int>(rng() & 1u);
  }
  const std::vector<int> initial = host_a;

  sim::Node node(sim::homogeneous_node(sim::titan_black(), 4));
  Scheduler sched(node);

  // --- The Fig 2a host code ------------------------------------------------
  using Win2D = Window2D<int, 1, maps::WRAP, 4, 2>;
  using SMat = StructuredInjective<int, 2, 4, 2>;

  Matrix<int> A(width, height), B(width, height);
  A.Bind(host_a.data());
  B.Bind(host_b.data());

  sched.AnalyzeCall(Win2D(A), SMat(B));
  sched.AnalyzeCall(Win2D(B), SMat(A));

  for (int i = 0; i < iterations; ++i) {
    sched.Invoke(apps::gol::maps_cost_hints(), apps::gol::MapsTick<4, 2>{},
                 Win2D((i % 2) ? B : A), SMat((i % 2) ? A : B));
  }

  if (iterations % 2 == 0) {
    sched.Gather(A);
  } else {
    sched.Gather(B);
  }
  // -------------------------------------------------------------------------

  // Verify against the sequential reference.
  std::vector<int> reference = initial;
  for (int i = 0; i < iterations; ++i) {
    apps::gol::reference_tick(reference, width, height);
  }
  const std::vector<int>& result = (iterations % 2 == 0) ? host_a : host_b;
  const bool ok = result == reference;

  long population = 0;
  for (int c : result) {
    population += c;
  }
  std::printf("Game of Life %zux%zu, %d iterations on %d GPUs\n", width,
              height, iterations, node.device_count());
  std::printf("population: %ld, matches CPU reference: %s\n", population,
              ok ? "yes" : "NO");
  std::printf("simulated time: %.3f ms; boundary rows exchanged p2p: %.1f "
              "KiB\n",
              node.now_ms(),
              static_cast<double>(node.stats().bytes_p2p) / 1024.0);
  return ok ? 0 : 1;
}
