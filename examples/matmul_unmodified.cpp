// Unmodified GPU routines (paper §4.6, Fig 5): running a tuned CUBLAS-style
// SGEMM on multiple GPUs by declaring its access patterns — Block(2D) for
// the first operand, Block(2D-Transposed) for the second, Structured
// Injective for the output. The framework derives segmentation and keeps
// chained results resident on the devices (§5.4).
#include <cstdio>
#include <random>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"
#include "simblas/simblas.hpp"

using namespace maps::multi;

int main() {
  constexpr std::size_t n = 256;
  constexpr int chain = 8;

  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-0.05f, 0.05f);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0f);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
  }
  b[0] += 1.0f; // keep the chain numerically tame

  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
  Scheduler sched(node);

  Matrix<float> A(n, n, "A"), B(n, n, "B"), C(n, n, "C");
  A.Bind(a.data());
  B.Bind(b.data());
  C.Bind(c.data());

  // C = A x B, then keep multiplying by B with results staying on the GPUs:
  // after the first call, the location monitor finds every operand resident
  // and no transfer is issued.
  simblas::Gemm(sched, A, B, C);
  sched.WaitAll();
  const auto h2d_after_first = node.stats().bytes_h2d;
  for (int i = 1; i < chain; i += 2) {
    simblas::Gemm(sched, C, B, A);
    simblas::Gemm(sched, A, B, C);
  }
  sched.WaitAll();
  const bool resident = node.stats().bytes_h2d == h2d_after_first;
  sched.Gather(C);

  std::printf("chained %d SGEMMs (%zu^3) on %d GPUs\n", chain + 1, n,
              node.device_count());
  std::printf("transfers after first call: %s (paper §5.4: chained kernels "
              "stay resident)\n",
              resident ? "none" : "UNEXPECTED");
  std::printf("C[0]=%.4f, simulated time: %.3f ms\n", c[0], node.now_ms());
  return resident ? 0 : 1;
}
