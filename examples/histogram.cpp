// Histogram with device-level aggregators (the paper's Fig 4 kernel):
// Window(2D, 1x1) input, Reductive Static output, automatic duplication and
// sum-aggregation across GPUs.
#include <cstdio>
#include <random>
#include <vector>

#include "apps/histogram.hpp"
#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

using namespace maps::multi;

int main() {
  constexpr std::size_t width = 1024, height = 768;

  std::mt19937 rng(99);
  std::vector<int> image(width * height);
  for (auto& p : image) {
    p = static_cast<int>(rng() % 256);
  }
  std::vector<int> hist(apps::histogram::kBins, 0);

  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
  Scheduler sched(node);

  Matrix<int> img(width, height, "image");
  Vector<int> h(apps::histogram::kBins, "hist");
  img.Bind(image.data());
  h.Bind(hist.data());

  // The Fig 4 kernel with ILP=8; each GPU accumulates a private copy in its
  // device-level aggregator, Gather sums the partials (§3.2, §4.5.2-4.5.3).
  using In = Window2D<int, 0, maps::NO_CHECKS, 8>;
  using Out = ReductiveStatic<int, apps::histogram::kBins, 8>;
  sched.AnalyzeCall(In(img), Out(h));
  sched.Invoke(apps::histogram::MapsKernel<8>{}, In(img), Out(h));
  sched.Gather(h);

  const std::vector<int> expected = apps::histogram::reference(image);
  const bool ok = hist == expected;
  long total = 0;
  for (int b : hist) {
    total += b;
  }
  std::printf("histogram of %zux%zu image on %d GPUs: %ld pixels binned, "
              "bin[42]=%d, correct: %s\n",
              width, height, node.device_count(), total, hist[42],
              ok ? "yes" : "NO");
  std::printf("simulated time: %.3f ms\n", node.now_ms());
  return ok ? 0 : 1;
}
