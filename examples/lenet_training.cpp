// Deep learning on multiple GPUs (paper §6.1): trains LeNet on synthetic
// digits with each of the multi-GPU strategies of Fig 11 and reports
// accuracy and simulated throughput.
#include <cstdio>

#include "multi/maps_multi.hpp"
#include "nn/trainer.hpp"
#include "sim/presets.hpp"

using namespace maps::multi;

int main() {
  // A small LeNet so the functional run stays quick; the fig11 benchmark
  // runs the paper's full 28x28 network at batch 2048 in TimingOnly mode.
  nn::LeNetConfig cfg;
  cfg.image = 14;
  cfg.kernel = 3;
  cfg.conv1_filters = 4;
  cfg.conv2_filters = 6;
  cfg.fc1_units = 24;

  nn::SyntheticDigits data(512, cfg.image, cfg.classes, 7);

  for (nn::Strategy strategy :
       {nn::Strategy::DataParallel, nn::Strategy::Hybrid,
        nn::Strategy::TorchLike}) {
    sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
    Scheduler sched(node);
    nn::LeNetParams params(cfg, 1);
    nn::Trainer trainer(sched, params, data, /*batch=*/64, strategy, 0.2f);
    const nn::TrainResult r = trainer.train(60);
    const std::size_t correct =
        nn::lenet_eval(params, data.images(0), data.labels(0), 256);
    std::printf("%-32s loss=%.3f  accuracy=%zu/256  sim %.1f kimg/s\n",
                nn::to_string(strategy), r.final_loss, correct,
                r.images_per_second / 1e3);
  }
  return 0;
}
