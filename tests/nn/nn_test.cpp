// Deep-learning substrate tests: layer math (numerical gradient checks),
// reference convergence, and the multi-GPU trainers' functional equivalence
// across strategies and device counts (§6.1).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/lenet.hpp"
#include "nn/trainer.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

nn::LeNetConfig tiny_config() {
  nn::LeNetConfig cfg;
  cfg.image = 14;
  cfg.kernel = 3;
  cfg.conv1_filters = 4;
  cfg.conv2_filters = 6;
  cfg.fc1_units = 20;
  cfg.classes = 10;
  return cfg;
}

// --- Layer gradient checks ----------------------------------------------------

TEST(LayersTest, FcGradientsMatchNumerical) {
  const std::size_t batch = 3, in = 5, out = 4;
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> x(batch * in), w(out * in), b(out), y(batch * out);
  for (auto* v : {&x, &w}) {
    for (auto& e : *v) {
      e = dist(rng);
    }
  }
  for (auto& e : b) {
    e = dist(rng);
  }

  // Scalar objective: sum(y^2)/2 => dy = y.
  auto objective = [&] {
    nn::fc_forward(x.data(), w.data(), b.data(), y.data(), batch, in, out,
                   false);
    float s = 0;
    for (float v : y) {
      s += v * v;
    }
    return 0.5f * s;
  };
  objective();
  std::vector<float> dy = y;
  std::vector<float> dx(batch * in), dw(out * in, 0.0f), db(out, 0.0f);
  nn::fc_backward(x.data(), y.data(), w.data(), dy.data(), dx.data(),
                  dw.data(), db.data(), batch, in, out, false);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < w.size(); i += 3) {
    const float orig = w[i];
    w[i] = orig + eps;
    const float fp = objective();
    w[i] = orig - eps;
    const float fm = objective();
    w[i] = orig;
    EXPECT_NEAR((fp - fm) / (2 * eps), dw[i], 2e-2f) << "dw[" << i << "]";
  }
  for (std::size_t i = 0; i < x.size(); i += 2) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float fp = objective();
    x[i] = orig - eps;
    const float fm = objective();
    x[i] = orig;
    EXPECT_NEAR((fp - fm) / (2 * eps), dx[i], 2e-2f) << "dx[" << i << "]";
  }
}

TEST(LayersTest, ConvGradientsMatchNumerical) {
  nn::ConvShape s{2, 6, 6, 3, 3};
  const std::size_t batch = 2;
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> dist(-0.5f, 0.5f);
  std::vector<float> x(batch * s.in_size()), w(s.weight_count()), b(s.out_c),
      y(batch * s.out_size());
  for (auto& e : x) {
    e = dist(rng);
  }
  for (auto& e : w) {
    e = dist(rng);
  }
  for (auto& e : b) {
    e = dist(rng);
  }
  auto objective = [&] {
    nn::conv_forward(x.data(), w.data(), b.data(), y.data(), batch, s, false);
    float v = 0;
    for (float e : y) {
      v += e * e;
    }
    return 0.5f * v;
  };
  objective();
  std::vector<float> dy = y;
  std::vector<float> dx(x.size()), dw(w.size(), 0.0f), db(b.size(), 0.0f);
  nn::conv_backward_filter(x.data(), dy.data(), y.data(), dw.data(), db.data(),
                           batch, s, false);
  nn::conv_backward_data(dy.data(), y.data(), w.data(), dx.data(), batch, s,
                         false);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < w.size(); i += 5) {
    const float orig = w[i];
    w[i] = orig + eps;
    const float fp = objective();
    w[i] = orig - eps;
    const float fm = objective();
    w[i] = orig;
    EXPECT_NEAR((fp - fm) / (2 * eps), dw[i], 3e-2f) << "dw[" << i << "]";
  }
  for (std::size_t i = 0; i < x.size(); i += 17) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float fp = objective();
    x[i] = orig - eps;
    const float fm = objective();
    x[i] = orig;
    EXPECT_NEAR((fp - fm) / (2 * eps), dx[i], 3e-2f) << "dx[" << i << "]";
  }
}

TEST(LayersTest, MaxPoolRoutesGradientToArgmax) {
  const float x[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  float y[4];
  nn::maxpool_forward(x, y, 1, 1, 4, 4);
  EXPECT_FLOAT_EQ(y[0], 6);
  EXPECT_FLOAT_EQ(y[3], 16);
  const float dy[4] = {1, 2, 3, 4};
  float dx[16];
  nn::maxpool_backward(x, dy, dx, 1, 1, 4, 4);
  EXPECT_FLOAT_EQ(dx[5], 1);  // position of 6
  EXPECT_FLOAT_EQ(dx[15], 4); // position of 16
  EXPECT_FLOAT_EQ(dx[0], 0);
}

TEST(LayersTest, SoftmaxGradientSumsToZeroPerSample) {
  const float logits[6] = {1.0f, 2.0f, 0.5f, -1.0f, 0.0f, 1.0f};
  const int labels[2] = {1, 2};
  float d[6];
  float loss = 0;
  nn::softmax_xent(logits, labels, d, &loss, 2, 2, 3);
  EXPECT_GT(loss, 0.0f);
  EXPECT_NEAR(d[0] + d[1] + d[2], 0.0f, 1e-6f);
  EXPECT_LT(d[1], 0.0f); // true class pulls down
}

// --- Reference training --------------------------------------------------------

TEST(LeNetTest, ParameterCountMatchesClassicLeNet) {
  nn::LeNetConfig cfg; // the paper's 28x28 LeNet
  EXPECT_EQ(cfg.param_count(), 431080u);
  EXPECT_EQ(cfg.fc1_inputs(), 800u);
}

TEST(LeNetTest, ReferenceTrainingReducesLossAndLearns) {
  const nn::LeNetConfig cfg = tiny_config();
  nn::SyntheticDigits data(512, cfg.image, cfg.classes, 11);
  nn::LeNetParams params(cfg, 2);
  nn::LeNetActivations acts(cfg, 64);
  float first = 0, last = 0;
  for (int it = 0; it < 60; ++it) {
    params.zero_grads();
    const std::size_t off = static_cast<std::size_t>(it % 8) * 64;
    const float loss =
        nn::lenet_train_step(params, acts, data.images(off), data.labels(off),
                             64, 64) /
        64.0f;
    params.sgd(0.2f);
    if (it == 0) {
      first = loss;
    }
    last = loss;
  }
  EXPECT_LT(last, 0.6f * first);
  const std::size_t correct =
      nn::lenet_eval(params, data.images(0), data.labels(0), 256);
  EXPECT_GT(correct, 170u); // >66% on seen-distribution data
}

// --- Multi-GPU trainers ---------------------------------------------------------

struct TrainCase {
  nn::Strategy strategy;
  int devices;
};

class TrainerTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrainerTest, TrainsAndReducesLoss) {
  const auto strategy = static_cast<nn::Strategy>(std::get<0>(GetParam()));
  const int devices = std::get<1>(GetParam());
  const nn::LeNetConfig cfg = tiny_config();
  nn::SyntheticDigits data(256, cfg.image, cfg.classes, 21);
  nn::LeNetParams params(cfg, 3);

  sim::Node node(sim::homogeneous_node(sim::gtx780(), devices));
  Scheduler sched(node);
  nn::Trainer trainer(sched, params, data, /*batch=*/64, strategy, 0.2f);

  const nn::TrainResult r1 = trainer.train(1);
  const nn::TrainResult r2 = trainer.train(49);
  EXPECT_GT(r2.images_per_second, 0.0);
  EXPECT_LT(r2.final_loss, 0.7f * r1.final_loss)
      << nn::to_string(strategy) << " on " << devices << " devices";
  const std::size_t correct =
      nn::lenet_eval(params, data.images(0), data.labels(0), 128);
  EXPECT_GT(correct, 85u) << nn::to_string(strategy);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesByDevices, TrainerTest,
    ::testing::Combine(::testing::Values(1, 2, 3), // DataParallel..TorchLike
                       ::testing::Values(1, 2, 4)));

TEST(TrainerTest, MultiGpuGradientsMatchSingleGpu) {
  // One data-parallel iteration on 4 GPUs must produce (numerically) the
  // same gradients as the CPU reference on the full batch.
  const nn::LeNetConfig cfg = tiny_config();
  nn::SyntheticDigits data(128, cfg.image, cfg.classes, 31);

  nn::LeNetParams ref(cfg, 7);
  nn::LeNetActivations acts(cfg, 64);
  ref.zero_grads();
  nn::lenet_train_step(ref, acts, data.images(0), data.labels(0), 64, 64);

  nn::LeNetParams multi(cfg, 7);
  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
  Scheduler sched(node);
  nn::Trainer trainer(sched, multi, data, 64, nn::Strategy::DataParallel,
                      0.0f); // lr = 0: keep weights fixed, inspect gradients
  trainer.train(1);

  ASSERT_EQ(ref.g_fc2_w.size(), multi.g_fc2_w.size());
  for (std::size_t i = 0; i < ref.g_fc2_w.size(); i += 7) {
    EXPECT_NEAR(ref.g_fc2_w[i], multi.g_fc2_w[i], 1e-4f) << i;
  }
  for (std::size_t i = 0; i < ref.g_conv1_w.size(); ++i) {
    EXPECT_NEAR(ref.g_conv1_w[i], multi.g_conv1_w[i], 1e-4f) << i;
  }
}

TEST(TrainerTest, DataParallelExchangesParameterGradients) {
  // §6.1: data parallelism "requires each GPU ... to exchange all the
  // parameters in each iteration" — d2h volume per iteration ~= G x params.
  const nn::LeNetConfig cfg = tiny_config();
  nn::SyntheticDigits data(256, cfg.image, cfg.classes, 41);
  nn::LeNetParams params(cfg, 3);
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
  Scheduler sched(node);
  nn::Trainer trainer(sched, params, data, 64, nn::Strategy::DataParallel);
  trainer.train(1);
  node.reset_stats();
  trainer.train(2);
  const auto bytes_per_iter = node.stats().bytes_d2h / 2;
  const auto param_bytes = cfg.param_count() * sizeof(float);
  EXPECT_GE(bytes_per_iter, 4 * param_bytes);
  EXPECT_LE(bytes_per_iter, 5 * param_bytes); // + loss, rounding
}

} // namespace
