// NMF tests: multiplicative updates converge on planted low-rank data for
// both the MAPS-Multi implementation (every device count) and the
// NMF-mGPU-style baseline, with matching results; transfer accounting
// matches the paper's "exchanges twice per iteration" claim (§6.2).
#include <gtest/gtest.h>

#include "nmf/nmf.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

nmf::Shape tiny_shape() { return nmf::Shape{96, 40, 8}; }

class NmfDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(NmfDevicesTest, ConvergesOnPlantedLowRankData) {
  const int devices = GetParam();
  const nmf::Shape shape = tiny_shape();
  auto v = nmf::synthetic_v(shape);
  std::vector<float> w, h;

  sim::Node node(sim::homogeneous_node(sim::gtx980(), devices));
  Scheduler sched(node);
  const nmf::Result r = nmf::run_maps(sched, v, w, h, shape, 40);
  EXPECT_LT(r.final_error, 0.08) << "relative error after 40 iterations";
  EXPECT_GT(r.iterations_per_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, NmfDevicesTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(NmfTest, MultiGpuMatchesSingleGpuFactorization) {
  const nmf::Shape shape = tiny_shape();
  auto v = nmf::synthetic_v(shape);

  std::vector<float> w1, h1, w4, h4;
  {
    sim::Node node(sim::homogeneous_node(sim::gtx780(), 1));
    Scheduler sched(node);
    nmf::run_maps(sched, v, w1, h1, shape, 10);
  }
  {
    sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
    Scheduler sched(node);
    nmf::run_maps(sched, v, w4, h4, shape, 10);
  }
  ASSERT_EQ(w1.size(), w4.size());
  for (std::size_t i = 0; i < w1.size(); i += 13) {
    EXPECT_NEAR(w1[i], w4[i], 1e-3f) << i;
  }
  for (std::size_t i = 0; i < h1.size(); i += 7) {
    EXPECT_NEAR(h1[i], h4[i], 1e-3f) << i;
  }
}

TEST(NmfTest, BaselineConvergesToo) {
  const nmf::Shape shape = tiny_shape();
  auto v = nmf::synthetic_v(shape);
  std::vector<float> w, h;
  sim::Node node(sim::homogeneous_node(sim::titan_black(), 2));
  const nmf::Result r = nmf::run_mgpu_baseline(node, v, w, h, shape, 40, 2);
  EXPECT_LT(r.final_error, 0.08);
}

TEST(NmfTest, ExchangesTwicePerIterationOnly) {
  // §6.2: "the inter-GPU memory exchanges, automatically inferred by
  // MAPS-Multi, are performed twice per iteration, between the updates of H
  // and W" — per extra iteration the only traffic is the Aux/Acc gather
  // (d2h) and the H re-broadcast (h2d).
  const nmf::Shape shape = tiny_shape();
  auto v = nmf::synthetic_v(shape);
  std::vector<float> w, h;
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
  Scheduler sched(node);
  nmf::run_maps(sched, v, w, h, shape, 2);
  const auto d2h_2 = node.stats().bytes_d2h;
  const auto h2d_2 = node.stats().bytes_h2d;
  nmf::run_maps(sched, v, w, h, shape, 4);
  // Marginal per-iteration traffic across the two runs (run_maps re-inits,
  // so compare the growth of the second, longer run against the first).
  const auto d2h_4 = node.stats().bytes_d2h - d2h_2;
  const auto h2d_4 = node.stats().bytes_h2d - h2d_2;
  const std::size_t aux_bytes =
      (shape.k * shape.m + shape.k) * sizeof(float);
  // Gather of Aux+Acc: 4 duplicated partials per iteration; plus final W.
  EXPECT_LE(d2h_4, 4 * (4 * aux_bytes + aux_bytes) +
                       shape.n * shape.k * sizeof(float) + 4096);
  EXPECT_GT(d2h_4, 4 * aux_bytes);
  // H re-broadcast to 4 devices per iteration (+ initial V/W uploads).
  EXPECT_GT(h2d_4, 4 * shape.k * shape.m * sizeof(float));
}

TEST(NmfTest, MapsOutScalesHostStagedBaseline) {
  // Fig 13's shape at reduced size, TimingOnly: MAPS-Multi must beat the
  // baseline's scaling on every device model.
  const nmf::Shape shape{2048, 512, 32};
  std::vector<float> v(1), w, h; // TimingOnly: backing never touched
  for (const auto& spec : sim::paper_device_models()) {
    double maps1 = 0, maps4 = 0, base1 = 0, base4 = 0;
    for (int g : {1, 4}) {
      sim::Node node(sim::homogeneous_node(spec, g),
                     sim::ExecMode::TimingOnly);
      Scheduler sched(node);
      const double t = nmf::run_maps(sched, v, w, h, shape, 10).sim_ms;
      (g == 1 ? maps1 : maps4) = t;
    }
    for (int g : {1, 4}) {
      sim::Node node(sim::homogeneous_node(spec, g),
                     sim::ExecMode::TimingOnly);
      const double t =
          nmf::run_mgpu_baseline(node, v, w, h, shape, 10, g).sim_ms;
      (g == 1 ? base1 : base4) = t;
    }
    EXPECT_GT(maps1 / maps4, base1 / base4) << spec.name << " scaling";
    EXPECT_LT(maps4, base4) << spec.name << " absolute time";
  }
}

} // namespace
