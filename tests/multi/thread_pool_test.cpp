// Tests for the parallel functional execution backend (DESIGN.md §5.12):
// the ThreadPool itself (fork-join groups, helping waits, deterministic
// lowest-ordinal exception selection), bit-identity of the chunked device
// sweeps against the sequential backend for every merge kind (injective,
// Sum partials, ordered appends), the exec-threads scheduler knob and its
// stats, and the interaction with device-loss fault recovery.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/game_of_life.hpp"
#include "apps/histogram.hpp"
#include "multi/fault_injector.hpp"
#include "multi/maps_multi.hpp"
#include "multi/thread_pool.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

sim::Node make_node(int devices,
                    sim::ExecMode mode = sim::ExecMode::Functional) {
  return sim::Node(sim::homogeneous_node(sim::titan_black(), devices), mode);
}

// --- ThreadPool basics -------------------------------------------------------

TEST(ThreadPool, ExecutesEverySubmittedJob) {
  ThreadPool pool(4);
  ThreadPool::Group group;
  constexpr int kJobs = 200;
  std::vector<std::atomic<int>> hits(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    pool.submit(group, [&hits, i] { hits[static_cast<std::size_t>(i)]++; });
  }
  pool.wait(group);
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "job " << i;
  }
  EXPECT_TRUE(group.idle());
  EXPECT_GE(pool.stats().executed, static_cast<std::uint64_t>(kJobs));
}

TEST(ThreadPool, SingleThreadRunsJobsInsideWait) {
  // parallelism == 1 spawns no workers: jobs run on the waiting thread, in
  // submission order (one queue, no stealers).
  ThreadPool pool(1);
  ThreadPool::Group group;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.submit(group, [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(order.empty()); // nothing executes until the helping wait
  pool.wait(group);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(pool.stats().stolen, 0u);
}

TEST(ThreadPool, GroupIsReusableAcrossRounds) {
  ThreadPool pool(3);
  ThreadPool::Group group;
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 16; ++i) {
      pool.submit(group, [&count] { count++; });
    }
    pool.wait(group);
    EXPECT_EQ(count.load(), (round + 1) * 16);
  }
}

TEST(ThreadPool, WaitRethrowsLowestOrdinalException) {
  // Several chunks fail concurrently; the rethrown error must be the
  // FIRST-submitted one regardless of execution order — the same error the
  // sequential sweep would have hit first.
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 20; ++attempt) {
    ThreadPool::Group group;
    for (int i = 0; i < 32; ++i) {
      pool.submit(group, [i] {
        if (i >= 5 && i % 3 == 2) { // lowest thrower: ordinal 5
          throw std::runtime_error("chunk " + std::to_string(i));
        }
      });
    }
    try {
      pool.wait(group);
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 5");
    }
    // The error is cleared: the group is reusable after a failed round.
    pool.submit(group, [] {});
    EXPECT_NO_THROW(pool.wait(group));
  }
}

TEST(ThreadPool, NestedForkJoinDoesNotDeadlock) {
  // A job that itself forks sub-jobs and waits — the deferred-kernel-body
  // shape (a device sweep forking chunks while running on the pool).
  // Helping waits must execute the sub-jobs even when every worker is
  // occupied by a forking parent.
  ThreadPool pool(2);
  ThreadPool::Group outer;
  std::atomic<int> total{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit(outer, [&pool, &total] {
      ThreadPool::Group inner;
      for (int j = 0; j < 8; ++j) {
        pool.submit(inner, [&total] { total++; });
      }
      pool.wait(inner);
    });
  }
  pool.wait(outer);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, StatsResetClearsCounters) {
  ThreadPool pool(2);
  ThreadPool::Group group;
  for (int i = 0; i < 10; ++i) {
    pool.submit(group, [] {});
  }
  pool.wait(group);
  EXPECT_GE(pool.stats().executed, 10u);
  pool.reset_stats();
  EXPECT_EQ(pool.stats().executed, 0u);
  EXPECT_EQ(pool.stats().stolen, 0u);
  EXPECT_EQ(pool.stats().idle_waits, 0u);
}

// --- Chunked sweep: bit-identity with the sequential backend ----------------

// Injective outputs (disjoint writes): the Game of Life stencil.
std::vector<int> run_gol(int devices, unsigned exec_threads) {
  const std::size_t W = 96, H = 160;
  const int iterations = 5;
  std::mt19937 rng(4242);
  std::vector<int> a(W * H), b(W * H, 0);
  for (auto& v : a) {
    v = static_cast<int>(rng() & 1u);
  }
  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  apps::gol::run(sched, A, B, iterations, apps::gol::Scheme::Maps);
  sched.WaitAll();
  return iterations % 2 == 0 ? a : b;
}

TEST(ChunkedSweep, InjectiveBitIdenticalToSequential) {
  const std::vector<int> seq = run_gol(3, 0);
  for (int devices : {1, 2, 3}) {
    const std::vector<int> dev_seq = run_gol(devices, 0);
    const std::vector<int> par = run_gol(devices, 4);
    const std::vector<int> par2 = run_gol(devices, 4);
    ASSERT_EQ(par, dev_seq) << devices << " devices";
    ASSERT_EQ(par, par2) << devices << " devices"; // self-deterministic
    ASSERT_EQ(par, seq) << devices << " devices";
  }
}

// Sum partials (ReductiveStatic): the histogram, whose integral agg_op makes
// the chunk-ordered merge exact.
std::vector<int> run_histogram(int devices, unsigned exec_threads) {
  const std::size_t W = 128, H = 192;
  std::mt19937 rng(777);
  std::vector<int> image(W * H);
  for (auto& v : image) {
    v = static_cast<int>(rng() % 4096);
  }
  std::vector<int> hist(apps::histogram::kBins, 0);
  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  Matrix<int> Image(W, H, "image");
  Vector<int> Hist(apps::histogram::kBins, "hist");
  Image.Bind(image.data());
  Hist.Bind(hist.data());
  apps::histogram::run(sched, Image, Hist, 2, apps::histogram::Scheme::Maps);
  sched.WaitAll();
  return hist;
}

TEST(ChunkedSweep, SumPartialsBitIdenticalToSequential) {
  const std::vector<int> seq = run_histogram(3, 0);
  for (int devices : {1, 2, 3}) {
    ASSERT_EQ(run_histogram(devices, 4), run_histogram(devices, 0))
        << devices << " devices";
    ASSERT_EQ(run_histogram(devices, 4), seq) << devices << " devices";
  }
}

// Compensated float Sum (ReductiveStatic<float>): chunk boundaries are a
// pure function of the segment shape — never of pool parallelism — and the
// Neumaier merge runs in ascending chunk order, so every thread count of the
// parallel backend produces bit-identical float sums.
inline constexpr int kFloatBins = 32;

struct FloatBinSum {
  using In = Window2D<float, 0, maps::NO_CHECKS>;
  using Out = ReductiveStatic<float, kFloatBins>;
  void operator()(const maps::ThreadContext&, In& x, Out& acc) const {
    MAPS_FOREACH(it, acc) {
      auto xi = x.align(it);
      const std::size_t bin =
          (static_cast<std::size_t>(it.work_y()) * 7 + it.work_x()) %
          kFloatBins;
      it[bin] += *xi;
    }
    acc.commit();
  }
};

std::vector<float> make_float_sum_input(std::size_t n) {
  std::mt19937 rng(909);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> x(n);
  for (auto& v : x) {
    v = dist(rng);
  }
  return x;
}

std::vector<float> run_float_sum(int devices, unsigned exec_threads,
                                 SchedulerStats* stats_out = nullptr) {
  const std::size_t W = 128, H = 192;
  const std::vector<float> x = make_float_sum_input(W * H);
  std::vector<float> acc(kFloatBins, 0.0f);
  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  Matrix<float> X(W, H, "x");
  Vector<float> Acc(kFloatBins, "acc");
  X.Bind(const_cast<float*>(x.data()));
  Acc.Bind(acc.data());
  sched.Invoke(FloatBinSum{}, FloatBinSum::In(X), FloatBinSum::Out(Acc));
  sched.Gather(Acc);
  sched.WaitAll();
  if (stats_out != nullptr) {
    *stats_out = sched.stats();
  }
  return acc;
}

TEST(ChunkedSweep, FloatSumBitIdenticalAcrossThreadCounts) {
  for (int devices : {1, 2, 3}) {
    const std::vector<float> one = run_float_sum(devices, 1);
    for (unsigned threads : {2u, 4u, 8u}) {
      ASSERT_EQ(run_float_sum(devices, threads), one)
          << devices << " devices, " << threads << " threads";
    }
    // Self-deterministic across repeated runs.
    ASSERT_EQ(run_float_sum(devices, 4), run_float_sum(devices, 4));

    // Accuracy: the compensated merge stays within float rounding of an
    // exact (double) accumulation of the same contributions.
    const std::size_t W = 128, H = 192;
    const std::vector<float> x = make_float_sum_input(W * H);
    std::vector<double> ref(kFloatBins, 0.0);
    for (std::size_t y = 0; y < H; ++y) {
      for (std::size_t xx = 0; xx < W; ++xx) {
        ref[(y * 7 + xx) % kFloatBins] += static_cast<double>(x[y * W + xx]);
      }
    }
    for (int b = 0; b < kFloatBins; ++b) {
      ASSERT_NEAR(static_cast<double>(one[static_cast<std::size_t>(b)]),
                  ref[static_cast<std::size_t>(b)], 1e-2)
          << "bin " << b << ", " << devices << " devices";
    }
  }
}

TEST(ChunkedSweep, FloatSumUsesTheParallelBackend) {
  // The agg_exact gate is lifted: float Sum outputs no longer force the
  // sequential fallback — chunks execute through the pool.
  SchedulerStats stats;
  run_float_sum(2, 4, &stats);
  EXPECT_GT(stats.exec.chunks_executed, 0u);
}

// Ordered appends (ReductiveDynamic): chunk-ordered concatenation must
// reproduce the sequential sweep's append sequence EXACTLY — order included.
struct PositiveFilter {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& out) const {
    MAPS_FOREACH(it, out) {
      const float v = x.at(it, 0);
      if (v > 0.0f) {
        out.append(v);
      }
    }
  }
};

std::vector<float> run_filter(int devices, unsigned exec_threads) {
  const std::size_t n = 20000;
  std::mt19937 rng(31);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> x(n);
  for (auto& v : x) {
    v = dist(rng);
  }
  std::vector<float> out(n, 0.0f);
  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  Vector<float> X(n, "x"), Out(n, "out");
  X.Bind(x.data());
  Out.Bind(out.data());
  sched.Invoke(PositiveFilter{}, Window1D<float, 0, maps::NO_CHECKS>(X),
               ReductiveDynamic<float>(Out));
  sched.Gather(Out);
  out.resize(sched.gathered_count(Out));
  return out;
}

TEST(ChunkedSweep, AppendOrderBitIdenticalToSequential) {
  for (int devices : {1, 2, 3}) {
    const std::vector<float> seq = run_filter(devices, 0);
    const std::vector<float> par = run_filter(devices, 4);
    ASSERT_FALSE(seq.empty());
    ASSERT_EQ(par, seq) << devices << " devices"; // exact order, not multiset
  }
}

TEST(ChunkedSweep, OneThreadEqualsSequential) {
  // exec_threads == 1 keeps the backend installed but every sweep falls
  // back to the sequential path (parallelism <= 1): still bit-identical.
  EXPECT_EQ(run_gol(2, 1), run_gol(2, 0));
  EXPECT_EQ(run_histogram(2, 1), run_histogram(2, 0));
  EXPECT_EQ(run_filter(2, 1), run_filter(2, 0));
}

// --- Scheduler knob, stats and modes -----------------------------------------

TEST(ExecThreads, KnobAndStatsAreWired) {
  sim::Node node = make_node(2);
  Scheduler sched(node);
  sched.set_exec_threads(4);
  EXPECT_EQ(sched.exec_threads(), 4u);
  EXPECT_EQ(sched.stats().exec.threads, 4u);

  const std::size_t W = 96, H = 160;
  std::vector<int> a(W * H, 0), b(W * H, 0);
  a[W + 2] = a[W + 3] = a[W + 4] = 1; // a blinker
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  apps::gol::run(sched, A, B, 4, apps::gol::Scheme::Maps);
  sched.WaitAll();
  // The sweeps ran through the pool.
  EXPECT_GT(sched.stats().exec.chunks_executed, 0u);

  sched.reset_stats();
  EXPECT_EQ(sched.stats().exec.chunks_executed, 0u);
  EXPECT_EQ(sched.stats().exec.threads, 4u); // configuration survives

  // Switching to sequential mid-run quiesces and detaches the backend.
  sched.set_exec_threads(0);
  EXPECT_EQ(sched.exec_threads(), 0u);
  apps::gol::run(sched, A, B, 2, apps::gol::Scheme::Maps);
  sched.WaitAll();
  EXPECT_EQ(sched.stats().exec.chunks_executed, 0u);

  // And back on again.
  sched.set_exec_threads(2);
  apps::gol::run(sched, A, B, 2, apps::gol::Scheme::Maps);
  sched.WaitAll();
  EXPECT_GT(sched.stats().exec.chunks_executed, 0u);
}

TEST(ExecThreads, TimingOnlyNodesStaySequential) {
  // TimingOnly bodies are null: the knob is accepted but no backend is
  // installed and no chunks ever execute.
  sim::Node node = make_node(2, sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_exec_threads(8);
  EXPECT_EQ(sched.exec_threads(), 8u);

  const std::size_t W = 64, H = 64;
  std::vector<int> a(W * H, 1), b(W * H, 0);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  apps::gol::run(sched, A, B, 2, apps::gol::Scheme::Maps);
  sched.WaitAll();
  EXPECT_EQ(sched.stats().exec.chunks_executed, 0u);
}

// --- Fault recovery: re-execution under the parallel backend -----------------

struct GolRun {
  std::vector<int> a, b;
  SchedulerStats stats;
};

GolRun run_gol_with_faults(unsigned exec_threads, FaultInjector injector) {
  const std::size_t W = 64, H = 64;
  GolRun r;
  std::mt19937 rng(42);
  r.a.resize(W * H);
  for (auto& v : r.a) {
    v = static_cast<int>(rng() & 1u);
  }
  r.b.assign(W * H, 0);
  sim::Node node = make_node(4);
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  sched.set_fault_tolerance_enabled(true);
  if (injector) {
    sched.set_fault_injector(std::move(injector));
  }
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(r.a.data());
  B.Bind(r.b.data());
  apps::gol::run(sched, A, B, 4, apps::gol::Scheme::Maps);
  sched.WaitAll();
  r.stats = sched.stats();
  return r;
}

TEST(ExecThreads, DeviceLossRecoveryBitIdenticalUnderParallelBackend) {
  // kill mid-chain: the victim's segments re-execute through the same
  // chunked factory path. Results must match both the fault-free run and
  // the sequential-backend faulty run bit for bit.
  const GolRun clean = run_gol_with_faults(0, nullptr);
  const GolRun faulty_seq =
      run_gol_with_faults(0, kill_at_nth(1, KillStage::KernelIssued, 1));
  const GolRun faulty_par =
      run_gol_with_faults(4, kill_at_nth(1, KillStage::KernelIssued, 1));
  EXPECT_EQ(faulty_par.a, clean.a);
  EXPECT_EQ(faulty_par.b, clean.b);
  EXPECT_EQ(faulty_par.a, faulty_seq.a);
  EXPECT_EQ(faulty_par.b, faulty_seq.b);
  EXPECT_EQ(faulty_par.stats.recovery.devices_lost, 1u);
  EXPECT_EQ(faulty_par.stats.recovery.segments_reexecuted,
            faulty_seq.stats.recovery.segments_reexecuted);
}

} // namespace
