// Coverage of every input pattern of Table 1 and every output pattern of
// §3.2 through the full Invoke path, each verified against a sequential CPU
// reference on 1-4 devices.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

sim::Node make_node(int devices) {
  return sim::Node(sim::homogeneous_node(sim::gtx780(), devices));
}

std::vector<float> random_floats(std::size_t n, unsigned seed, float lo = -1,
                                 float hi = 1) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(n);
  for (auto& e : v) {
    e = dist(rng);
  }
  return v;
}

// --- Block(2D) x Block(2D-Transposed): matrix multiplication as a MAPS
// kernel (Table 1's canonical example) -----------------------------------------

struct MatMulKernel {
  template <typename A, typename B, typename C>
  void operator()(const maps::ThreadContext&, A& a, B& b, C& c) const {
    MAPS_FOREACH(it, c) {
      const auto row = a.aligned_row(it);
      const auto col = b.aligned_col(it);
      float acc = 0.0f;
      for (std::size_t p = 0; p < col.size(); ++p) {
        acc += row[p] * col[p];
      }
      *it = acc;
    }
    c.commit();
  }
};

class MatMulDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulDevicesTest, BlockPatternsMatchReference) {
  const int devices = GetParam();
  const std::size_t m = 60, n = 44, k = 36;
  auto a = random_floats(m * k, 1);
  auto b = random_floats(k * n, 2);
  std::vector<float> c(m * n, 0.0f);

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  Matrix<float> A(k, m), B(n, k), C(n, m);
  A.Bind(a.data());
  B.Bind(b.data());
  C.Bind(c.data());
  sched.Invoke(MatMulKernel{}, Block2D<float>(A), Block2DTransposed<float>(B),
               StructuredInjective<float, 2>(C));
  sched.Gather(C);

  for (std::size_t i = 0; i < m; i += 7) {
    for (std::size_t j = 0; j < n; j += 5) {
      float ref = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        ref += a[i * k + p] * b[p * n + j];
      }
      ASSERT_NEAR(c[i * n + j], ref, 1e-4f) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MatMulDevicesTest,
                         ::testing::Values(1, 2, 4));

// --- Block(1D): all-pairs interaction ------------------------------------------

struct AllPairsKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& xs, Out& forces) const {
    MAPS_FOREACH(it, forces) {
      float acc = 0.0f;
      const float xi = xs[it.work_y()];
      MAPS_FOREACH(x, xs) { // whole buffer, as in N-body
        acc += xi - *x;
      }
      *it = acc;
    }
  }
};

// Give Block1D's plain begin/end a FOREACH-compatible face.
TEST(PatternsTest, Block1DAllPairs) {
  const std::size_t n = 300;
  auto xs = random_floats(n, 3);
  std::vector<float> out(n, 0.0f);
  const float sum = std::accumulate(xs.begin(), xs.end(), 0.0f);

  sim::Node node = make_node(3);
  Scheduler sched(node);
  Vector<float> X(n), F(n);
  X.Bind(xs.data());
  F.Bind(out.data());
  sched.Invoke(AllPairsKernel{}, Block1D<float>(X),
               StructuredInjective<float, 1>(F));
  sched.Gather(F);
  for (std::size_t i = 0; i < n; i += 13) {
    EXPECT_NEAR(out[i], xs[i] * static_cast<float>(n) - sum, 1e-2f) << i;
  }
}

// --- Window(1D): convolution ----------------------------------------------------

struct Conv1DKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      float acc = 0.0f;
      MAPS_FOREACH_ALIGNED(w, x, it) {
        acc += *w * (w.offset() == 0 ? 2.0f : 0.5f);
      }
      *it = acc;
    }
  }
};

class Window1DTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Window1DTest, ConvolutionMatchesReferenceUnderAllBoundaries) {
  const int devices = std::get<0>(GetParam());
  const int boundary = std::get<1>(GetParam());
  const std::size_t n = 501;
  auto x = random_floats(n, 4);
  std::vector<float> y(n, 0.0f);

  auto at = [&](long i) -> float {
    switch (boundary) {
    case 0: // Wrap
      return x[static_cast<std::size_t>((i % static_cast<long>(n) +
                                         static_cast<long>(n)) %
                                        static_cast<long>(n))];
    case 1: // Clamp
      return x[static_cast<std::size_t>(
          std::clamp<long>(i, 0, static_cast<long>(n) - 1))];
    default: // Zero
      return (i < 0 || i >= static_cast<long>(n))
                 ? 0.0f
                 : x[static_cast<std::size_t>(i)];
    }
  };

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  Vector<float> X(n), Y(n);
  X.Bind(x.data());
  Y.Bind(y.data());
  switch (boundary) {
  case 0:
    sched.Invoke(Conv1DKernel{}, Window1D<float, 1, maps::WRAP>(X),
                 StructuredInjective<float, 1>(Y));
    break;
  case 1:
    sched.Invoke(Conv1DKernel{}, Window1D<float, 1, maps::CLAMP>(X),
                 StructuredInjective<float, 1>(Y));
    break;
  default:
    sched.Invoke(Conv1DKernel{}, Window1D<float, 1, maps::ZERO>(X),
                 StructuredInjective<float, 1>(Y));
    break;
  }
  sched.Gather(Y);
  for (std::size_t i = 0; i < n; ++i) {
    const float ref = 0.5f * at(static_cast<long>(i) - 1) + 2.0f * x[i] +
                      0.5f * at(static_cast<long>(i) + 1);
    ASSERT_NEAR(y[i], ref, 1e-4f) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(DevicesByBoundary, Window1DTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(0, 1, 2)));

// --- Permutation: block-local reversal (FFT-style distribution) ----------------

struct BlockReverseKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext& tc, In& chunk, Out& y) const {
    MAPS_FOREACH(it, y) {
      const auto& g = *tc.grid;
      const std::size_t span = static_cast<std::size_t>(g.block_dim.y) *
                               g.ilp_y;
      const std::size_t local = it.work_y() - tc.block.y * span;
      *it = chunk.chunk_at(chunk.chunk_size() - 1 - local);
    }
  }
};

TEST(PatternsTest, PermutationBlockReversal) {
  const std::size_t n = 4096; // multiple of the 1-D block span (128)
  auto x = random_floats(n, 5);
  std::vector<float> y(n, 0.0f);
  sim::Node node = make_node(4);
  Scheduler sched(node);
  Vector<float> X(n), Y(n);
  X.Bind(x.data());
  Y.Bind(y.data());
  sched.Invoke(BlockReverseKernel{}, Permutation<float>(X),
               StructuredInjective<float, 1>(Y));
  sched.Gather(Y);
  for (std::size_t i = 0; i < n; i += 37) {
    const std::size_t block = i / 128, local = i % 128;
    EXPECT_EQ(y[i], x[block * 128 + 127 - local]) << i;
  }
}

// --- Unstructured Injective: scattered writes (FFT-style) -----------------------

struct BitShuffleScatter {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& out) const {
    MAPS_FOREACH(it, out) {
      const std::size_t i = it.global_work_index();
      const std::size_t n = 1 << 12;
      const std::size_t dst = (i * 2654435761u) % n; // uncorrelated target
      out.write(dst, x.at(it, 0) + 1.0f);
    }
  }
};

TEST(PatternsTest, UnstructuredInjectiveScatterMergesAcrossDevices) {
  const std::size_t n = 1 << 12;
  auto x = random_floats(n, 6);
  std::vector<float> y(n, -5.0f);
  sim::Node node = make_node(4);
  Scheduler sched(node);
  Vector<float> X(n), Y(n);
  X.Bind(x.data());
  Y.Bind(y.data());
  sched.Invoke(BitShuffleScatter{}, Window1D<float, 0, maps::NO_CHECKS>(X),
               UnstructuredInjective<float>(Y));
  sched.Gather(Y);
  // The multiplier is odd and n a power of two => the map is a bijection.
  std::vector<float> ref(n);
  for (std::size_t i = 0; i < n; ++i) {
    ref[(i * 2654435761u) % n] = x[i] + 1.0f;
  }
  EXPECT_EQ(y, ref);
}

// --- Reductive (Dynamic): predicate filter --------------------------------------

struct PositiveFilter {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& out) const {
    MAPS_FOREACH(it, out) {
      const float v = x.at(it, 0);
      if (v > 0.0f) {
        out.append(v);
      }
    }
  }
};

class FilterDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterDevicesTest, AppendAggregationKeepsAllMatches) {
  const int devices = GetParam();
  const std::size_t n = 5000;
  auto x = random_floats(n, 7);
  std::vector<float> out(n, 0.0f);
  sim::Node node = make_node(devices);
  Scheduler sched(node);
  Vector<float> X(n), Out(n);
  X.Bind(x.data());
  Out.Bind(out.data());
  sched.Invoke(PositiveFilter{}, Window1D<float, 0, maps::NO_CHECKS>(X),
               ReductiveDynamic<float>(Out));
  sched.Gather(Out);

  std::vector<float> kept(out.begin(),
                          out.begin() + static_cast<long>(
                                            sched.gathered_count(Out)));
  std::vector<float> expected;
  for (float v : x) {
    if (v > 0.0f) {
      expected.push_back(v);
    }
  }
  EXPECT_EQ(kept.size(), expected.size());
  // Device-order concatenation preserves per-device order; globally the
  // multiset must match.
  std::sort(kept.begin(), kept.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(kept, expected);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, FilterDevicesTest,
                         ::testing::Values(1, 2, 3, 4));

// --- Irregular output: unknown per-thread output counts -------------------------

struct EmitDivisors {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& out) const {
    MAPS_FOREACH(it, out) {
      const int v = static_cast<int>(x.at(it, 0));
      for (int d = 1; d <= v; ++d) { // v outputs for value v
        out.append(static_cast<float>(d));
      }
    }
  }
};

TEST(PatternsTest, IrregularOutputVariableCounts) {
  const std::size_t n = 600;
  std::vector<float> x(n), out(4 * n, 0.0f);
  std::mt19937 rng(8);
  std::size_t expected = 0;
  for (auto& v : x) {
    v = static_cast<float>(rng() % 4); // 0..3 outputs per element
    expected += static_cast<std::size_t>(v);
  }
  sim::Node node = make_node(2);
  Scheduler sched(node);
  Vector<float> X(n), Out(4 * n);
  X.Bind(x.data());
  Out.Bind(out.data());
  // Capacity: up to 4 outputs per element — declare via a larger datum.
  sched.Invoke(EmitDivisors{}, Window1D<float, 0, maps::NO_CHECKS>(X),
               IrregularOutput<float>(Out));
  sched.Gather(Out);
  EXPECT_EQ(sched.gathered_count(Out), expected);
}

// --- Traversal: single-device fallback ------------------------------------------

struct ChaseKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& next, Out& out) const {
    MAPS_FOREACH(it, out) {
      // Three pointer-chasing hops: unpartitionable without replication.
      std::size_t p = it.work_y();
      for (int hop = 0; hop < 3; ++hop) {
        p = static_cast<std::size_t>(next[p]);
      }
      *it = static_cast<int>(p);
    }
  }
};

TEST(PatternsTest, TraversalFallsBackToSingleDevice) {
  const std::size_t n = 2048;
  std::vector<int> next(n), out(n, -1);
  std::mt19937 rng(9);
  for (auto& v : next) {
    v = static_cast<int>(rng() % n);
  }
  sim::Node node = make_node(4);
  Scheduler sched(node);
  Vector<int> NextD(n), OutD(n);
  NextD.Bind(next.data());
  OutD.Bind(out.data());
  sched.Invoke(ChaseKernel{}, Traversal<int>(NextD),
               StructuredInjective<int, 1>(OutD));
  sched.WaitAll();
  // Only device 0 computed (§3.1: Traversal is not partitioned).
  EXPECT_GT(node.stats().device_compute_seconds[0], 0.0);
  for (int d = 1; d < 4; ++d) {
    EXPECT_EQ(node.stats().device_compute_seconds[static_cast<std::size_t>(d)],
              0.0);
  }
  sched.Gather(OutD);
  for (std::size_t i = 0; i < n; i += 101) {
    std::size_t p = i;
    for (int hop = 0; hop < 3; ++hop) {
      p = static_cast<std::size_t>(next[p]);
    }
    EXPECT_EQ(out[i], static_cast<int>(p));
  }
}

// --- CSR variable-size segmentation -----------------------------------------------

struct CsrSpmvKernel {
  template <typename RowPtr, typename Cols, typename Vals, typename X,
            typename Out>
  void operator()(const maps::ThreadContext&, RowPtr& row_ptr, Cols& cols,
                  Vals& vals, X& x, Out& y) const {
    MAPS_FOREACH(row, y) {
      const auto begin = static_cast<std::size_t>(row_ptr.at(row, 0));
      const auto end = static_cast<std::size_t>(row_ptr.at(row, 1));
      float acc = 0.0f;
      for (std::size_t e = begin; e < end; ++e) {
        acc += vals[e] * x[static_cast<std::size_t>(cols[e])];
      }
      *row = acc;
    }
  }
};

TEST(CsrTest, VariableSegmentsPartitionTheSparseStructure) {
  // Random CSR matrix with highly skewed row lengths: each device receives
  // exactly the edges of its rows, not the whole structure.
  const std::size_t n = 2000;
  std::mt19937 rng(12);
  std::vector<int> row_ptr(n + 1);
  std::vector<int> cols;
  std::vector<float> vals;
  for (std::size_t i = 0; i < n; ++i) {
    row_ptr[i] = static_cast<int>(cols.size());
    const std::size_t deg = rng() % 8;
    for (std::size_t e = 0; e < deg; ++e) {
      cols.push_back(static_cast<int>(rng() % n));
      vals.push_back(static_cast<float>(rng() % 5));
    }
  }
  row_ptr[n] = static_cast<int>(cols.size());
  std::vector<float> x(n), y(n, 0.0f);
  for (auto& v : x) {
    v = static_cast<float>(rng() % 7);
  }

  sim::Node node = make_node(4);
  Scheduler sched(node);
  Vector<int> RowPtr(n + 1, "row_ptr"), Cols(cols.size(), "cols");
  Vector<float> Vals(vals.size(), "vals"), X(n, "x"), Y(n, "y");
  RowPtr.Bind(row_ptr.data());
  Cols.Bind(cols.data());
  Vals.Bind(vals.data());
  X.Bind(x.data());
  Y.Bind(y.data());

  sched.Invoke(CsrSpmvKernel{}, Window1D<int, 1, maps::CLAMP>(RowPtr),
               CsrArray<int>(Cols, row_ptr.data()),
               CsrArray<float>(Vals, row_ptr.data()), Adjacency<float>(X),
               StructuredInjective<float, 1>(Y));
  sched.Gather(Y);

  // Correctness.
  for (std::size_t i = 0; i < n; i += 17) {
    float ref = 0.0f;
    for (int e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      ref += vals[static_cast<std::size_t>(e)] *
             x[static_cast<std::size_t>(cols[static_cast<std::size_t>(e)])];
    }
    ASSERT_FLOAT_EQ(y[i], ref) << i;
  }
  // Traffic: cols+vals were PARTITIONED, not replicated — total upload of
  // the structure arrays is ~1x their size, not 4x. (x is replicated,
  // row_ptr partitioned with halo; allow slack for those.)
  const std::uint64_t structure_bytes = cols.size() * 4 + vals.size() * 4;
  const std::uint64_t replicated_everything =
      4 * (structure_bytes + n * 4) + (n + 1) * 4;
  EXPECT_LT(node.stats().bytes_h2d, replicated_everything - structure_bytes);
}

// --- ReduceScatter (framework extension) ----------------------------------------

TEST(ReduceScatterTest, DeviceSideAggregationMatchesHostGather) {
  const std::size_t n = 1024;
  std::vector<float> host_in(n, 1.0f), via_gather(n, 0.0f),
      via_rs(n, 0.0f);

  auto routine = [n](RoutineArgs& a) {
    float* acc = a.parameters[1].as<float>();
    const int slot = a.device_idx;
    sim::LaunchStats st;
    st.label = "partial";
    st.blocks = 4;
    a.node->launch(a.stream, st, [acc, n, slot] {
      for (std::size_t i = 0; i < n; ++i) {
        acc[i] += static_cast<float>(slot + 1); // distinct partials
      }
    });
    return true;
  };

  for (bool use_rs : {false, true}) {
    sim::Node node = make_node(4);
    Scheduler sched(node);
    Vector<float> In(n, "in"), Acc(n, "acc");
    In.Bind(host_in.data());
    std::vector<float>& result = use_rs ? via_rs : via_gather;
    Acc.Bind(result.data());
    sched.InvokeUnmodified(routine, nullptr, Work{n},
                           Block2D<float>(static_cast<Datum&>(In)),
                           SumReduced<float>(Acc));
    if (use_rs) {
      sched.ReduceScatter(Acc, Work{n});
      sched.WaitAll();
      node.reset_stats();
      sched.Gather(Acc); // plain segment gather: already aggregated
      EXPECT_EQ(node.stats().bytes_d2h, n * sizeof(float));
    } else {
      sched.Gather(Acc);
    }
  }
  // 1+2+3+4 everywhere, both ways.
  EXPECT_EQ(via_gather, std::vector<float>(n, 10.0f));
  EXPECT_EQ(via_rs, via_gather);
}

} // namespace
