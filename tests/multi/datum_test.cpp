// Datum geometry and binding semantics (§2.1, Table 2).
#include <gtest/gtest.h>

#include "multi/datum.hpp"

namespace {

using namespace maps::multi;

TEST(DatumTest, MatrixFollowsPaperConstructorOrder) {
  Matrix<float> m(100, 40, "m"); // Matrix<T>(width, height), Fig 2a
  EXPECT_EQ(m.width(), 100u);
  EXPECT_EQ(m.height(), 40u);
  EXPECT_EQ(m.rows(), 40u);            // partitioned by rows
  EXPECT_EQ(m.row_bytes(), 400u);      // width * sizeof(float)
  EXPECT_EQ(m.row_elems(), 100u);
  EXPECT_EQ(m.total_bytes(), 16000u);
}

TEST(DatumTest, VectorIsPartitionedElementwise) {
  Vector<double> v(77);
  EXPECT_EQ(v.rows(), 77u);
  EXPECT_EQ(v.row_bytes(), sizeof(double));
  EXPECT_EQ(v.length(), 77u);
}

TEST(DatumTest, NDArrayPartitionsAlongDim0) {
  NDArray<float, 4> t({8, 3, 10, 12}, "tensor");
  EXPECT_EQ(t.rows(), 8u);
  EXPECT_EQ(t.row_elems(), 3u * 10u * 12u);
  EXPECT_EQ(t.row_bytes(), 3u * 10u * 12u * sizeof(float));
}

TEST(DatumTest, BindRegistersHostBuffer) {
  std::vector<int> host(32);
  Vector<int> v(32);
  EXPECT_FALSE(v.bound());
  v.Bind(host.data());
  EXPECT_TRUE(v.bound());
  EXPECT_EQ(v.host_row(3), reinterpret_cast<std::byte*>(host.data() + 3));
}

TEST(DatumTest, RejectsDegenerateDimensions) {
  EXPECT_THROW(Matrix<int>(0, 10), std::invalid_argument);
  EXPECT_THROW(Vector<int>(0), std::invalid_argument);
  EXPECT_THROW((NDArray<int, 2>({4, 0})), std::invalid_argument);
}

} // namespace
