// Out-of-core execution test matrix (label: out-of-core).
//
// Differential bit-identity: every workload x budget x device-count cell
// runs once with an unlimited device memory budget (the in-core reference)
// and once under the constrained budget, with the access sanitizer live in
// both, and asserts the outputs are bit-identical while
// SchedulerStats::spill reports real spill activity with exactly balanced
// byte totals (transfers.bytes_total() == bytes_spilled + bytes_refilled).
// Budgets are expressed as fractions of the measured in-core working set
// (max over slots of the analyzer's allocated bytes), so the matrix tracks
// workload and partitioning changes automatically. A constructed ping-pong
// chain pins the LRU eviction/refill counters exactly, and the edge cases
// cover the budget-smaller-than-one-segment diagnostic, mid-chain budget
// changes (quiesce + plan cache clear), and prefetch on/off equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "apps/game_of_life.hpp"
#include "apps/histogram.hpp"
#include "multi/maps_multi.hpp"
#include "multi/sanitizer.hpp"
#include "nmf/nmf.hpp"
#include "sim/presets.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

sim::Node make_node(int devices) {
  return sim::Node(sim::homogeneous_node(sim::titan_black(), devices),
                   sim::ExecMode::Functional);
}

std::vector<int> random_values(std::size_t n, int mod, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) {
    x = static_cast<int>(rng() % static_cast<unsigned>(mod));
  }
  return v;
}

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng() % 1000u) / 64.0f;
  }
  return v;
}

std::size_t max_slot_bytes(Scheduler& sched, int devices) {
  std::size_t ws = 0;
  for (int s = 0; s < devices; ++s) {
    ws = std::max(ws, sched.analyzer().allocated_bytes(s));
  }
  return ws;
}

void expect_balanced(const SchedulerStats& st) {
  EXPECT_EQ(st.spill.transfers.bytes_total(),
            st.spill.bytes_spilled + st.spill.bytes_refilled)
      << "spill/refill byte totals out of balance";
}

void expect_no_spill_activity(const SchedulerStats& st) {
  EXPECT_EQ(st.spill.evictions, 0u);
  EXPECT_EQ(st.spill.refills, 0u);
  EXPECT_EQ(st.spill.bytes_spilled, 0u);
  EXPECT_EQ(st.spill.bytes_refilled, 0u);
  EXPECT_EQ(st.spill.pass_count, 0u);
  EXPECT_EQ(st.spill.streamed_tasks, 0u);
  EXPECT_EQ(st.spill.transfers.bytes_total(), 0u);
}

// --- Workload runners --------------------------------------------------------
//
// Each runner executes its chain at the given budget (0 = unlimited) and
// returns every output buffer plus the run's stats and the measured per-slot
// working set (max allocated bytes, meaningful for the budget-0 reference).

struct OocRun {
  std::vector<std::vector<int>> ints;     ///< integer outputs, workload order
  std::vector<std::vector<float>> floats; ///< float outputs, workload order
  SchedulerStats stats;
  std::size_t working_set = 0;
};

OocRun run_gol(int devices, std::size_t budget, bool prefetch = true) {
  const std::size_t W = 64, H = 512;
  const int iterations = 4;
  OocRun r;
  std::vector<int> a = random_values(W * H, 2, 42), b(W * H, 0);

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(budget);
  sched.set_spill_prefetch_enabled(prefetch);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  apps::gol::run(sched, A, B, iterations, apps::gol::Scheme::Maps);
  // gol::run only gathers the final buffer; gather the intermediate too so
  // both host vectors are comparable (streamed runs drain every output to
  // the host as they go, which would otherwise make the stale host copy of
  // the in-core intermediate differ legitimately).
  sched.Gather(A);
  sched.Gather(B);
  sched.WaitAll();
  r.working_set = max_slot_bytes(sched, devices);
  r.stats = sched.stats();
  r.ints = {std::move(a), std::move(b)};
  return r;
}

OocRun run_hist(int devices, std::size_t budget, bool prefetch = true) {
  // Tall image so even 0.25x of the 4-device per-slot working set still
  // holds one double-buffered streaming window.
  const std::size_t W = 128, H = 512;
  OocRun r;
  std::vector<int> image = random_values(W * H, 256, 7);
  std::vector<int> hist(apps::histogram::kBins, 0);

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(budget);
  sched.set_spill_prefetch_enabled(prefetch);
  Matrix<int> img(W, H, "image");
  Vector<int> h(apps::histogram::kBins, "hist");
  img.Bind(image.data());
  h.Bind(hist.data());
  apps::histogram::run(sched, img, h, 2, apps::histogram::Scheme::Maps);
  sched.WaitAll();
  r.working_set = max_slot_bytes(sched, devices);
  r.stats = sched.stats();
  r.ints = {std::move(image), std::move(hist)};
  return r;
}

OocRun run_gemm_chain(int devices, std::size_t budget, bool prefetch = true) {
  // Two chained GEMMs over a tall-skinny shape: C = A x B, D = C x B. B is
  // replicated whole (the streamed pass keeps it as a persistent resident);
  // A, C, D stream through row windows under tight budgets.
  const std::size_t m = 256, k = 16, n = 16;
  OocRun r;
  std::vector<float> a = random_floats(m * k, 3);
  std::vector<float> b = random_floats(k * n, 5);
  std::vector<float> c(m * n, 0.0f), d(m * n, 0.0f);

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(budget);
  sched.set_spill_prefetch_enabled(prefetch);
  Matrix<float> A(k, m, "A"), B(n, k, "B"), C(n, m, "C"), D(n, m, "D");
  A.Bind(a.data());
  B.Bind(b.data());
  C.Bind(c.data());
  D.Bind(d.data());
  simblas::Gemm(sched, A, B, C);
  simblas::Gemm(sched, C, B, D);
  sched.Gather(C);
  sched.Gather(D);
  sched.WaitAll();
  r.working_set = max_slot_bytes(sched, devices);
  r.stats = sched.stats();
  r.floats = {std::move(c), std::move(d)};
  return r;
}

OocRun run_nmf(int devices, std::size_t budget, bool prefetch = true) {
  const nmf::Shape shape{256, 64, 8};
  const int iterations = 2;
  OocRun r;
  std::vector<float> v = nmf::synthetic_v(shape);
  std::vector<float> w, h;

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(budget);
  sched.set_spill_prefetch_enabled(prefetch);
  nmf::run_maps(sched, v, w, h, shape, iterations);
  sched.WaitAll();
  r.working_set = max_slot_bytes(sched, devices);
  r.stats = sched.stats();
  r.floats = {std::move(w), std::move(h)};
  return r;
}

OocRun run_workload(int workload, int devices, std::size_t budget,
                    bool prefetch = true) {
  switch (workload) {
  case 0:
    return run_gol(devices, budget, prefetch);
  case 1:
    return run_hist(devices, budget, prefetch);
  case 2:
    return run_gemm_chain(devices, budget, prefetch);
  default:
    return run_nmf(devices, budget, prefetch);
  }
}

const char* workload_name(int workload) {
  switch (workload) {
  case 0:
    return "gol";
  case 1:
    return "histogram";
  case 2:
    return "gemm-chain";
  default:
    return "nmf";
  }
}

// --- The differential matrix -------------------------------------------------

/// (workload, budget factor index, devices). Factor index 0 is the unlimited
/// legacy budget; 1..3 scale the measured in-core working set by 1x, 0.5x
/// and 0.25x — at 0.25x every workload holds at most a quarter of its
/// aggregate working set on the devices.
class OutOfCoreMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(OutOfCoreMatrix, BitIdenticalToInCoreRun) {
  const int workload = std::get<0>(GetParam());
  const int factor_idx = std::get<1>(GetParam());
  const int devices = std::get<2>(GetParam());
  static const double kFactors[] = {0.0, 1.0, 0.5, 0.25};
  const double factor = kFactors[factor_idx];

  const OocRun ref = run_workload(workload, devices, 0);
  ASSERT_GT(ref.working_set, 0u);
  expect_no_spill_activity(ref.stats); // budget 0 keeps the legacy path

  const std::size_t budget =
      factor == 0.0
          ? 0
          : static_cast<std::size_t>(static_cast<double>(ref.working_set) *
                                     factor);
  OocRun run;
  try {
    run = run_workload(workload, devices, budget);
  } catch (const SanitizerError& e) {
    FAIL() << "sanitizer report under budget " << budget << " ("
           << workload_name(workload) << ", " << devices << " devices)\n  "
           << e.what();
  }

  const std::string ctx = std::string(workload_name(workload)) + " budget=" +
                          std::to_string(budget) + " (" +
                          std::to_string(factor) + "x of " +
                          std::to_string(ref.working_set) + ") devices=" +
                          std::to_string(devices);
  ASSERT_EQ(run.ints.size(), ref.ints.size()) << ctx;
  for (std::size_t i = 0; i < ref.ints.size(); ++i) {
    EXPECT_EQ(run.ints[i], ref.ints[i]) << ctx << " output " << i;
  }
  ASSERT_EQ(run.floats.size(), ref.floats.size()) << ctx;
  for (std::size_t i = 0; i < ref.floats.size(); ++i) {
    EXPECT_EQ(run.floats[i], ref.floats[i]) << ctx << " output " << i;
  }

  expect_balanced(run.stats);
  if (factor == 0.0) {
    expect_no_spill_activity(run.stats);
  } else if (factor < 1.0) {
    // A budget below the working set must force real out-of-core activity:
    // either LRU evictions between tasks or streamed multi-pass execution.
    EXPECT_GT(run.stats.spill.evictions + run.stats.spill.streamed_tasks, 0u)
        << ctx;
    EXPECT_GT(run.stats.spill.bytes_spilled + run.stats.spill.bytes_refilled,
              0u)
        << ctx;
  }
  if (run.stats.spill.streamed_tasks > 0) {
    EXPECT_GE(run.stats.spill.pass_count, run.stats.spill.streamed_tasks)
        << ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkloadByBudgetByDevices, OutOfCoreMatrix,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2, 4)));

// --- Pinned LRU eviction / refill counters -----------------------------------

struct PointCopy {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) { *it = x.at(it, 0, 0); }
  }
};

TEST(OutOfCorePinned, LruEvictionAndRefillCountsAreExact) {
  // Three 2048-byte datums on one device under a 4096-byte budget: the
  // chain X->Y, X->Z, Y->X forces exactly two LRU evictions (Y after task 2,
  // Z after task 3 — both dirty, so both write back their 2048 bytes) and
  // exactly one refill (task 3 reads Y, whose rows were spilled).
  const std::size_t W = 16, H = 32;
  const std::size_t bytes = W * H * sizeof(int); // 2048
  std::vector<int> x = random_values(W * H, 1000, 13), y(W * H, 0),
                   z(W * H, 0);
  const std::vector<int> x0 = x;

  sim::Node node = make_node(1);
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(2 * bytes);
  Matrix<int> X(W, H, "X"), Y(W, H, "Y"), Z(W, H, "Z");
  X.Bind(x.data());
  Y.Bind(y.data());
  Z.Bind(z.data());

  using Pt = Window2D<int, 0, maps::NO_CHECKS>;
  using Out = StructuredInjective<int, 2>;
  sched.Invoke(PointCopy{}, Pt(X), Out(Y)); // residents: X, Y
  sched.Invoke(PointCopy{}, Pt(X), Out(Z)); // evicts Y (LRU, dirty)
  sched.Invoke(PointCopy{}, Pt(Y), Out(X)); // evicts Z (LRU, dirty), refills Y
  sched.Gather(X);
  sched.Gather(Y);
  sched.Gather(Z);
  sched.WaitAll();

  EXPECT_EQ(x, x0);
  EXPECT_EQ(y, x0);
  EXPECT_EQ(z, x0);
  const SchedulerStats& st = sched.stats();
  EXPECT_EQ(st.spill.evictions, 2u);
  EXPECT_EQ(st.spill.refills, 1u);
  EXPECT_EQ(st.spill.bytes_spilled, 2 * bytes);
  EXPECT_EQ(st.spill.bytes_refilled, bytes);
  EXPECT_EQ(st.spill.streamed_tasks, 0u);
  EXPECT_EQ(st.spill.pass_count, 0u);
  expect_balanced(st);
}

// --- Edge cases --------------------------------------------------------------

TEST(OutOfCoreEdge, BudgetSmallerThanOneSegmentThrowsNamedDiagnostic) {
  const std::size_t W = 64, H = 64;
  std::vector<int> a = random_values(W * H, 2, 5), b(W * H, 0);

  sim::Node node = make_node(1);
  Scheduler sched(node);
  sched.set_device_memory_budget(1024); // far below one streaming window
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  using Win = typename apps::gol::MapsTick<1, 1>::Win;
  using Out = typename apps::gol::MapsTick<1, 1>::Out;
  try {
    sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(A), Out(B));
    FAIL() << "expected OutOfCoreError";
  } catch (const OutOfCoreError& e) {
    EXPECT_NE(std::string(e.what()).find("smaller than one segment"),
              std::string::npos)
        << e.what();
  }
}

TEST(OutOfCoreEdge, OutOfCoreErrorIsARuntimeError) {
  static_assert(std::is_base_of_v<std::runtime_error, OutOfCoreError>);
}

TEST(OutOfCoreEdge, MidChainBudgetChangeQuiescesAndClearsPlanCache) {
  const std::size_t W = 64, H = 64;
  std::vector<int> a = random_values(W * H, 2, 9), b(W * H, 0);
  std::vector<int> ref = a;

  sim::Node node = make_node(2);
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  using Win = typename apps::gol::MapsTick<1, 1>::Win;
  using Out = typename apps::gol::MapsTick<1, 1>::Out;
  sched.AnalyzeCall(Win(A), Out(B)); // §4.2: size allocations once, up front
  sched.AnalyzeCall(Win(B), Out(A));
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(A), Out(B));
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(B), Out(A));
  apps::gol::reference_tick(ref, W, H);
  apps::gol::reference_tick(ref, W, H);
  ASSERT_GT(sched.stats().plans_built, 0u);
  const std::uint64_t evictions_before = sched.stats().cache_evictions;

  // Tightening the budget mid-chain must drop every cached plan: they bake
  // in residency decisions made under the old (unlimited) budget.
  sched.set_device_memory_budget(16 * 1024);
  EXPECT_GT(sched.stats().cache_evictions, evictions_before);
  EXPECT_EQ(sched.device_memory_budget(), 16u * 1024u);

  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(A), Out(B));
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(B), Out(A));
  apps::gol::reference_tick(ref, W, H);
  apps::gol::reference_tick(ref, W, H);
  sched.Gather(A);
  sched.WaitAll();
  EXPECT_EQ(a, ref);
  expect_balanced(sched.stats());
}

TEST(OutOfCoreEdge, SettingTheSameBudgetIsANoOp) {
  sim::Node node = make_node(1);
  Scheduler sched(node);
  sched.set_device_memory_budget(0); // already 0: no quiesce, no throw
  EXPECT_EQ(sched.device_memory_budget(), 0u);
  sched.set_device_memory_budget(4096);
  EXPECT_EQ(sched.device_memory_budget(), 4096u);
}

TEST(OutOfCoreEdge, PrefetchOnAndOffAreBitIdenticalWithEqualCounters) {
  // Prefetch changes only the simulated timeline (when refills are issued),
  // never the values or the traffic totals.
  const OocRun ref = run_gol(2, 0);
  const std::size_t budget = ref.working_set / 4;
  const OocRun pre = run_gol(2, budget, /*prefetch=*/true);
  const OocRun naive = run_gol(2, budget, /*prefetch=*/false);
  ASSERT_GT(pre.stats.spill.streamed_tasks, 0u);
  EXPECT_EQ(pre.ints[0], naive.ints[0]);
  EXPECT_EQ(pre.ints[1], naive.ints[1]);
  EXPECT_EQ(pre.ints[0], ref.ints[0]);
  EXPECT_EQ(pre.stats.spill.bytes_spilled, naive.stats.spill.bytes_spilled);
  EXPECT_EQ(pre.stats.spill.bytes_refilled, naive.stats.spill.bytes_refilled);
  EXPECT_EQ(pre.stats.spill.pass_count, naive.stats.spill.pass_count);
  expect_balanced(pre.stats);
  expect_balanced(naive.stats);
}

TEST(OutOfCoreEdge, RepeatedBudgetedRunsAreBitIdentical) {
  const OocRun ref = run_gol(4, 0);
  const std::size_t budget = ref.working_set / 2;
  const OocRun r1 = run_gol(4, budget);
  const OocRun r2 = run_gol(4, budget);
  EXPECT_EQ(r1.ints[0], r2.ints[0]);
  EXPECT_EQ(r1.ints[1], r2.ints[1]);
  EXPECT_EQ(r1.stats.spill.bytes_spilled, r2.stats.spill.bytes_spilled);
  EXPECT_EQ(r1.stats.spill.bytes_refilled, r2.stats.spill.bytes_refilled);
}

// --- reset_stats regression --------------------------------------------------

TEST(OutOfCoreStats, ResetStatsClearsSpillCounters) {
  const OocRun ref = run_gol(1, 0);
  const std::size_t W = 64, H = 512;
  std::vector<int> a = random_values(W * H, 2, 42), b(W * H, 0);

  sim::Node node = make_node(1);
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(ref.working_set / 4);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  apps::gol::run(sched, A, B, 2, apps::gol::Scheme::Maps);
  sched.WaitAll();

  const SchedulerStats& st = sched.stats();
  ASSERT_GT(st.spill.streamed_tasks, 0u);
  ASSERT_GT(st.spill.pass_count, 0u);
  ASSERT_GT(st.spill.bytes_spilled, 0u);
  ASSERT_GT(st.spill.bytes_refilled, 0u);
  ASSERT_GT(st.spill.transfers.copies_issued, 0u);

  sched.reset_stats();

  EXPECT_EQ(st.spill.evictions, 0u);
  EXPECT_EQ(st.spill.refills, 0u);
  EXPECT_EQ(st.spill.bytes_spilled, 0u);
  EXPECT_EQ(st.spill.bytes_refilled, 0u);
  EXPECT_EQ(st.spill.pass_count, 0u);
  EXPECT_EQ(st.spill.streamed_tasks, 0u);
  EXPECT_EQ(st.spill.transfers.copies_issued, 0u);
  EXPECT_EQ(st.spill.transfers.bytes_total(), 0u);
}

} // namespace
