// Unit tests for the Segment Location Monitor — the paper's Algorithm 2
// paths: up-to-date short-circuit, single-location copy, multi-device
// intersections, host fallback, unavailable data, and the upToDate cache.
#include <gtest/gtest.h>

#include <vector>

#include "multi/datum.hpp"
#include "multi/location_monitor.hpp"

namespace {

using namespace maps::multi;

constexpr int kHost = SegmentLocationMonitor::kHost;

class LocationMonitorTest : public ::testing::Test {
protected:
  LocationMonitorTest() : monitor(4), datum(64, 100, "d") {
    datum.Bind(host.data());
    monitor.register_datum(&datum);
  }
  SegmentLocationMonitor monitor;
  std::vector<int> host = std::vector<int>(64 * 100);
  Matrix<int> datum;
};

TEST_F(LocationMonitorTest, BoundDatumStartsHostResident) {
  EXPECT_TRUE(monitor.up_to_date(&datum, kHost).covers({0, 100}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 1).empty());
}

TEST_F(LocationMonitorTest, UpToDateTargetNeedsNoCopies) {
  monitor.mark_copied(&datum, 1, {0, 50});
  EXPECT_TRUE(monitor.plan_copies(&datum, 1, {10, 40}).empty());
}

TEST_F(LocationMonitorTest, SingleLocationFastPath) {
  // Algorithm 2 lines 5-8: the whole piece lives in one location.
  const auto ops = monitor.plan_copies(&datum, 1, {20, 60});
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, kHost);
  EXPECT_EQ(ops[0].rows, (RowInterval{20, 60}));
}

TEST_F(LocationMonitorTest, PrefersDeviceOverHost) {
  monitor.mark_written(&datum, 2, {0, 100});
  const auto ops = monitor.plan_copies(&datum, 1, {25, 75});
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, 2);
}

TEST_F(LocationMonitorTest, PlanCopiesOutputIsCanonical) {
  // plan_copies output is sorted by (source, first row) with adjacent
  // same-source runs merged, so the scheduler's plan cache can compare and
  // replay task plans byte-for-byte.
  monitor.mark_written(&datum, 3, {40, 60});
  monitor.mark_written(&datum, 2, {60, 80});
  monitor.mark_written(&datum, 2, {0, 40});
  const auto ops = monitor.plan_copies(&datum, 1, {0, 100});
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].src_location, kHost); // [80,100) only exists at the host
  EXPECT_EQ(ops[0].rows, (RowInterval{80, 100}));
  EXPECT_EQ(ops[1].src_location, 2);
  EXPECT_EQ(ops[1].rows, (RowInterval{0, 40}));
  EXPECT_EQ(ops[2].src_location, 2); // not merged with [0,40): not adjacent
  EXPECT_EQ(ops[2].rows, (RowInterval{60, 80}));
  EXPECT_EQ(ops[3].src_location, 3);
  EXPECT_EQ(ops[3].rows, (RowInterval{40, 60}));
}

TEST_F(LocationMonitorTest, AdjacentSameSourceRowsCoalesceIntoOneOp) {
  // Two separate writes on the same device leave adjacent up-to-date runs;
  // the plan must hand the scheduler ONE copy op covering both.
  monitor.mark_written(&datum, 2, {10, 30});
  monitor.mark_written(&datum, 2, {30, 55});
  const auto ops = monitor.plan_copies(&datum, 1, {10, 55});
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, 2);
  EXPECT_EQ(ops[0].rows, (RowInterval{10, 55}));
}

TEST_F(LocationMonitorTest, SegmentedDatumIntersectsAcrossDevices) {
  // Algorithm 2 lines 9-14: the datum is segmented among devices; the
  // required segment is assembled from N-dimensional intersections.
  monitor.mark_written(&datum, 1, {0, 25});
  monitor.mark_written(&datum, 2, {25, 50});
  monitor.mark_written(&datum, 3, {50, 75});
  monitor.mark_written(&datum, 4, {75, 100});
  const auto ops = monitor.plan_copies(&datum, 1, {10, 90});
  // Target already holds [10,25); pieces come from devices 2,3,4.
  std::size_t total = 0;
  for (const auto& op : ops) {
    EXPECT_NE(op.src_location, kHost);
    EXPECT_NE(op.src_location, 1);
    total += op.rows.size();
  }
  EXPECT_EQ(total, 65u); // [25,90)
}

TEST_F(LocationMonitorTest, WritesInvalidateOtherLocations) {
  monitor.mark_copied(&datum, 1, {0, 100});
  monitor.mark_copied(&datum, 2, {0, 100});
  monitor.mark_written(&datum, 2, {40, 60});
  EXPECT_FALSE(monitor.up_to_date(&datum, 1).covers({40, 60}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 1).covers({0, 40}));
  EXPECT_FALSE(monitor.up_to_date(&datum, kHost).covers({40, 60}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 2).covers({0, 100}));
  EXPECT_TRUE(monitor.last_output(&datum, 2).covers({40, 60}));
}

TEST_F(LocationMonitorTest, HaloSlotPlanningIgnoresTargetHoldings) {
  // Wrap/Clamp halo slots must be refilled even when the target nominally
  // holds the rows (they live at a different buffer position).
  monitor.mark_written(&datum, 1, {0, 100});
  EXPECT_TRUE(monitor.plan_copies(&datum, 1, {99, 100}).empty());
  const auto ops = monitor.plan_copies(&datum, 1, {99, 100},
                                       /*target_holds_slot=*/false);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, 1); // intra-device copy into the slot
}

TEST_F(LocationMonitorTest, UnavailableRowsThrow) {
  Matrix<int> unbound(8, 10, "unbound");
  monitor.register_datum(&unbound);
  EXPECT_THROW(monitor.plan_copies(&unbound, 1, {0, 10}), std::runtime_error);
}

TEST_F(LocationMonitorTest, PendingAggregationBlocksReads) {
  SegmentLocationMonitor::PendingAggregation agg;
  agg.kind = AggregationKind::Sum;
  agg.writer_slots = {0, 1};
  monitor.set_pending_aggregation(&datum, std::move(agg));
  EXPECT_THROW(monitor.plan_copies(&datum, 1, {0, 10}), std::runtime_error);
  monitor.clear_pending_aggregation(&datum);
  EXPECT_EQ(monitor.pending_aggregation(&datum), nullptr);
}

TEST_F(LocationMonitorTest, UnknownDatumThrows) {
  Matrix<int> other(8, 10, "other");
  EXPECT_THROW((void)monitor.up_to_date(&other, 0), std::logic_error);
}

// --- Epoch / label semantics (the plan-cache validity oracle) ---------------

TEST_F(LocationMonitorTest, EveryMutationMintsAFreshEpoch) {
  const std::uint64_t e0 = monitor.epoch(&datum);
  ASSERT_NE(e0, 0u);

  monitor.mark_copied(&datum, 1, {0, 50});
  const std::uint64_t e1 = monitor.epoch(&datum);
  EXPECT_GT(e1, e0);

  monitor.mark_written(&datum, 2, {10, 20});
  const std::uint64_t e2 = monitor.epoch(&datum);
  EXPECT_GT(e2, e1);

  SegmentLocationMonitor::PendingAggregation agg;
  agg.kind = AggregationKind::Sum;
  agg.writer_slots = {0, 1};
  monitor.set_pending_aggregation(&datum, std::move(agg));
  const std::uint64_t e3 = monitor.epoch(&datum);
  EXPECT_GT(e3, e2);

  monitor.clear_pending_aggregation(&datum);
  EXPECT_GT(monitor.epoch(&datum), e3);

  // All labels came from the monitor-global counter.
  EXPECT_GE(monitor.epoch_counter(), monitor.epoch(&datum));
}

TEST_F(LocationMonitorTest, ReadOnlyQueriesDoNotAdvanceTheEpoch) {
  monitor.mark_written(&datum, 1, {0, 100});
  const std::uint64_t counter = monitor.epoch_counter();
  const std::uint64_t e = monitor.epoch(&datum);
  (void)monitor.plan_copies(&datum, 2, {10, 90});
  (void)monitor.up_to_date(&datum, 1);
  (void)monitor.last_output(&datum, 1);
  std::vector<std::uint64_t> snap;
  monitor.state_snapshot(&datum, snap);
  SegmentLocationMonitor::StateCopy sc;
  monitor.capture_state(&datum, sc);
  EXPECT_EQ(monitor.epoch(&datum), e);
  EXPECT_EQ(monitor.epoch_counter(), counter);
}

TEST_F(LocationMonitorTest, RestoreStateReappliesTheCapturedLabel) {
  // The replay path depends on this exactly: restoring a captured state
  // must restore its label (NOT mint a fresh one), so steady-state loops
  // cycle through the same epoch values and keep hitting the integer fast
  // path of the cache validity check.
  monitor.mark_written(&datum, 1, {0, 60});
  SegmentLocationMonitor::StateCopy sc;
  monitor.capture_state(&datum, sc);
  const std::uint64_t captured = monitor.epoch(&datum);
  std::vector<std::uint64_t> snap_before;
  monitor.state_snapshot(&datum, snap_before);

  // Out-of-band mutations move the datum away from the captured state...
  monitor.mark_written(&datum, 2, {0, 100});
  monitor.mark_copied(&datum, 3, {20, 40});
  EXPECT_NE(monitor.epoch(&datum), captured);
  const std::uint64_t counter = monitor.epoch_counter();

  // ...and restore brings back both the holdings and the label, without
  // consuming a fresh one from the global counter.
  monitor.restore_state(&datum, sc);
  EXPECT_EQ(monitor.epoch(&datum), captured);
  EXPECT_EQ(monitor.epoch_counter(), counter);
  std::vector<std::uint64_t> snap_after;
  monitor.state_snapshot(&datum, snap_after);
  EXPECT_EQ(snap_after, snap_before);
  EXPECT_TRUE(monitor.up_to_date(&datum, 1).covers({0, 60}));
  EXPECT_FALSE(monitor.up_to_date(&datum, 2).covers({0, 100}));
}

TEST_F(LocationMonitorTest, EqualSnapshotsAcrossDistinctEpochs) {
  // Steady-state loops revisit the same location state with different
  // epoch labels; the snapshot comparison is what proves them equal.
  monitor.mark_written(&datum, 1, {0, 50});
  monitor.mark_written(&datum, 2, {50, 100});
  std::vector<std::uint64_t> snap1;
  monitor.state_snapshot(&datum, snap1);
  const std::uint64_t e1 = monitor.epoch(&datum);

  // A redundant round trip: device 3 gains and loses freshness.
  monitor.mark_copied(&datum, 3, {0, 50});
  monitor.mark_written(&datum, 1, {0, 50});
  std::vector<std::uint64_t> snap2;
  monitor.state_snapshot(&datum, snap2);
  EXPECT_NE(monitor.epoch(&datum), e1); // labels differ...
  EXPECT_EQ(snap2, snap1);              // ...but the state is the same

  // And a genuinely different state produces a different snapshot.
  monitor.set_pending_aggregation(&datum, {});
  std::vector<std::uint64_t> snap3;
  monitor.state_snapshot(&datum, snap3);
  EXPECT_NE(snap3, snap1);
}

TEST_F(LocationMonitorTest, HostWriteInterleavedWithGatherEpochs) {
  // The MarkHostModified / Gather interleaving as the monitor sees it:
  // device 1 produces rows, a gather replicates them to the host
  // (mark_copied), then an out-of-band host write invalidates the device.
  monitor.mark_written(&datum, 1, {0, 100});
  const std::uint64_t after_kernel = monitor.epoch(&datum);
  monitor.mark_copied(&datum, kHost, {0, 100}); // Gather
  EXPECT_GT(monitor.epoch(&datum), after_kernel);
  EXPECT_TRUE(monitor.up_to_date(&datum, kHost).covers({0, 100}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 1).covers({0, 100}));

  monitor.mark_written(&datum, kHost, {0, 100}); // MarkHostModified
  EXPECT_TRUE(monitor.up_to_date(&datum, kHost).covers({0, 100}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 1).empty());
  // The next device read must plan a host upload.
  const auto ops = monitor.plan_copies(&datum, 1, {0, 100});
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, kHost);
}

} // namespace
