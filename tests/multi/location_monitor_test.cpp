// Unit tests for the Segment Location Monitor — the paper's Algorithm 2
// paths: up-to-date short-circuit, single-location copy, multi-device
// intersections, host fallback, unavailable data, and the upToDate cache.
#include <gtest/gtest.h>

#include <vector>

#include "multi/datum.hpp"
#include "multi/location_monitor.hpp"

namespace {

using namespace maps::multi;

constexpr int kHost = SegmentLocationMonitor::kHost;

class LocationMonitorTest : public ::testing::Test {
protected:
  LocationMonitorTest() : monitor(4), datum(64, 100, "d") {
    datum.Bind(host.data());
    monitor.register_datum(&datum);
  }
  SegmentLocationMonitor monitor;
  std::vector<int> host = std::vector<int>(64 * 100);
  Matrix<int> datum;
};

TEST_F(LocationMonitorTest, BoundDatumStartsHostResident) {
  EXPECT_TRUE(monitor.up_to_date(&datum, kHost).covers({0, 100}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 1).empty());
}

TEST_F(LocationMonitorTest, UpToDateTargetNeedsNoCopies) {
  monitor.mark_copied(&datum, 1, {0, 50});
  EXPECT_TRUE(monitor.plan_copies(&datum, 1, {10, 40}).empty());
}

TEST_F(LocationMonitorTest, SingleLocationFastPath) {
  // Algorithm 2 lines 5-8: the whole piece lives in one location.
  const auto ops = monitor.plan_copies(&datum, 1, {20, 60});
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, kHost);
  EXPECT_EQ(ops[0].rows, (RowInterval{20, 60}));
}

TEST_F(LocationMonitorTest, PrefersDeviceOverHost) {
  monitor.mark_written(&datum, 2, {0, 100});
  const auto ops = monitor.plan_copies(&datum, 1, {25, 75});
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, 2);
}

TEST_F(LocationMonitorTest, SegmentedDatumIntersectsAcrossDevices) {
  // Algorithm 2 lines 9-14: the datum is segmented among devices; the
  // required segment is assembled from N-dimensional intersections.
  monitor.mark_written(&datum, 1, {0, 25});
  monitor.mark_written(&datum, 2, {25, 50});
  monitor.mark_written(&datum, 3, {50, 75});
  monitor.mark_written(&datum, 4, {75, 100});
  const auto ops = monitor.plan_copies(&datum, 1, {10, 90});
  // Target already holds [10,25); pieces come from devices 2,3,4.
  std::size_t total = 0;
  for (const auto& op : ops) {
    EXPECT_NE(op.src_location, kHost);
    EXPECT_NE(op.src_location, 1);
    total += op.rows.size();
  }
  EXPECT_EQ(total, 65u); // [25,90)
}

TEST_F(LocationMonitorTest, WritesInvalidateOtherLocations) {
  monitor.mark_copied(&datum, 1, {0, 100});
  monitor.mark_copied(&datum, 2, {0, 100});
  monitor.mark_written(&datum, 2, {40, 60});
  EXPECT_FALSE(monitor.up_to_date(&datum, 1).covers({40, 60}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 1).covers({0, 40}));
  EXPECT_FALSE(monitor.up_to_date(&datum, kHost).covers({40, 60}));
  EXPECT_TRUE(monitor.up_to_date(&datum, 2).covers({0, 100}));
  EXPECT_TRUE(monitor.last_output(&datum, 2).covers({40, 60}));
}

TEST_F(LocationMonitorTest, HaloSlotPlanningIgnoresTargetHoldings) {
  // Wrap/Clamp halo slots must be refilled even when the target nominally
  // holds the rows (they live at a different buffer position).
  monitor.mark_written(&datum, 1, {0, 100});
  EXPECT_TRUE(monitor.plan_copies(&datum, 1, {99, 100}).empty());
  const auto ops = monitor.plan_copies(&datum, 1, {99, 100},
                                       /*target_holds_slot=*/false);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, 1); // intra-device copy into the slot
}

TEST_F(LocationMonitorTest, UnavailableRowsThrow) {
  Matrix<int> unbound(8, 10, "unbound");
  monitor.register_datum(&unbound);
  EXPECT_THROW(monitor.plan_copies(&unbound, 1, {0, 10}), std::runtime_error);
}

TEST_F(LocationMonitorTest, PendingAggregationBlocksReads) {
  SegmentLocationMonitor::PendingAggregation agg;
  agg.kind = AggregationKind::Sum;
  agg.writer_slots = {0, 1};
  monitor.set_pending_aggregation(&datum, std::move(agg));
  EXPECT_THROW(monitor.plan_copies(&datum, 1, {0, 10}), std::runtime_error);
  monitor.clear_pending_aggregation(&datum);
  EXPECT_EQ(monitor.pending_aggregation(&datum), nullptr);
}

TEST_F(LocationMonitorTest, UnknownDatumThrows) {
  Matrix<int> other(8, 10, "other");
  EXPECT_THROW((void)monitor.up_to_date(&other, 0), std::logic_error);
}

} // namespace
