// Cluster extension (paper §8 future work): MAPS-Multi running unmodified
// over multiple multi-GPU nodes, with cross-node exchanges staged through
// the hosts and the network.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "apps/game_of_life.hpp"
#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

TEST(ClusterTopologyTest, NodeMembershipAndPeering) {
  const sim::Topology topo = sim::Topology::cluster(2, 4);
  EXPECT_EQ(topo.device_count(), 8);
  EXPECT_EQ(topo.cluster_nodes(), 2);
  EXPECT_EQ(topo.cluster_node_of(3), 0);
  EXPECT_EQ(topo.cluster_node_of(4), 1);
  EXPECT_TRUE(topo.peer_enabled(0, 3));
  EXPECT_FALSE(topo.peer_enabled(3, 4)); // cross-node: host + network
  EXPECT_EQ(topo.network_seconds(0, 1, 1 << 20), 0.0);
  EXPECT_GT(topo.network_seconds(0, 7, 1 << 20), 30e-6);
}

TEST(ClusterTest, CrossNodeCopyStagesThroughHostsAndNetwork) {
  sim::Node intra(sim::homogeneous_node(sim::gtx780(), 8),
                  sim::Topology::cluster(1, 8), sim::ExecMode::TimingOnly);
  sim::Node cross(sim::homogeneous_node(sim::gtx780(), 8),
                  sim::Topology::cluster(2, 4), sim::ExecMode::TimingOnly);
  const std::size_t bytes = 16 << 20;
  for (sim::Node* node : {&intra, &cross}) {
    sim::Buffer* a = node->malloc_device(0, bytes);
    sim::Buffer* b = node->malloc_device(5, bytes);
    node->memcpy_p2p(node->default_stream(5), b, 0, a, 0, bytes);
    node->synchronize();
  }
  EXPECT_GT(cross.now_ms(), 2.0 * intra.now_ms());
  EXPECT_EQ(cross.stats().bytes_host_staged, bytes);
  EXPECT_EQ(intra.stats().bytes_p2p, bytes);
}

TEST(ClusterTest, GameOfLifeCorrectAcrossTwoNodes) {
  // The same framework code runs unmodified on a 2x4 cluster; boundary
  // exchanges that cross the node boundary are staged automatically.
  const std::size_t W = 96, H = 128;
  std::mt19937 rng(3);
  std::vector<int> a(W * H), b(W * H, 0);
  for (auto& v : a) {
    v = static_cast<int>(rng() & 1u);
  }
  std::vector<int> ref = a;

  sim::Node node(sim::homogeneous_node(sim::gtx780(), 8),
                 sim::Topology::cluster(2, 4));
  Scheduler sched(node);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  const int iterations = 4;
  apps::gol::run(sched, A, B, iterations, apps::gol::Scheme::MapsIlp);
  for (int i = 0; i < iterations; ++i) {
    apps::gol::reference_tick(ref, W, H);
  }
  EXPECT_EQ(a, ref); // iterations even: result in A
  EXPECT_GT(node.stats().bytes_host_staged, 0u); // node-boundary exchanges
}

TEST(ClusterTest, NetworkLatencyDegradesScalingAsThePaperExpects) {
  // §8: "communication latency is orders of magnitude higher than within a
  // multi-GPU node" — the same 8 GPUs scale worse as a 2x4 cluster than as
  // one (hypothetical) 8-GPU node.
  auto gol_ms = [](const sim::Topology& topo) {
    sim::Node node(sim::homogeneous_node(sim::gtx780(), 8), topo,
                   sim::ExecMode::TimingOnly);
    Scheduler sched(node);
    std::vector<int> dummy(1);
    Matrix<int> a(8192, 8192, "A"), b(8192, 8192, "B");
    a.Bind(dummy.data());
    b.Bind(dummy.data());
    return apps::gol::run(sched, a, b, 50, apps::gol::Scheme::MapsIlp) / 50;
  };
  const double one_node = gol_ms(sim::Topology::cluster(1, 8));
  const double two_nodes = gol_ms(sim::Topology::cluster(2, 4));
  EXPECT_GT(two_nodes, one_node);
}

} // namespace
