// Cluster extension (paper §8 future work): MAPS-Multi running unmodified
// over multiple multi-GPU nodes, with cross-node exchanges staged through
// the hosts and the network.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "apps/game_of_life.hpp"
#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

TEST(ClusterTopologyTest, NodeMembershipAndPeering) {
  const sim::Topology topo = sim::Topology::cluster(2, 4);
  EXPECT_EQ(topo.device_count(), 8);
  EXPECT_EQ(topo.cluster_nodes(), 2);
  EXPECT_EQ(topo.cluster_node_of(3), 0);
  EXPECT_EQ(topo.cluster_node_of(4), 1);
  EXPECT_TRUE(topo.peer_enabled(0, 3));
  EXPECT_FALSE(topo.peer_enabled(3, 4)); // cross-node: host + network
  EXPECT_EQ(topo.network_seconds(0, 1, 1 << 20), 0.0);
  EXPECT_GT(topo.network_seconds(0, 7, 1 << 20), 30e-6);
}

TEST(ClusterTest, CrossNodeCopyStagesThroughHostsAndNetwork) {
  sim::Node intra(sim::homogeneous_node(sim::gtx780(), 8),
                  sim::Topology::cluster(1, 8), sim::ExecMode::TimingOnly);
  sim::Node cross(sim::homogeneous_node(sim::gtx780(), 8),
                  sim::Topology::cluster(2, 4), sim::ExecMode::TimingOnly);
  const std::size_t bytes = 16 << 20;
  for (sim::Node* node : {&intra, &cross}) {
    sim::Buffer* a = node->malloc_device(0, bytes);
    sim::Buffer* b = node->malloc_device(5, bytes);
    node->memcpy_p2p(node->default_stream(5), b, 0, a, 0, bytes);
    node->synchronize();
  }
  EXPECT_GT(cross.now_ms(), 2.0 * intra.now_ms());
  // Cross-node traffic is classified by its full path (NetworkStaged), not
  // as plain host staging — the network tier owns those bytes.
  EXPECT_EQ(cross.stats().bytes_network, bytes);
  EXPECT_EQ(cross.stats().bytes_host_staged, 0u);
  EXPECT_GT(cross.stats().nic_send_busy_seconds, 0.0);
  EXPECT_GT(cross.stats().nic_recv_busy_seconds, 0.0);
  EXPECT_EQ(intra.stats().bytes_p2p, bytes);
}

TEST(ClusterTest, PipelinedCrossingsOverlapConcurrentTransfers) {
  // Two crossings from the same source to different remote devices: under
  // the monolithic reservation model (network_pipelining = false, the PR 8
  // behaviour) the second holds every staged resource for the full window
  // behind the first; with leg decomposition its d2h stage overlaps the
  // first crossing's wire time.
  const std::size_t bytes = 8 << 20;
  auto run = [&](bool pipelining, bool second) {
    sim::Topology topo = sim::Topology::cluster(2, 4);
    topo.network_pipelining = pipelining;
    sim::Node node(sim::homogeneous_node(sim::gtx780(), 8), topo,
                   sim::ExecMode::TimingOnly);
    sim::Buffer* a = node.malloc_device(0, bytes);
    sim::Buffer* b5 = node.malloc_device(5, bytes);
    node.memcpy_p2p(node.default_stream(5), b5, 0, a, 0, bytes);
    if (second) {
      sim::Buffer* b6 = node.malloc_device(6, bytes);
      node.memcpy_p2p(node.default_stream(6), b6, 0, a, 0, bytes);
    }
    node.synchronize();
    return node.now_ms();
  };
  EXPECT_LT(run(true, true), run(false, true));
  // A lone crossing costs the same either way: the leg windows partition
  // the monolithic staged duration exactly.
  EXPECT_DOUBLE_EQ(run(true, false), run(false, false));
}

TEST(ClusterTest, GameOfLifeCorrectAcrossTwoNodes) {
  // The same framework code runs unmodified on a 2x4 cluster; boundary
  // exchanges that cross the node boundary are staged automatically.
  const std::size_t W = 96, H = 128;
  std::mt19937 rng(3);
  std::vector<int> a(W * H), b(W * H, 0);
  for (auto& v : a) {
    v = static_cast<int>(rng() & 1u);
  }
  std::vector<int> ref = a;

  sim::Node node(sim::homogeneous_node(sim::gtx780(), 8),
                 sim::Topology::cluster(2, 4));
  Scheduler sched(node);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  const int iterations = 4;
  apps::gol::run(sched, A, B, iterations, apps::gol::Scheme::MapsIlp);
  for (int i = 0; i < iterations; ++i) {
    apps::gol::reference_tick(ref, W, H);
  }
  EXPECT_EQ(a, ref); // iterations even: result in A
  EXPECT_GT(node.stats().bytes_network, 0u); // node-boundary exchanges
}

// --- node loss -------------------------------------------------------------

struct ClusterGolRun {
  std::vector<int> a;
  std::size_t devices_lost = 0;
  std::vector<bool> lost; // per slot
  std::uint32_t pipeline_depth = 0;
};

struct ClusterGolOptions {
  std::size_t copy_chunk_bytes = 0; // 0: keep the scheduler default
  bool placement = false;
};

// Four GoL ticks on a 2x2 cluster with fault tolerance on; `kill_after`
// ticks in, the whole of cluster node 1 goes down at once.
ClusterGolRun run_cluster_gol(int kill_after, ClusterGolOptions opt = {}) {
  const std::size_t W = 64, H = 64;
  std::mt19937 rng(7);
  ClusterGolRun out;
  out.a.resize(W * H);
  for (auto& v : out.a) {
    v = static_cast<int>(rng() & 1u);
  }
  std::vector<int> b(W * H, 0);

  sim::Node node(sim::homogeneous_node(sim::titan_black(), 4),
                 sim::Topology::cluster(2, 2));
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  sched.set_sanitizer_enabled(true);
  if (opt.copy_chunk_bytes > 0) {
    sched.set_copy_chunk_bytes(opt.copy_chunk_bytes);
  }
  sched.set_placement_enabled(opt.placement);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(out.a.data());
  B.Bind(b.data());
  using Win = typename apps::gol::MapsTick<1, 1>::Win;
  using Out = typename apps::gol::MapsTick<1, 1>::Out;
  for (int i = 0; i < 4; ++i) {
    if (i == kill_after) {
      sched.kill_node(1);
    }
    Matrix<int>& src = i % 2 == 0 ? A : B;
    Matrix<int>& dst = i % 2 == 0 ? B : A;
    sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(src), Out(dst));
  }
  sched.Gather(A);
  out.devices_lost = sched.stats().recovery.devices_lost;
  out.pipeline_depth = sched.stats().transfers.max_pipeline_depth;
  for (int slot = 0; slot < 4; ++slot) {
    out.lost.push_back(sched.device_lost(slot));
  }
  return out;
}

TEST(ClusterFaultTest, NodeLossRecoversBitIdentically) {
  // Losing every device of cluster node 1 mid-run (e.g. the node's NIC or
  // host dying) must re-execute through the PR 5 recovery path and land on
  // exactly the fault-free result.
  const ClusterGolRun clean = run_cluster_gol(/*kill_after=*/-1);
  ASSERT_EQ(clean.devices_lost, 0u);

  std::vector<int> ref = clean.a; // start grid re-derived below
  {
    const std::size_t W = 64, H = 64;
    std::mt19937 rng(7);
    for (auto& v : ref) {
      v = static_cast<int>(rng() & 1u);
    }
    for (int i = 0; i < 4; ++i) {
      apps::gol::reference_tick(ref, W, H);
    }
  }
  EXPECT_EQ(clean.a, ref);

  for (int kill_after : {1, 2, 3}) {
    const ClusterGolRun faulty = run_cluster_gol(kill_after);
    EXPECT_EQ(faulty.a, clean.a) << "kill_after=" << kill_after;
    EXPECT_EQ(faulty.devices_lost, 2u) << "kill_after=" << kill_after;
    // Node 0 (slots 0,1) survives; node 1 (slots 2,3) is gone.
    EXPECT_EQ(faulty.lost, std::vector<bool>({false, false, true, true}));
  }
}

TEST(ClusterFaultTest, NodeLossMidPipelinedCrossingRecoversBitIdentically) {
  // Tiny copy chunks force every multi-row cross-node route into a chunked
  // pipeline (the scatter and the post-kill rebalance both move multi-row
  // bands across the network), so the kill lands with chunked network
  // pieces in flight. Recovery must still reach the fault-free answer —
  // with topology-aware placement both off and on.
  const ClusterGolRun clean = run_cluster_gol(/*kill_after=*/-1);
  for (const bool placement : {false, true}) {
    ClusterGolOptions opt;
    opt.copy_chunk_bytes = 512; // W=64 ints: 256-byte rows, 2-row chunks
    opt.placement = placement;
    const ClusterGolRun chunked_clean = run_cluster_gol(-1, opt);
    EXPECT_EQ(chunked_clean.a, clean.a) << "placement=" << placement;
    EXPECT_GT(chunked_clean.pipeline_depth, 1u)
        << "expected chunked network routes, placement=" << placement;
    for (int kill_after : {1, 2}) {
      const ClusterGolRun faulty = run_cluster_gol(kill_after, opt);
      EXPECT_EQ(faulty.a, clean.a)
          << "kill_after=" << kill_after << " placement=" << placement;
      EXPECT_EQ(faulty.devices_lost, 2u);
      EXPECT_GT(faulty.pipeline_depth, 1u);
    }
  }
}

TEST(ClusterFaultTest, KillNodeValidatesItsTarget) {
  sim::Node node(sim::homogeneous_node(sim::titan_black(), 4),
                 sim::Topology::cluster(2, 2));
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  EXPECT_THROW(sched.kill_node(-1), std::invalid_argument);
  EXPECT_THROW(sched.kill_node(2), std::invalid_argument);
  sched.kill_node(1);
  EXPECT_TRUE(sched.device_lost(2));
  EXPECT_TRUE(sched.device_lost(3));
  // Already dead: no live devices left on the node.
  EXPECT_THROW(sched.kill_node(1), std::logic_error);
  // Killing the surviving node would take the last device with it.
  EXPECT_THROW(sched.kill_node(0), std::runtime_error);
}

TEST(ClusterTest, NetworkLatencyDegradesScalingAsThePaperExpects) {
  // §8: "communication latency is orders of magnitude higher than within a
  // multi-GPU node" — the same 8 GPUs scale worse as a 2x4 cluster than as
  // one (hypothetical) 8-GPU node.
  auto gol_ms = [](const sim::Topology& topo) {
    sim::Node node(sim::homogeneous_node(sim::gtx780(), 8), topo,
                   sim::ExecMode::TimingOnly);
    Scheduler sched(node);
    std::vector<int> dummy(1);
    Matrix<int> a(8192, 8192, "A"), b(8192, 8192, "B");
    a.Bind(dummy.data());
    b.Bind(dummy.data());
    return apps::gol::run(sched, a, b, 50, apps::gol::Scheme::MapsIlp) / 50;
  };
  const double one_node = gol_ms(sim::Topology::cluster(1, 8));
  const double two_nodes = gol_ms(sim::Topology::cluster(2, 4));
  EXPECT_GT(two_nodes, one_node);
}

} // namespace
