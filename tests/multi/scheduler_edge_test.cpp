// Scheduler edge cases: device subsets, async gathers, error propagation,
// out-of-memory behaviour, host-modification semantics, Window2D boundary
// sweeps on awkward sizes, and NDArray/WindowND tasks.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

struct AddOneKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& in, Out& out) const {
    MAPS_FOREACH(it, out) {
      *it = in.at(it, 0) + 1.0f;
    }
  }
};

struct Copy1DKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& in, Out& out) const {
    MAPS_FOREACH(it, out) {
      *it = in.at(it, 0);
    }
  }
};

struct NoopKernel {
  template <typename A, typename B>
  void operator()(const maps::ThreadContext&, A&, B&) const {}
};

struct ScaleKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      *it = 3 * x.at(it, 0, 0);
    }
  }
};

TEST(SchedulerEdgeTest, DeviceSubsetUsesOnlyListedDevices) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
  Scheduler sched(node, {1, 3}); // two of the four devices
  const std::size_t W = 64, H = 64;
  std::vector<int> a(W * H, 2), b(W * H, 0);
  Matrix<int> A(W, H), B(W, H);
  A.Bind(a.data());
  B.Bind(b.data());
  sched.Invoke(ScaleKernel{}, Window2D<int, 0, maps::NO_CHECKS>(A),
               StructuredInjective<int, 2>(B));
  sched.Gather(B);
  EXPECT_EQ(b[0], 6);
  EXPECT_EQ(b[W * H - 1], 6);
  EXPECT_GT(node.stats().device_compute_seconds[1], 0.0);
  EXPECT_GT(node.stats().device_compute_seconds[3], 0.0);
  EXPECT_EQ(node.stats().device_compute_seconds[0], 0.0);
  EXPECT_EQ(node.stats().device_compute_seconds[2], 0.0);
}

TEST(SchedulerEdgeTest, GatherAsyncCompletesAtWaitAll) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2));
  Scheduler sched(node);
  const std::size_t n = 256;
  std::vector<float> x(n, 1.0f), y(n, 0.0f);
  Vector<float> X(n), Y(n);
  X.Bind(x.data());
  Y.Bind(y.data());
  sched.Invoke(AddOneKernel{}, Window1D<float, 0, maps::NO_CHECKS>(X),
               StructuredInjective<float, 1>(Y));
  sched.GatherAsync(Y);
  sched.WaitAll();
  EXPECT_EQ(y[100], 2.0f);
}

TEST(SchedulerEdgeTest, FailingRoutineSurfacesAtWaitAll) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2));
  Scheduler sched(node);
  std::vector<float> x(64, 0.0f);
  Vector<float> X(64);
  X.Bind(x.data());
  auto bad = [](RoutineArgs&) { return false; };
  sched.InvokeUnmodified(bad, nullptr, Work{64},
                         Block2D<float>(static_cast<Datum&>(X)),
                         StructuredInjective<float, 1>(X));
  EXPECT_THROW(sched.WaitAll(), std::runtime_error);
}

TEST(SchedulerEdgeTest, DeviceOutOfMemoryPropagates) {
  // A GTX 780 holds 3 GiB; a replicated 4 GiB datum cannot fit.
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  const std::size_t n = (4ull << 30) / sizeof(float);
  std::vector<float> tiny(1);
  Vector<float> X(n, "huge"), Y(1 << 10, "out");
  X.Bind(tiny.data());
  Y.Bind(tiny.data());
  EXPECT_THROW(sched.Invoke(NoopKernel{}, Block1D<float>(X),
                            StructuredInjective<float, 1>(Y)),
               sim::OutOfDeviceMemory);
}

TEST(SchedulerEdgeTest, MarkHostModifiedForcesReupload) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2));
  Scheduler sched(node);
  const std::size_t n = 512;
  std::vector<float> x(n, 1.0f), y(n, 0.0f);
  Vector<float> X(n), Y(n);
  X.Bind(x.data());
  Y.Bind(y.data());
  using In = Window1D<float, 0, maps::NO_CHECKS>;
  sched.Invoke(Copy1DKernel{}, In(X), StructuredInjective<float, 1>(Y));
  sched.WaitAll();
  // Host rewrites x; without notification the cached replicas would win.
  std::fill(x.begin(), x.end(), 7.0f);
  sched.MarkHostModified(X);
  sched.Invoke(Copy1DKernel{}, In(X), StructuredInjective<float, 1>(Y));
  sched.Gather(Y);
  EXPECT_EQ(y[10], 7.0f);
}

TEST(SchedulerEdgeTest, GatherOfUntouchedDatumIsANoOp) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2));
  Scheduler sched(node);
  std::vector<float> x(16, 3.0f);
  Vector<float> X(16);
  X.Bind(x.data());
  sched.Gather(X); // never used by a task: host copy is authoritative
  EXPECT_EQ(x[5], 3.0f);
  EXPECT_EQ(node.stats().bytes_d2h, 0u);
}

TEST(SchedulerEdgeTest, UnboundGatherThrows) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 1));
  Scheduler sched(node);
  Vector<float> X(16);
  EXPECT_THROW(sched.Gather(X), std::runtime_error);
}

// --- Window2D boundary sweep on awkward sizes ----------------------------------

struct SumNeighborhood {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      int acc = 0;
      MAPS_FOREACH_ALIGNED(n, x, it) {
        acc += *n;
      }
      *it = acc;
    }
  }
};

class Window2DBoundaryTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Window2DBoundaryTest, NeighborhoodSumsMatchReference) {
  const int devices = std::get<0>(GetParam());
  const int boundary = std::get<1>(GetParam());
  const std::size_t H = static_cast<std::size_t>(std::get<2>(GetParam()));
  const std::size_t W = 37; // deliberately awkward width
  std::mt19937 rng(H * 131u);
  std::vector<int> x(W * H), y(W * H, -1);
  for (auto& v : x) {
    v = static_cast<int>(rng() % 9);
  }
  auto at = [&](long i, long j) -> int {
    switch (boundary) {
    case 0: // Wrap
      i = (i % static_cast<long>(H) + static_cast<long>(H)) %
          static_cast<long>(H);
      j = (j % static_cast<long>(W) + static_cast<long>(W)) %
          static_cast<long>(W);
      break;
    case 1: // Clamp
      i = std::clamp<long>(i, 0, static_cast<long>(H) - 1);
      j = std::clamp<long>(j, 0, static_cast<long>(W) - 1);
      break;
    default: // Zero
      if (i < 0 || j < 0 || i >= static_cast<long>(H) ||
          j >= static_cast<long>(W)) {
        return 0;
      }
      break;
    }
    return x[static_cast<std::size_t>(i) * W + static_cast<std::size_t>(j)];
  };

  sim::Node node(sim::homogeneous_node(sim::gtx980(), devices));
  Scheduler sched(node);
  Matrix<int> X(W, H), Y(W, H);
  X.Bind(x.data());
  Y.Bind(y.data());
  switch (boundary) {
  case 0:
    sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::WRAP>(X),
                 StructuredInjective<int, 2>(Y));
    break;
  case 1:
    sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::CLAMP>(X),
                 StructuredInjective<int, 2>(Y));
    break;
  default:
    sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::ZERO>(X),
                 StructuredInjective<int, 2>(Y));
    break;
  }
  sched.Gather(Y);
  for (std::size_t i = 0; i < H; ++i) {
    for (std::size_t j = 0; j < W; ++j) {
      int ref = 0;
      for (int di = -1; di <= 1; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          ref += at(static_cast<long>(i) + di, static_cast<long>(j) + dj);
        }
      }
      ASSERT_EQ(y[i * W + j], ref) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DevicesBoundarySize, Window2DBoundaryTest,
    ::testing::Combine(::testing::Values(1, 3, 4), ::testing::Values(0, 1, 2),
                       ::testing::Values(29, 64, 101)));

// --- NDArray + WindowND: batched 1-slice blur ------------------------------------

struct SliceBlur {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      // dim0 = slice index (work row); inner = flattened (h, w).
      const long slice = it.work_y();
      const std::size_t inner = it.work_x();
      *it = 0.25f * x.at(slice, -1, inner) + 0.5f * x.at(slice, 0, inner) +
            0.25f * x.at(slice, +1, inner);
    }
  }
};

TEST(SchedulerEdgeTest, NDArrayWindowNDBlursAcrossSlices) {
  const std::size_t slices = 48, h = 6, w = 5;
  std::vector<float> x(slices * h * w), y(slices * h * w, 0.0f);
  std::mt19937 rng(77);
  std::uniform_real_distribution<float> dist(0, 1);
  for (auto& v : x) {
    v = dist(rng);
  }
  sim::Node node(sim::homogeneous_node(sim::titan_black(), 4));
  Scheduler sched(node);
  NDArray<float, 3> X({slices, h, w}, "x"), Y({slices, h, w}, "y");
  X.Bind(x.data());
  Y.Bind(y.data());
  sched.Invoke(SliceBlur{}, WindowND<float, 3, 1, maps::CLAMP>(X),
               StructuredInjective<float, 2>(Y));
  sched.Gather(Y);
  const std::size_t inner = h * w;
  for (std::size_t s = 0; s < slices; s += 5) {
    for (std::size_t i = 0; i < inner; i += 3) {
      const std::size_t sm = s == 0 ? 0 : s - 1;
      const std::size_t sp = s == slices - 1 ? s : s + 1;
      const float ref = 0.25f * x[sm * inner + i] + 0.5f * x[s * inner + i] +
                        0.25f * x[sp * inner + i];
      ASSERT_NEAR(y[s * inner + i], ref, 1e-5f) << s << "," << i;
    }
  }
}

/// SumNeighborhood with bounded values: iterating the unbounded sum from
/// all-ones grows 9x per step and overflows int within the loop below.
struct BoundedSumNeighborhood {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      int acc = 0;
      MAPS_FOREACH_ALIGNED(n, x, it) {
        acc += *n % 1000;
      }
      *it = acc % 1000;
    }
  }
};

// --- Interior/boundary splitting (compute-transfer overlap) ---------------------

/// Reference sum-neighborhood run: overlap disabled, same seed/shape.
std::vector<int> overlap_reference(int devices, std::size_t W, std::size_t H,
                                   const std::vector<int>& x) {
  sim::Node node(sim::homogeneous_node(sim::gtx980(), devices));
  Scheduler sched(node);
  sched.set_overlap_enabled(false);
  std::vector<int> y(W * H, -1);
  std::vector<int> xm = x;
  Matrix<int> X(W, H), Y(W, H);
  X.Bind(xm.data());
  Y.Bind(y.data());
  sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::WRAP>(X),
               StructuredInjective<int, 2>(Y));
  sched.Gather(Y);
  return y;
}

TEST(SchedulerEdgeTest, OverlapSplitsIntoInteriorAndBoundaryStrips) {
  const std::size_t W = 37, H = 256; // 8 block rows per device at span 8
  std::mt19937 rng(123);
  std::vector<int> x(W * H);
  for (auto& v : x) {
    v = static_cast<int>(rng() % 9);
  }
  const std::vector<int> ref = overlap_reference(4, W, H, x);

  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
  Scheduler sched(node);
  sched.set_overlap_min_benefit(0.0); // force the split past the cost gate
  std::vector<int> y(W * H, -1);
  std::vector<int> xm = x;
  Matrix<int> X(W, H), Y(W, H);
  X.Bind(xm.data());
  Y.Bind(y.data());
  sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::WRAP>(X),
               StructuredInjective<int, 2>(Y));
  sched.Gather(Y);

  // Every device splits into top boundary + interior + bottom boundary (the
  // global edges also read Wrap halo slots, so they are boundary too).
  EXPECT_EQ(sched.stats().interior_subkernels, 4u);
  EXPECT_EQ(sched.stats().boundary_subkernels, 8u);
  EXPECT_EQ(y, ref); // bit-identical to the unsplit run
}

TEST(SchedulerEdgeTest, OverlapDeclinesSegmentThinnerThanHalo) {
  // 64 rows over 4 devices = 2 block rows each (span 8): both are boundary,
  // so there is no interior strip and the device stays unsplit.
  const std::size_t W = 37, H = 64;
  std::mt19937 rng(321);
  std::vector<int> x(W * H);
  for (auto& v : x) {
    v = static_cast<int>(rng() % 9);
  }
  const std::vector<int> ref = overlap_reference(4, W, H, x);

  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
  Scheduler sched(node);
  sched.set_overlap_min_benefit(0.0);
  std::vector<int> y(W * H, -1);
  std::vector<int> xm = x;
  Matrix<int> X(W, H), Y(W, H);
  X.Bind(xm.data());
  Y.Bind(y.data());
  sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::WRAP>(X),
               StructuredInjective<int, 2>(Y));
  sched.Gather(Y);

  EXPECT_EQ(sched.stats().interior_subkernels, 0u);
  EXPECT_EQ(sched.stats().boundary_subkernels, 0u);
  EXPECT_EQ(y, ref);
}

TEST(SchedulerEdgeTest, OverlapIsANoOpOnOneDevice) {
  const std::size_t W = 37, H = 256;
  std::mt19937 rng(55);
  std::vector<int> x(W * H);
  for (auto& v : x) {
    v = static_cast<int>(rng() % 9);
  }
  const std::vector<int> ref = overlap_reference(1, W, H, x);

  sim::Node node(sim::homogeneous_node(sim::gtx980(), 1));
  Scheduler sched(node);
  sched.set_overlap_min_benefit(0.0);
  std::vector<int> y(W * H, -1);
  std::vector<int> xm = x;
  Matrix<int> X(W, H), Y(W, H);
  X.Bind(xm.data());
  Y.Bind(y.data());
  sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::WRAP>(X),
               StructuredInjective<int, 2>(Y));
  sched.Gather(Y);

  EXPECT_EQ(sched.stats().interior_subkernels, 0u);
  EXPECT_EQ(sched.stats().boundary_subkernels, 0u);
  EXPECT_EQ(y, ref);
}

TEST(SchedulerEdgeTest, OverlapSplitsZeroBoundaryWithoutCopyDependency) {
  // Boundary::Zero global edges: the edge strips' halo slots are zero-filled
  // locally (no peer copy to wait on), and the results still match.
  const std::size_t W = 37, H = 192;
  std::mt19937 rng(99);
  std::vector<int> x(W * H);
  for (auto& v : x) {
    v = static_cast<int>(rng() % 9);
  }
  auto run = [&](bool overlap) {
    sim::Node node(sim::homogeneous_node(sim::gtx980(), 3));
    Scheduler sched(node);
    sched.set_overlap_enabled(overlap);
    sched.set_overlap_min_benefit(0.0);
    std::vector<int> y(W * H, -1);
    std::vector<int> xm = x;
    Matrix<int> X(W, H), Y(W, H);
    X.Bind(xm.data());
    Y.Bind(y.data());
    sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::ZERO>(X),
                 StructuredInjective<int, 2>(Y));
    sched.Gather(Y);
    if (overlap) {
      EXPECT_GT(sched.stats().boundary_subkernels, 0u);
    }
    return y;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(SchedulerEdgeTest, ChunkedCopiesPreserveResultsAndBytes) {
  // A replicated input forces whole-segment uploads; a 1 KiB chunk threshold
  // splits them into many row-range pieces. Byte totals and results must not
  // change, only the piece count.
  const std::size_t W = 64, H = 128;
  std::mt19937 rng(7);
  std::vector<int> x(W * H);
  for (auto& v : x) {
    v = static_cast<int>(rng() % 100);
  }
  auto run = [&](std::size_t chunk_bytes, std::uint64_t* bytes_total,
                 std::uint32_t* chunked) {
    sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
    Scheduler sched(node);
    sched.set_copy_chunk_bytes(chunk_bytes);
    std::vector<int> y(W * H, -1);
    std::vector<int> xm = x;
    Matrix<int> X(W, H), Y(W, H);
    X.Bind(xm.data());
    Y.Bind(y.data());
    sched.Invoke(SumNeighborhood{}, Window2D<int, 1, maps::CLAMP>(X),
                 StructuredInjective<int, 2>(Y));
    sched.Gather(Y);
    *bytes_total = sched.stats().transfers.bytes_total();
    *chunked = sched.stats().transfers.copies_chunked;
    return y;
  };
  std::uint64_t bytes_plain = 0, bytes_chunked = 0;
  std::uint32_t n_plain = 0, n_chunked = 0;
  const auto plain = run(0, &bytes_plain, &n_plain);
  const auto chunked = run(1 << 10, &bytes_chunked, &n_chunked);
  EXPECT_EQ(plain, chunked);
  EXPECT_EQ(bytes_plain, bytes_chunked);
  EXPECT_EQ(n_plain, 0u);
  EXPECT_GT(n_chunked, 0u);
}

TEST(SchedulerEdgeTest, AllocationsHappenOnceAcrossIterations) {
  // §4.2: the memory analyzer "allocates the necessary memory once,
  // creating contiguous buffers" — iterating a task chain must not allocate
  // again.
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
  Scheduler sched(node);
  const std::size_t W = 64, H = 64;
  std::vector<int> a(W * H, 1), b(W * H, 0);
  Matrix<int> A(W, H), B(W, H);
  A.Bind(a.data());
  B.Bind(b.data());
  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(Win(B), Out(A));
  sched.Invoke(BoundedSumNeighborhood{}, Win(A), Out(B));
  sched.Invoke(BoundedSumNeighborhood{}, Win(B), Out(A));
  sched.WaitAll();
  const std::size_t used_after_two = node.device_mem_used(0);
  const std::size_t analyzer_bytes = sched.analyzer().allocated_bytes(0);
  for (int i = 0; i < 10; ++i) {
    sched.Invoke(BoundedSumNeighborhood{}, Win(A), Out(B));
    sched.Invoke(BoundedSumNeighborhood{}, Win(B), Out(A));
  }
  sched.WaitAll();
  EXPECT_EQ(node.device_mem_used(0), used_after_two);
  EXPECT_EQ(sched.analyzer().allocated_bytes(0), analyzer_bytes);
}

} // namespace
