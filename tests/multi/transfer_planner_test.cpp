// Transfer planner: cost-based source selection over the node topology,
// emergent multicast fan-out, op splitting/coalescing, and the per-task
// TransferStats the scheduler aggregates for planner-on and planner-off runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "multi/maps_multi.hpp"
#include "multi/transfer_planner.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

constexpr int kHost = SegmentLocationMonitor::kHost;

// --- Direct planner unit tests (monitor + topology, no scheduler) ----------

class TransferPlannerTest : public ::testing::Test {
protected:
  TransferPlannerTest()
      : monitor(4), topo(sim::Topology::pcie3_pairs(4)),
        planner(monitor, topo, {0, 1, 2, 3}), datum(64, 100, "d") {
    datum.Bind(host.data());
    monitor.register_datum(&datum);
  }

  SegmentLocationMonitor monitor;
  sim::Topology topo;
  TransferPlanner planner;
  std::vector<int> host = std::vector<int>(64 * 100);
  Matrix<int> datum;
  TransferStats stats;
};

TEST_F(TransferPlannerTest, ReroutesCrossBusOpToInPairReplica) {
  // The rows live on device 1 (in-pair with the target, device 0) and on
  // device 2 (across the inter-socket link). The monitor picked the
  // cross-bus source; the planner must move the op to the pair-mate.
  monitor.mark_written(&datum, 2, {0, 64});
  monitor.mark_copied(&datum, 3, {0, 64});
  planner.begin_task();
  auto ops = planner.route(&datum, 1, datum.row_bytes(),
                           {{3, RowInterval{0, 64}}}, stats);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, 2);
  EXPECT_EQ(ops[0].rows, (RowInterval{0, 64}));
  EXPECT_EQ(stats.copies_rerouted, 1u);
}

TEST_F(TransferPlannerTest, BroadcastFansOutAcrossTheSocketOnce) {
  // Device 0 holds the rows; devices 2 and 3 (the far pair) both need them.
  // The first target must cross the socket; the second should be served by
  // the fresh replica on its pair-mate instead of crossing again. Rows are
  // wide enough that bandwidth dominates latency — for tiny transfers a
  // second socket crossing pipelines behind the first and legitimately wins.
  const std::size_t wide_row = std::size_t{1} << 20;
  monitor.mark_written(&datum, 1, {0, 64});
  planner.begin_task();

  auto first = planner.route(&datum, 3, wide_row,
                             {{1, RowInterval{0, 64}}}, stats);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].src_location, 1);
  monitor.mark_copied(&datum, 3, {0, 64});

  auto second = planner.route(&datum, 4, wide_row,
                              {{1, RowInterval{0, 64}}}, stats);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].src_location, 3) << "expected in-pair forwarding";
  EXPECT_EQ(stats.copies_rerouted, 1u);
  EXPECT_EQ(stats.max_fanout_depth, 2u);
}

TEST_F(TransferPlannerTest, CoalescesAdjacentSameSourceOps) {
  planner.begin_task();
  auto ops = planner.route(
      &datum, 1, datum.row_bytes(),
      {{kHost, RowInterval{0, 32}}, {kHost, RowInterval{32, 64}}}, stats);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, kHost);
  EXPECT_EQ(ops[0].rows, (RowInterval{0, 64}));
  EXPECT_EQ(stats.copies_coalesced, 1u);
  EXPECT_EQ(stats.copies_planned, 2u);
}

TEST_F(TransferPlannerTest, SplitsOpsAtFreshReplicaBoundaries) {
  // Rows [0, 32) were just routed to device 2 this task; a later op spanning
  // [0, 64) must not be welded to the in-flight replica's schedule. The
  // planner splits it: the fresh half forwards in-pair, the rest still
  // crosses from the original holder.
  const std::size_t wide_row = std::size_t{1} << 20;
  monitor.mark_written(&datum, 1, {0, 64});
  planner.begin_task();
  (void)planner.route(&datum, 3, wide_row,
                      {{1, RowInterval{0, 32}}}, stats);
  monitor.mark_copied(&datum, 3, {0, 32});

  auto ops = planner.route(&datum, 4, wide_row,
                           {{1, RowInterval{0, 64}}}, stats);
  ASSERT_EQ(ops.size(), 2u);
  // Canonical order: sorted by (source, row).
  EXPECT_EQ(ops[0].src_location, 1);
  EXPECT_EQ(ops[0].rows, (RowInterval{32, 64}));
  EXPECT_EQ(ops[1].src_location, 3);
  EXPECT_EQ(ops[1].rows, (RowInterval{0, 32}));
}

// --- Cluster gateway determinism --------------------------------------------

TEST(GatewayTieBreakTest, EqualFinishCandidatesResolveToTheLowerDevice) {
  // Devices 6 and 7 (cluster node 1, pair-mates on the same bus) both hold
  // the rows; the target, device 4, is cross-bus from each, so both
  // candidate copies finish at exactly the same simulated time. The tie
  // must resolve to the lower device index — plan-cache replay depends on
  // this ordering being stable across planner changes.
  SegmentLocationMonitor monitor(8);
  sim::Topology topo = sim::Topology::cluster(2, 4);
  TransferPlanner planner(monitor, topo, {0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<int> host(64 * 100);
  Matrix<int> datum(64, 100, "d");
  datum.Bind(host.data());
  monitor.register_datum(&datum);
  TransferStats stats;

  monitor.mark_written(&datum, 7, {0, 64}); // device 6
  monitor.mark_copied(&datum, 8, {0, 64});  // device 7
  planner.begin_task();
  auto ops = planner.route(&datum, 5, datum.row_bytes(),
                           {{7, RowInterval{0, 64}}}, stats);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].src_location, 7) << "tie must pick the lower device";
}

TEST(GatewayTieBreakTest, GatewayRotationReplansIdenticallyAcrossTasks) {
  // The gateway-rotation counter resets in begin_task, so the SAME request
  // sequence must produce the SAME ops in a later task — the invariant the
  // scheduler's plan cache relies on when replaying fingerprinted plans.
  SegmentLocationMonitor monitor(8);
  sim::Topology topo = sim::Topology::cluster(2, 4);
  std::vector<int> host(64 * 100);
  Matrix<int> datum(64, 100, "d");
  datum.Bind(host.data());

  auto plan_once = [&] {
    SegmentLocationMonitor m(8);
    TransferPlanner planner(m, topo, {0, 1, 2, 3, 4, 5, 6, 7});
    m.register_datum(&datum);
    TransferStats stats;
    const std::size_t wide_row = std::size_t{1} << 20;
    m.mark_written(&datum, 1, {0, 64}); // device 0, node 0
    planner.begin_task();
    std::vector<std::vector<SegmentLocationMonitor::CopyOp>> plans;
    // A broadcast chain across the network: successive targets on node 1
    // exercise the fresh-gateway rotation.
    for (int target : {5, 6, 7, 8}) {
      plans.push_back(planner.route(&datum, target, wide_row,
                                    {{1, RowInterval{0, 64}}}, stats));
      m.mark_copied(&datum, target, {0, 64});
    }
    return plans;
  };
  const auto a = plan_once();
  const auto b = plan_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "op " << i;
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      EXPECT_EQ(a[i][k].src_location, b[i][k].src_location);
      EXPECT_EQ(a[i][k].rows, b[i][k].rows);
    }
  }
}

TEST(TransferStatsTest, AddAccumulatesCountersAndMaxesDepth) {
  TransferStats a, b;
  a.bytes_h2d = 10;
  a.bytes_p2p_same_bus = 1;
  a.copies_issued = 2;
  a.max_fanout_depth = 3;
  b.bytes_h2d = 5;
  b.bytes_d2h = 7;
  b.bytes_p2p_cross_bus = 2;
  b.bytes_host_staged = 4;
  b.copies_planned = 6;
  b.copies_issued = 1;
  b.copies_rerouted = 2;
  b.copies_coalesced = 3;
  b.max_fanout_depth = 2;
  a.max_pipeline_depth = 2;
  b.max_pipeline_depth = 5;
  b.bytes_chunked_network = 9;
  b.bytes_chunked_intranode = 3;
  a.add(b);
  EXPECT_EQ(a.bytes_h2d, 15u);
  EXPECT_EQ(a.bytes_d2h, 7u);
  EXPECT_EQ(a.bytes_p2p_same_bus, 1u);
  EXPECT_EQ(a.bytes_p2p_cross_bus, 2u);
  EXPECT_EQ(a.bytes_host_staged, 4u);
  EXPECT_EQ(a.copies_planned, 6u);
  EXPECT_EQ(a.copies_issued, 3u);
  EXPECT_EQ(a.copies_rerouted, 2u);
  EXPECT_EQ(a.copies_coalesced, 3u);
  EXPECT_EQ(a.max_fanout_depth, 3u);
  EXPECT_EQ(a.max_pipeline_depth, 5u);
  EXPECT_EQ(a.bytes_chunked_network, 9u);
  EXPECT_EQ(a.bytes_chunked_intranode, 3u);
}

// --- Scheduler-level attribution and end-to-end behaviour -------------------

bool noop_routine(RoutineArgs&) { return true; }

TEST(SchedulerTransferStatsTest, ByteCategoriesFollowThePhysicalPath) {
  const std::size_t n = 1024, w = 16;
  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<float> h(n * w, 0.0f);
  Matrix<float> A(w, n, "A"), B(w, n, "B"), C(w, n, "C");
  A.Bind(h.data());
  B.Bind(h.data());
  C.Bind(h.data());

  sched.AnalyzeCall(Work{n}, Block2D<float>(A),
                    StructuredInjective<float, 2>(B));
  sched.AnalyzeCall(Work{n}, Block2DTransposed<float>(B),
                    StructuredInjective<float, 2>(C));
  // Partitioned upload: every row crosses a host uplink exactly once.
  sched.InvokeUnmodified(noop_routine, nullptr, Work{n}, Block2D<float>(A),
                         StructuredInjective<float, 2>(B));
  sched.WaitAll();
  const auto& t = sched.stats().transfers;
  EXPECT_EQ(t.bytes_h2d, n * w * sizeof(float));
  EXPECT_EQ(t.bytes_d2h, 0u);
  EXPECT_EQ(t.bytes_p2p_same_bus, 0u);
  EXPECT_EQ(t.bytes_p2p_cross_bus, 0u);
  EXPECT_GE(t.copies_issued, 4u);

  // Replicating the device-striped B fans out over peer links, never
  // touching the host.
  const std::uint64_t h2d_before = t.bytes_h2d;
  sched.InvokeUnmodified(noop_routine, nullptr, Work{n},
                         Block2DTransposed<float>(B),
                         StructuredInjective<float, 2>(C));
  sched.WaitAll();
  EXPECT_EQ(t.bytes_h2d, h2d_before);
  EXPECT_GT(t.bytes_p2p_same_bus, 0u);
  EXPECT_GT(t.bytes_p2p_cross_bus, 0u);
  EXPECT_EQ(t.bytes_host_staged, 0u);
  EXPECT_GE(t.max_fanout_depth, 2u) << "replica forwarding did not happen";

  // Gathers attribute downlink traffic even though they bypass plan_copies.
  sched.GatherAsync(C);
  sched.WaitAll();
  EXPECT_EQ(t.bytes_d2h, n * w * sizeof(float));
}

TEST(SchedulerTransferStatsTest, ForcedHostStagingIsAttributedAsStaged) {
  const std::size_t n = 512, w = 16;
  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_force_host_staged(true);
  std::vector<float> h(n * w, 0.0f);
  Matrix<float> A(w, n, "A"), B(w, n, "B"), C(w, n, "C");
  A.Bind(h.data());
  B.Bind(h.data());
  C.Bind(h.data());

  sched.AnalyzeCall(Work{n}, Block2D<float>(A),
                    StructuredInjective<float, 2>(B));
  sched.AnalyzeCall(Work{n}, Block2DTransposed<float>(B),
                    StructuredInjective<float, 2>(C));
  sched.InvokeUnmodified(noop_routine, nullptr, Work{n}, Block2D<float>(A),
                         StructuredInjective<float, 2>(B));
  sched.InvokeUnmodified(noop_routine, nullptr, Work{n},
                         Block2DTransposed<float>(B),
                         StructuredInjective<float, 2>(C));
  sched.WaitAll();
  const auto& t = sched.stats().transfers;
  EXPECT_GT(t.bytes_host_staged, 0u);
  EXPECT_EQ(t.bytes_p2p_same_bus, 0u);
  EXPECT_EQ(t.bytes_p2p_cross_bus, 0u);
}

TEST(SchedulerTransferStatsTest, PlannerOffKeepsMonitorSources) {
  const std::size_t n = 1024, w = 16;
  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_transfer_planner_enabled(false);
  std::vector<float> h(n * w, 0.0f);
  Matrix<float> A(w, n, "A"), B(w, n, "B"), C(w, n, "C");
  A.Bind(h.data());
  B.Bind(h.data());
  C.Bind(h.data());

  sched.AnalyzeCall(Work{n}, Block2D<float>(A),
                    StructuredInjective<float, 2>(B));
  sched.AnalyzeCall(Work{n}, Block2DTransposed<float>(B),
                    StructuredInjective<float, 2>(C));
  sched.InvokeUnmodified(noop_routine, nullptr, Work{n}, Block2D<float>(A),
                         StructuredInjective<float, 2>(B));
  sched.InvokeUnmodified(noop_routine, nullptr, Work{n},
                         Block2DTransposed<float>(B),
                         StructuredInjective<float, 2>(C));
  sched.WaitAll();
  const auto& t = sched.stats().transfers;
  EXPECT_EQ(t.copies_rerouted, 0u);
  EXPECT_EQ(t.max_fanout_depth, 0u);
  // Byte accounting still classifies every transfer.
  EXPECT_GT(t.bytes_h2d, 0u);
  EXPECT_GT(t.bytes_p2p_same_bus + t.bytes_p2p_cross_bus, 0u);
}

struct AddOneKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& in, Out& out) const {
    MAPS_FOREACH(it, out) {
      *it = in.at(it, 0) + 1;
    }
    out.commit();
  }
};

TEST(SchedulerTransferStatsTest, PlannerOnAndOffComputeIdenticalResults) {
  const std::size_t n = 2048;
  std::vector<int> results[2];
  for (int use_planner = 0; use_planner < 2; ++use_planner) {
    sim::Node node(sim::homogeneous_node(sim::titan_black(), 4));
    Scheduler sched(node);
    sched.set_transfer_planner_enabled(use_planner == 1);
    std::vector<int> in(n), out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<int>(i % 97);
    }
    Vector<int> A(n, "A"), B(n, "B");
    A.Bind(in.data());
    B.Bind(out.data());
    using In = Window1D<int, 0, maps::NO_CHECKS>;
    using Out = StructuredInjective<int, 1>;
    for (int it = 0; it < 3; ++it) {
      sched.Invoke(AddOneKernel{}, In(A), Out(B));
      sched.Invoke(AddOneKernel{}, In(B), Out(A));
    }
    sched.Gather(A);
    results[use_planner] = in;
  }
  EXPECT_EQ(results[0], results[1]);
}

struct SumStencil {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      *it = (x.at(it, 0, 0) + x.at(it, -1, 0) + x.at(it, 1, 0) +
             x.at(it, 0, -1) + x.at(it, 0, 1)) %
            997;
    }
  }
};

TEST(SchedulerTransferStatsTest, PlannerNeverChangesTotalBytesMoved) {
  // The planner re-sources and re-times transfers; it must never add or
  // remove traffic. BENCH_transfer_plan.json's NMF pair illustrates why this
  // matters: planner_on shows bytes_h2d 617 MB vs 363 MB off, which looks
  // like a regression until the totals are compared — identical both ways
  // (620,756,992). After a host Gather the host is a fresh replica, and the
  // planner legitimately prefers idle h2d links over the contended p2p mesh,
  // so bytes only move BETWEEN categories. This test pins the invariant on a
  // chain with the same shape (stencil steps + host-modified re-uploads).
  const std::size_t W = 96, H = 256;
  std::uint64_t totals[2] = {0, 0};
  std::vector<int> results[2];
  for (int use_planner = 0; use_planner < 2; ++use_planner) {
    sim::Node node(sim::homogeneous_node(sim::titan_black(), 4));
    Scheduler sched(node);
    sched.set_transfer_planner_enabled(use_planner == 1);
    std::vector<int> a(W * H), b(W * H, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<int>(i % 997);
    }
    Matrix<int> A(W, H, "A"), B(W, H, "B");
    A.Bind(a.data());
    B.Bind(b.data());
    using Win = Window2D<int, 1, maps::WRAP>;
    using Out = StructuredInjective<int, 2>;
    sched.AnalyzeCall(Win(A), Out(B));
    sched.AnalyzeCall(Win(B), Out(A));
    for (int it = 0; it < 3; ++it) {
      sched.Invoke(SumStencil{}, Win(A), Out(B));
      sched.Invoke(SumStencil{}, Win(B), Out(A));
      // NMF-style host round trip: gather + out-of-band host update forces
      // re-uploads whose source the planner is free to re-choose.
      sched.Gather(A);
      for (auto& v : a) {
        v = (v + 1) % 997;
      }
      sched.MarkHostModified(A);
    }
    sched.Gather(A);
    const TransferStats& t = sched.stats().transfers;
    totals[use_planner] = t.bytes_total();
    results[use_planner] = a;
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(totals[0], totals[1])
      << "planner changed the amount of data moved, not just its routing";
}

} // namespace
