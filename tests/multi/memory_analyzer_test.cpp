// Unit tests for the Memory Analyzer (§4.2): bounding-box accumulation
// across AnalyzeCalls, exact preallocation, contiguity, mask tails and the
// paper's insufficient-allocation error.
#include <gtest/gtest.h>

#include "multi/input_patterns.hpp"
#include "multi/memory_analyzer.hpp"
#include "multi/output_patterns.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

class MemoryAnalyzerUnitTest : public ::testing::Test {
protected:
  MemoryAnalyzerUnitTest()
      : node(sim::homogeneous_node(sim::gtx780(), 2)),
        analyzer(node, {0, 1}), m(128, 256, "m") {
    m.Bind(host.data());
  }
  TaskPartition partition(int slots) {
    return make_partition(256, 128, maps::Dim3{32, 8, 1}, 1, 1, slots);
  }
  sim::Node node;
  MemoryAnalyzer analyzer;
  std::vector<int> host = std::vector<int>(128 * 256);
  Matrix<int> m;
};

TEST_F(MemoryAnalyzerUnitTest, RecordsBoundingBoxAcrossCalls) {
  const TaskPartition p = partition(2);
  // First as an exact-segment output...
  StructuredInjective<int, 2> out(m);
  analyzer.record(out.spec(), compute_requirement(out.spec(), p, 0), 0);
  EXPECT_EQ(analyzer.plan(&m, 0)->rows(), 128u);
  // ...then as a halo'd input: the box grows to the union.
  Window2D<int, 2, maps::CLAMP> win(m);
  analyzer.record(win.spec(), compute_requirement(win.spec(), p, 0), 0);
  EXPECT_EQ(analyzer.plan(&m, 0)->rows(), 132u); // +2 halo rows each side
  EXPECT_EQ(analyzer.plan(&m, 0)->origin, -2);
}

TEST_F(MemoryAnalyzerUnitTest, EnsureAllocatesOncePerSlot) {
  const TaskPartition p = partition(2);
  StructuredInjective<int, 2> out(m);
  for (int slot : {0, 1}) {
    analyzer.record(out.spec(), compute_requirement(out.spec(), p, slot),
                    slot);
  }
  const auto& a0 = analyzer.ensure(&m, 0);
  const auto& again = analyzer.ensure(&m, 0);
  EXPECT_EQ(a0.buffer, again.buffer);
  EXPECT_EQ(a0.rows, 128u);
  EXPECT_EQ(a0.row_bytes, 128u * sizeof(int));
  EXPECT_EQ(node.device_mem_used(0), 128u * 128u * sizeof(int));
  // Slot 1 allocates on device 1.
  analyzer.ensure(&m, 1);
  EXPECT_EQ(node.device_mem_used(1), 128u * 128u * sizeof(int));
}

TEST_F(MemoryAnalyzerUnitTest, GrowthAfterAllocationIsThePaperError) {
  const TaskPartition p = partition(2);
  StructuredInjective<int, 2> out(m);
  analyzer.record(out.spec(), compute_requirement(out.spec(), p, 0), 0);
  analyzer.ensure(&m, 0);
  Window2D<int, 4, maps::CLAMP> win(m);
  analyzer.record(win.spec(), compute_requirement(win.spec(), p, 0), 0);
  EXPECT_THROW(analyzer.ensure(&m, 0), std::runtime_error);
}

TEST_F(MemoryAnalyzerUnitTest, MaskedMergeAddsMaskTail) {
  const TaskPartition p = partition(2);
  UnstructuredInjective<int> out(m);
  analyzer.record(out.spec(), compute_requirement(out.spec(), p, 0), 0);
  const auto& alloc = analyzer.ensure(&m, 0);
  // Full duplicate + one mask byte per element.
  EXPECT_EQ(alloc.buffer->size(),
            256u * 128u * sizeof(int) + 256u * 128u);
}

TEST_F(MemoryAnalyzerUnitTest, EnsureWithoutAnalysisThrows) {
  EXPECT_THROW(analyzer.ensure(&m, 0), std::logic_error);
}

TEST_F(MemoryAnalyzerUnitTest, ReleaseAllReturnsMemory) {
  const TaskPartition p = partition(2);
  StructuredInjective<int, 2> out(m);
  analyzer.record(out.spec(), compute_requirement(out.spec(), p, 0), 0);
  analyzer.ensure(&m, 0);
  EXPECT_GT(analyzer.allocated_bytes(0), 0u);
  analyzer.release_all();
  EXPECT_EQ(analyzer.allocated_bytes(0), 0u);
  EXPECT_EQ(node.device_mem_used(0), 0u);
}

TEST_F(MemoryAnalyzerUnitTest, RowOffsetMapsVirtualRows) {
  MemoryAnalyzer::Alloc a;
  a.origin = -2;
  a.rows = 10;
  a.row_bytes = 64;
  EXPECT_EQ(a.row_offset(-2), 0u);
  EXPECT_EQ(a.row_offset(0), 128u);
  EXPECT_EQ(a.row_offset(5), 448u);
}

} // namespace
