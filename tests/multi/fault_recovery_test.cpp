// Device-loss fault injection and recovery test matrix (label:
// fault-recovery).
//
// Kills each device index at each dispatch boundary (CopiesIssued,
// KernelIssued, PreGather) across three workloads — the Game of Life
// stencil, the Reductive-Static histogram, and a mixed stencil→histogram
// chain — and asserts that the recovered run is bit-identical to a
// fault-free run with fault tolerance enabled, that the CPU reference still
// matches, and that SchedulerStats::RecoveryStats reports the exact repair
// work (segments re-executed, host-mirror copies rerouted, simulated
// recovery time). The access sanitizer is live in every run, so recovery's
// shadow-state rewind is structurally checked too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <tuple>
#include <vector>

#include "apps/game_of_life.hpp"
#include "apps/histogram.hpp"
#include "multi/fault_injector.hpp"
#include "multi/maps_multi.hpp"
#include "multi/sanitizer.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

sim::Node make_node(int devices) {
  return sim::Node(sim::homogeneous_node(sim::titan_black(), devices),
                   sim::ExecMode::Functional);
}

std::vector<int> random_values(std::size_t n, int mod, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) {
    x = static_cast<int>(rng() % static_cast<unsigned>(mod));
  }
  return v;
}

void expect_one_loss(const SchedulerStats& stats, const std::vector<int>& live,
                     int devices, int victim) {
  EXPECT_EQ(stats.recovery.devices_lost, 1u);
  EXPECT_EQ(live.size(), static_cast<std::size_t>(devices - 1));
  EXPECT_EQ(std::find(live.begin(), live.end(), victim), live.end());
}

// --- Game of Life: structured (Injective) recovery ---------------------------

struct GolRun {
  std::vector<int> a, b;
  SchedulerStats stats;
  std::vector<int> live;
};

GolRun run_gol(int devices, FaultInjector injector) {
  const std::size_t W = 64, H = 64;
  const int iterations = 4;
  GolRun r;
  r.a = random_values(W * H, 2, 42);
  r.b.assign(W * H, 0);

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  sched.set_sanitizer_enabled(true);
  if (injector) {
    sched.set_fault_injector(std::move(injector));
  }
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(r.a.data());
  B.Bind(r.b.data());
  apps::gol::run(sched, A, B, iterations, apps::gol::Scheme::Maps);
  sched.WaitAll();
  r.stats = sched.stats();
  r.live = sched.live_devices();
  return r;
}

class GolKillMatrix
    : public ::testing::TestWithParam<std::tuple<int, KillStage>> {};

TEST_P(GolKillMatrix, BitIdenticalToFaultFreeRun) {
  const int victim = std::get<0>(GetParam());
  const KillStage stage = std::get<1>(GetParam());
  const int devices = 4;

  const GolRun clean = run_gol(devices, nullptr);
  std::vector<int> ref = random_values(64 * 64, 2, 42);
  for (int i = 0; i < 4; ++i) {
    apps::gol::reference_tick(ref, 64, 64);
  }
  ASSERT_EQ(clean.a, ref); // the fault-free FT run itself is correct
  ASSERT_EQ(clean.stats.recovery.devices_lost, 0u);

  // Mid-task stages fire at the second tick; PreGather at the final gather.
  const int n = stage == KillStage::PreGather ? 0 : 1;
  const GolRun faulty = run_gol(devices, kill_at_nth(victim, stage, n));

  EXPECT_EQ(faulty.a, clean.a);
  EXPECT_EQ(faulty.b, clean.b);
  expect_one_loss(faulty.stats, faulty.live, devices, victim);
  if (stage == KillStage::PreGather) {
    // Every finished tick was mirrored: nothing to re-execute at a gather.
    EXPECT_EQ(faulty.stats.recovery.segments_reexecuted, 0u);
    EXPECT_EQ(faulty.stats.recovery.copies_rerouted, 0u);
  } else {
    // 64 rows / (8-row blocks) = 8 block rows, 2 per device: the victim's 2
    // block rows re-execute as 2 chunks, each filled by 3 host-mirror
    // copies (core band + 2 wrap halo rows).
    EXPECT_EQ(faulty.stats.recovery.segments_reexecuted, 2u);
    EXPECT_EQ(faulty.stats.recovery.copies_rerouted, 6u);
    EXPECT_GT(faulty.stats.recovery.recovery_sim_us, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VictimByStage, GolKillMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(KillStage::CopiesIssued,
                                         KillStage::KernelIssued,
                                         KillStage::PreGather)));

// --- Histogram: Reductive-Static (pending aggregation) recovery --------------

struct HistRun {
  std::vector<int> image, hist;
  SchedulerStats stats;
  std::vector<int> live;
};

HistRun run_hist(int devices, FaultInjector injector) {
  const std::size_t W = 48, H = 48;
  HistRun r;
  r.image = random_values(W * H, 256, 7);
  r.hist.assign(apps::histogram::kBins, 0);

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  sched.set_sanitizer_enabled(true);
  if (injector) {
    sched.set_fault_injector(std::move(injector));
  }
  Matrix<int> image(W, H, "image");
  Vector<int> hist(apps::histogram::kBins, "hist");
  image.Bind(r.image.data());
  hist.Bind(r.hist.data());
  apps::histogram::run(sched, image, hist, 1, apps::histogram::Scheme::Maps);
  sched.WaitAll();
  r.stats = sched.stats();
  r.live = sched.live_devices();
  return r;
}

class HistKillMatrix
    : public ::testing::TestWithParam<std::tuple<int, KillStage>> {};

TEST_P(HistKillMatrix, PartialIsReExecutedAndFoldedIn) {
  const int victim = std::get<0>(GetParam());
  const KillStage stage = std::get<1>(GetParam());
  const int devices = 4;

  const HistRun clean = run_hist(devices, nullptr);
  ASSERT_EQ(clean.hist, apps::histogram::reference(clean.image));

  const HistRun faulty = run_hist(devices, kill_at_nth(victim, stage, 0));

  EXPECT_EQ(faulty.hist, clean.hist);
  expect_one_loss(faulty.stats, faulty.live, devices, victim);
  // At every stage the victim holds a pending Sum partial, so recovery
  // re-executes its whole segment once on a survivor and folds it in. The
  // only rerouted fill is the image core band (the partial's zero fill is
  // a memset, not a copy).
  EXPECT_EQ(faulty.stats.recovery.segments_reexecuted, 1u);
  EXPECT_EQ(faulty.stats.recovery.copies_rerouted, 1u);
  EXPECT_GT(faulty.stats.recovery.recovery_sim_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    VictimByStage, HistKillMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(KillStage::CopiesIssued,
                                         KillStage::KernelIssued,
                                         KillStage::PreGather)));

// --- Stencil → Reductive-Static chain ----------------------------------------

/// Wrap stencil spreading values over all 256 bins, so the chained histogram
/// exercises every aggregation lane.
struct ByteStencil {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      *it = (5 * x.at(it, 0, 0) + x.at(it, -1, 0) + x.at(it, 1, 0) +
             x.at(it, 0, -1) + x.at(it, 0, 1)) %
            256;
    }
  }
};

void byte_stencil_reference(std::vector<int>& grid, std::size_t w,
                            std::size_t h) {
  auto wrap = [&](long v, std::size_t m) {
    return static_cast<std::size_t>((v + static_cast<long>(m)) %
                                    static_cast<long>(m));
  };
  std::vector<int> next(grid.size());
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      next[y * w + x] = (5 * grid[y * w + x] +
                         grid[wrap(static_cast<long>(y) - 1, h) * w + x] +
                         grid[wrap(static_cast<long>(y) + 1, h) * w + x] +
                         grid[y * w + wrap(static_cast<long>(x) - 1, w)] +
                         grid[y * w + wrap(static_cast<long>(x) + 1, w)]) %
                        256;
    }
  }
  grid = std::move(next);
}

struct ChainRun {
  std::vector<int> a, b, hist;
  SchedulerStats stats;
  std::vector<int> live;
};

/// Dispatch 0: ByteStencil A→B. Dispatch 1: histogram of B. Gathers last.
ChainRun run_rs_chain(int devices, FaultInjector injector) {
  const std::size_t W = 64, H = 64;
  ChainRun r;
  r.a = random_values(W * H, 256, 99);
  r.b.assign(W * H, 0);
  r.hist.assign(apps::histogram::kBins, 0);

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  sched.set_sanitizer_enabled(true);
  if (injector) {
    sched.set_fault_injector(std::move(injector));
  }
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  Vector<int> hist(apps::histogram::kBins, "hist");
  A.Bind(r.a.data());
  B.Bind(r.b.data());
  hist.Bind(r.hist.data());

  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  using HIn = Window2D<int, 0, maps::NO_CHECKS, 8>;
  using HOut = ReductiveStatic<int, apps::histogram::kBins, 8>;
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(HIn(B), HOut(hist));
  sched.Invoke(ByteStencil{}, Win(A), Out(B));
  sched.Invoke(apps::histogram::MapsKernel<8>{}, HIn(B), HOut(hist));
  sched.Gather(hist);
  sched.Gather(B);
  sched.WaitAll();
  r.stats = sched.stats();
  r.live = sched.live_devices();
  return r;
}

struct ChainCase {
  KillStage stage = KillStage::CopiesIssued;
  int nth = 0; ///< dispatch index for mid-task stages, gather index otherwise
};

class ChainKillMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChainKillMatrix, MixedChainRecoversBothRepairKinds) {
  static const ChainCase kCases[] = {
      {KillStage::CopiesIssued, 0}, // stencil loses its inputs
      {KillStage::KernelIssued, 0}, // stencil output dies with the device
      {KillStage::KernelIssued, 1}, // histogram partial dies with the device
      {KillStage::PreGather, 0},    // loss at the aggregation gather
  };
  const int victim = std::get<0>(GetParam());
  const ChainCase cc = kCases[std::get<1>(GetParam())];
  const int devices = 4;

  const ChainRun clean = run_rs_chain(devices, nullptr);
  std::vector<int> ref_b = clean.a;
  byte_stencil_reference(ref_b, 64, 64);
  ASSERT_EQ(clean.b, ref_b);
  ASSERT_EQ(clean.hist, apps::histogram::reference(ref_b));

  const ChainRun faulty =
      run_rs_chain(devices, kill_at_nth(victim, cc.stage, cc.nth));

  EXPECT_EQ(faulty.b, clean.b);
  EXPECT_EQ(faulty.hist, clean.hist);
  expect_one_loss(faulty.stats, faulty.live, devices, victim);
  EXPECT_GT(faulty.stats.recovery.recovery_sim_us, 0.0);
  if (cc.stage != KillStage::PreGather && cc.nth == 0) {
    // Structured repair of the stencil: 2 chunks x (core + 2 halo rows).
    EXPECT_EQ(faulty.stats.recovery.segments_reexecuted, 2u);
    EXPECT_EQ(faulty.stats.recovery.copies_rerouted, 6u);
  } else {
    // Aggregation repair of the histogram partial: one segment, one image
    // core fill.
    EXPECT_EQ(faulty.stats.recovery.segments_reexecuted, 1u);
    EXPECT_EQ(faulty.stats.recovery.copies_rerouted, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(VictimByCase, ChainKillMatrix,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3)));

// --- API edges ---------------------------------------------------------------

TEST(FaultRecoveryTest, KillDeviceOutsideDispatchIsRecoverable) {
  const std::size_t W = 64, H = 64;
  std::vector<int> ha = random_values(W * H, 2, 5), hb(W * H, 0);
  std::vector<int> ref = ha;

  sim::Node node = make_node(3);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(ha.data());
  B.Bind(hb.data());
  using Win = typename apps::gol::MapsTick<1, 1>::Win;
  using Out = typename apps::gol::MapsTick<1, 1>::Out;
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(A), Out(B));
  apps::gol::reference_tick(ref, W, H);

  sched.kill_device(1);
  EXPECT_TRUE(sched.device_lost(1));
  EXPECT_THROW(sched.kill_device(1), std::logic_error);
  EXPECT_THROW(sched.kill_device(7), std::invalid_argument);

  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(B), Out(A));
  apps::gol::reference_tick(ref, W, H);
  sched.Gather(A);
  EXPECT_EQ(ha, ref);
  EXPECT_EQ(sched.stats().recovery.devices_lost, 1u);
}

TEST(FaultRecoveryTest, FaultToleranceMustBeSetBeforeTasks) {
  sim::Node node = make_node(2);
  Scheduler sched(node);
  std::vector<int> ha(32 * 32, 1), hb(32 * 32, 0);
  Matrix<int> A(32, 32, "A"), B(32, 32, "B");
  A.Bind(ha.data());
  B.Bind(hb.data());
  using Win = typename apps::gol::MapsTick<1, 1>::Win;
  using Out = typename apps::gol::MapsTick<1, 1>::Out;
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(A), Out(B));
  EXPECT_THROW(sched.set_fault_tolerance_enabled(true), std::logic_error);
  // And without fault tolerance, a kill is refused rather than corrupting.
  EXPECT_THROW(sched.kill_device(0), std::logic_error);
}

TEST(FaultRecoveryTest, LosingEveryDeviceThrows) {
  sim::Node node = make_node(2);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  std::vector<int> ha(32 * 32, 1), hb(32 * 32, 0);
  Matrix<int> A(32, 32, "A"), B(32, 32, "B");
  A.Bind(ha.data());
  B.Bind(hb.data());
  using Win = typename apps::gol::MapsTick<1, 1>::Win;
  using Out = typename apps::gol::MapsTick<1, 1>::Out;
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(A), Out(B));
  sched.kill_device(0);
  EXPECT_THROW(sched.kill_device(1), std::runtime_error);
}

// --- Out-of-core interplay: spilled segments restore from the host -----------

/// Point-wise copy used to drive LRU evictions under a tight memory budget.
struct FtPointCopy {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) { *it = x.at(it, 0, 0); }
  }
};

TEST(FaultRecoveryTest, SpilledSegmentsRestoreFromHostWithoutReexecution) {
  // Three 16x32 datums under a two-datum budget: task 2 evicts Y from every
  // slot (its rows are written back, so the host is authoritative). Killing
  // a device then loses nothing — Y's rows on the victim were spilled, and
  // recovery restores them from the host without re-executing a single
  // segment. The follow-up task refills Y from the host on the survivor and
  // the whole chain stays bit-identical.
  const std::size_t W = 16, H = 32;
  const std::size_t band_bytes = W * (H / 2) * sizeof(int); // per-slot band
  std::vector<int> x = random_values(W * H, 1000, 21), y(W * H, 0),
                   z(W * H, 0);
  const std::vector<int> x0 = x;

  sim::Node node = make_node(2);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(2 * band_bytes);
  Matrix<int> X(W, H, "X"), Y(W, H, "Y"), Z(W, H, "Z");
  X.Bind(x.data());
  Y.Bind(y.data());
  Z.Bind(z.data());

  using Pt = Window2D<int, 0, maps::NO_CHECKS>;
  using Out = StructuredInjective<int, 2>;
  sched.Invoke(FtPointCopy{}, Pt(X), Out(Y)); // residents: X, Y
  sched.Invoke(FtPointCopy{}, Pt(X), Out(Z)); // evicts Y on both slots
  ASSERT_GT(sched.stats().spill.evictions, 0u);
  ASSERT_EQ(sched.stats().recovery.segments_restored_from_host, 0u);

  sched.kill_device(1);

  const SchedulerStats& st = sched.stats();
  EXPECT_EQ(st.recovery.devices_lost, 1u);
  EXPECT_EQ(st.recovery.segments_restored_from_host, 1u); // Y, and only Y
  EXPECT_EQ(st.recovery.segments_reexecuted, 0u);

  sched.Invoke(FtPointCopy{}, Pt(Y), Out(X)); // survivor refills Y from host
  sched.Gather(X);
  sched.Gather(Y);
  sched.Gather(Z);
  sched.WaitAll();
  EXPECT_EQ(x, x0);
  EXPECT_EQ(y, x0);
  EXPECT_EQ(z, x0);
  EXPECT_EQ(st.recovery.segments_reexecuted, 0u);
}

namespace {
/// Tall Game of Life run (64x256, 4 ticks, 4 devices) with an optional
/// device memory budget — tall enough that a quarter-working-set budget
/// still holds one double-buffered streaming window per slot.
GolRun run_tall_gol(std::size_t budget, FaultInjector injector) {
  const std::size_t W = 64, H = 256;
  GolRun r;
  r.a = random_values(W * H, 2, 42);
  r.b.assign(W * H, 0);

  sim::Node node = make_node(4);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  sched.set_sanitizer_enabled(true);
  sched.set_device_memory_budget(budget);
  if (injector) {
    sched.set_fault_injector(std::move(injector));
  }
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(r.a.data());
  B.Bind(r.b.data());
  apps::gol::run(sched, A, B, 4, apps::gol::Scheme::Maps);
  sched.WaitAll();
  r.stats = sched.stats();
  r.live = sched.live_devices();
  return r;
}
} // namespace

TEST(FaultRecoveryTest, StreamedRunKilledAtGatherReexecutesLessThanInCore) {
  // Control: an in-core mid-task loss re-executes every block-row chunk of
  // the victim's segment. Under a budget below the working set the same
  // workload streams every tick and drains every output window to the host
  // as it goes — a loss at the gather then has nothing to re-execute, and
  // the result is still bit-identical to the fault-free run.
  const GolRun clean = run_tall_gol(0, nullptr);
  const GolRun incore =
      run_tall_gol(0, kill_at_nth(1, KillStage::KernelIssued, 1));
  ASSERT_EQ(incore.a, clean.a);
  const std::uint64_t reexecuted_incore =
      incore.stats.recovery.segments_reexecuted;
  ASSERT_GT(reexecuted_incore, 0u);

  // 16 KiB per slot: below the ~33 KiB in-core working set (two 16 KiB
  // bands plus halos), above the minimum double-buffered window.
  const GolRun streamed =
      run_tall_gol(16 * 1024, kill_at_nth(1, KillStage::PreGather, 0));

  EXPECT_EQ(streamed.a, clean.a);
  EXPECT_EQ(streamed.b, clean.b);
  EXPECT_GT(streamed.stats.spill.streamed_tasks, 0u);
  EXPECT_EQ(streamed.stats.recovery.devices_lost, 1u);
  EXPECT_LT(streamed.stats.recovery.segments_reexecuted, reexecuted_incore);
  EXPECT_EQ(streamed.stats.recovery.segments_reexecuted, 0u);
}

// --- reset_stats regression --------------------------------------------------

TEST(FaultRecoveryTest, ResetStatsClearsEverythingIncludingSanitizer) {
  const std::size_t W = 64, H = 64;
  std::vector<int> ha = random_values(W * H, 2, 11), hb(W * H, 0);

  sim::Node node = make_node(4);
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  sched.set_sanitizer_enabled(true);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(ha.data());
  B.Bind(hb.data());
  using Win = typename apps::gol::MapsTick<1, 1>::Win;
  using Out = typename apps::gol::MapsTick<1, 1>::Out;
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(A), Out(B));
  sched.Invoke(apps::gol::MapsTick<1, 1>{}, Win(B), Out(A));
  sched.kill_device(2);
  sched.Gather(A);

  const SchedulerStats& st = sched.stats();
  ASSERT_GT(st.plans_built, 0u);
  ASSERT_GT(st.transfers.copies_issued, 0u);
  ASSERT_EQ(st.recovery.devices_lost, 1u);
  ASSERT_GT(sched.sanitizer()->stats().tasks_checked, 0u);
  ASSERT_GT(sched.sanitizer()->stats().writes_recorded, 0u);

  sched.reset_stats();

  EXPECT_EQ(st.plans_built, 0u);
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.cache_misses, 0u);
  EXPECT_EQ(st.cache_evictions, 0u);
  EXPECT_EQ(st.transfers.copies_issued, 0u);
  EXPECT_EQ(st.transfers.bytes_total(), 0u);
  EXPECT_EQ(st.recovery.devices_lost, 0u);
  EXPECT_EQ(st.recovery.segments_reexecuted, 0u);
  EXPECT_EQ(st.recovery.copies_rerouted, 0u);
  EXPECT_EQ(st.recovery.recovery_sim_us, 0.0);
  EXPECT_EQ(sched.sanitizer()->stats().tasks_checked, 0u);
  EXPECT_EQ(sched.sanitizer()->stats().copies_checked, 0u);
  EXPECT_EQ(sched.sanitizer()->stats().rects_checked, 0u);
  EXPECT_EQ(sched.sanitizer()->stats().writes_recorded, 0u);
}

} // namespace
