// Invoker threads (§4.3): ordered execution, flush barriers, exception
// capture and rethrow.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "multi/invoker.hpp"

namespace {

using maps::multi::InvokerThread;

TEST(InvokerTest, JobsRunInSubmissionOrder) {
  InvokerThread inv(0);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    inv.submit([&order, i] { order.push_back(i); });
  }
  inv.flush();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(InvokerTest, FlushIsABarrier) {
  InvokerThread inv(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    inv.submit([&done] { done.fetch_add(1); });
  }
  inv.flush();
  EXPECT_EQ(done.load(), 10);
}

TEST(InvokerTest, ExceptionsRethrowAtFlushThenClear) {
  InvokerThread inv(2);
  inv.submit([] { throw std::runtime_error("job failed"); });
  inv.submit([] {}); // subsequent jobs still run
  EXPECT_THROW(inv.flush(), std::runtime_error);
  inv.submit([] {});
  EXPECT_NO_THROW(inv.flush()); // error was consumed
}

TEST(InvokerTest, FirstErrorWins) {
  InvokerThread inv(3);
  inv.submit([] { throw std::runtime_error("first"); });
  inv.submit([] { throw std::logic_error("second"); });
  try {
    inv.flush();
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(InvokerTest, DestructorJoinsWithPendingWork) {
  std::atomic<int> done{0};
  {
    InvokerThread inv(4);
    for (int i = 0; i < 50; ++i) {
      inv.submit([&done] { done.fetch_add(1); });
    }
    // No flush: destructor must drain and join cleanly.
  }
  EXPECT_EQ(done.load(), 50);
}

} // namespace
