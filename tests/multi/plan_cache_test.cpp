// Steady-state plan cache: replayed plans must be indistinguishable — in
// gathered data AND in simulated time — from freshly built ones, and every
// location-state change (host writes, gathers, aggregations, interleaved
// writers) must invalidate exactly the plans it affects.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

struct GameOfLifeTick {
  template <typename Win, typename Out>
  void operator()(const maps::ThreadContext&, Win& current, Out& next) const {
    MAPS_FOREACH(cell, next) {
      int live = 0;
      MAPS_FOREACH_ALIGNED(n, current, cell) {
        if (!n.is_center()) {
          live += *n;
        }
      }
      const int alive = current.at(cell, 0, 0);
      *cell = (live == 3 || (alive && live == 2)) ? 1 : 0;
    }
    next.commit();
  }
};

void gol_reference(std::vector<int>& grid, std::size_t w, std::size_t h) {
  std::vector<int> next(grid.size());
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      int live = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) {
            continue;
          }
          const std::size_t yy = (y + h + static_cast<std::size_t>(dy)) % h;
          const std::size_t xx = (x + w + static_cast<std::size_t>(dx)) % w;
          live += grid[yy * w + xx];
        }
      }
      const int alive = grid[y * w + x];
      next[y * w + x] = (live == 3 || (alive && live == 2)) ? 1 : 0;
    }
  }
  grid = std::move(next);
}

std::vector<int> random_grid(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<int> g(n);
  for (auto& v : g) {
    v = static_cast<int>(rng() & 1u);
  }
  return g;
}

sim::Node make_node(int devices,
                    sim::ExecMode mode = sim::ExecMode::Functional) {
  return sim::Node(sim::homogeneous_node(sim::titan_black(), devices), mode);
}

struct AddOneKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& in, Out& out) const {
    MAPS_FOREACH(it, out) {
      *it = in.at(it, 0) + 1;
    }
    out.commit();
  }
};

struct HistogramKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& image, Out& hist) const {
    MAPS_FOREACH(h, hist) {
      auto pixel = image.align(h);
      h[static_cast<std::size_t>(*pixel)] += 1;
    }
    hist.commit();
  }
};

// Runs a GoL double-buffered loop and returns the final grid.
std::vector<int> run_gol(Scheduler& sched, std::size_t W, std::size_t H,
                         int iterations, unsigned seed) {
  std::vector<int> host_a = random_grid(W * H, seed);
  std::vector<int> host_b(W * H, 0);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(host_a.data());
  B.Bind(host_b.data());
  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(Win(B), Out(A));
  for (int i = 0; i < iterations; ++i) {
    if (i % 2 == 0) {
      sched.Invoke(GameOfLifeTick{}, Win(A), Out(B));
    } else {
      sched.Invoke(GameOfLifeTick{}, Win(B), Out(A));
    }
  }
  if (iterations % 2 == 0) {
    sched.Gather(A);
    return host_a;
  }
  sched.Gather(B);
  return host_b;
}

// --- Cache hits on steady-state loops ---------------------------------------

class PlanCacheDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanCacheDevicesTest, SteadyStateLoopHitsAndMatchesReference) {
  const int devices = GetParam();
  const std::size_t W = 96, H = 128;
  const int iterations = 16;

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  ASSERT_TRUE(sched.plan_cache_enabled());

  std::vector<int> reference = random_grid(W * H, 42);
  const std::vector<int> result = run_gol(sched, W, H, iterations, 42);
  for (int i = 0; i < iterations; ++i) {
    gol_reference(reference, W, H);
  }
  EXPECT_EQ(result, reference);

  // Two task shapes (A->B, B->A). Each sees a fresh monitor state on its
  // first two occurrences (cold, then post-first-round state), after which
  // the double-buffered loop is periodic and every Invoke replays.
  const SchedulerStats& st = sched.stats();
  EXPECT_EQ(st.cache_hits + st.cache_misses,
            static_cast<std::uint64_t>(iterations));
  EXPECT_GE(st.cache_hits, static_cast<std::uint64_t>(iterations - 4));
  EXPECT_EQ(st.plans_built, st.cache_misses);
  EXPECT_EQ(st.uncacheable_tasks, 0u);
  EXPECT_LE(sched.plan_cache_size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, PlanCacheDevicesTest,
                         ::testing::Values(1, 2, 3, 4));

// --- Replay is bit-identical with the cache force-disabled ------------------

TEST(PlanCacheTest, SimulatedTimelineAndResultsIdenticalCacheOnVsOff) {
  const std::size_t W = 192, H = 256;
  const int iterations = 10;
  for (const int devices : {1, 2, 4}) {
    sim::Node node_on = make_node(devices);
    sim::Node node_off = make_node(devices);
    Scheduler sched_on(node_on);
    Scheduler sched_off(node_off);
    sched_off.set_plan_cache_enabled(false);

    const auto grid_on = run_gol(sched_on, W, H, iterations, 7);
    const auto grid_off = run_gol(sched_off, W, H, iterations, 7);

    EXPECT_GT(sched_on.stats().cache_hits, 0u);
    EXPECT_EQ(sched_off.stats().cache_hits, 0u);
    EXPECT_EQ(sched_off.stats().plans_built,
              static_cast<std::uint64_t>(iterations));

    // Bit-identical gathered results and identical simulated clocks: the
    // cache may only change host-side planning work, never the simulation.
    EXPECT_EQ(grid_on, grid_off) << devices << " devices";
    EXPECT_DOUBLE_EQ(node_on.now_ms(), node_off.now_ms())
        << devices << " devices";
    EXPECT_EQ(node_on.stats().bytes_p2p, node_off.stats().bytes_p2p);
    EXPECT_EQ(node_on.stats().bytes_h2d, node_off.stats().bytes_h2d);
  }
}

// --- Invalidation ------------------------------------------------------------

TEST(PlanCacheTest, MarkHostModifiedInvalidatesAndReuploads) {
  const std::size_t n = 4096;
  sim::Node node = make_node(2);
  Scheduler sched(node);

  std::vector<int> in(n, 1), out(n, 0);
  Vector<int> A(n, "A"), B(n, "B");
  A.Bind(in.data());
  B.Bind(out.data());
  using In = Window1D<int, 0, maps::NO_CHECKS>;
  using Out = StructuredInjective<int, 1>;
  sched.AnalyzeCall(In(A), Out(B));

  // Warm the cache until the same Invoke replays.
  sched.Invoke(AddOneKernel{}, In(A), Out(B));
  sched.Invoke(AddOneKernel{}, In(A), Out(B));
  sched.Invoke(AddOneKernel{}, In(A), Out(B));
  sched.WaitAll();
  ASSERT_GT(sched.stats().cache_hits, 0u);
  node.reset_stats();

  // Host writes new input values: the cached plan (which plans NO h2d copy,
  // the data is device-resident) must not replay.
  for (auto& v : in) {
    v = 10;
  }
  sched.MarkHostModified(A);
  const auto inval_before = sched.stats().cache_invalidations;
  sched.Invoke(AddOneKernel{}, In(A), Out(B));
  sched.Gather(B);

  EXPECT_GT(sched.stats().cache_invalidations, inval_before);
  EXPECT_GT(node.stats().bytes_h2d, 0u) << "input was not re-uploaded";
  EXPECT_EQ(out, std::vector<int>(n, 11));
}

TEST(PlanCacheTest, GatherChangesStateWithoutBreakingLoop) {
  const std::size_t W = 64, H = 96;
  const int iterations = 10; // even: the final tick writes A, gathered below
  sim::Node node = make_node(3);
  Scheduler sched(node);

  std::vector<int> host_a = random_grid(W * H, 3);
  std::vector<int> host_b(W * H, 0);
  std::vector<int> reference = host_a;
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(host_a.data());
  B.Bind(host_b.data());
  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(Win(B), Out(A));

  for (int i = 0; i < iterations; ++i) {
    if (i % 2 == 0) {
      sched.Invoke(GameOfLifeTick{}, Win(A), Out(B));
      sched.Gather(B); // changes B's location state mid-loop
      gol_reference(reference, W, H);
      EXPECT_EQ(host_b, reference) << "iteration " << i;
    } else {
      sched.Invoke(GameOfLifeTick{}, Win(B), Out(A));
      gol_reference(reference, W, H);
    }
  }
  sched.Gather(A);
  EXPECT_EQ(host_a, reference);
}

TEST(PlanCacheTest, InterleavedWriterOfSharedDatumInvalidates) {
  const std::size_t n = 1024;
  sim::Node node = make_node(2);
  Scheduler sched(node);

  std::vector<int> a(n, 0), b(n, 0), c(n, 0);
  Vector<int> A(n, "A"), B(n, "B"), C(n, "C");
  A.Bind(a.data());
  B.Bind(b.data());
  C.Bind(c.data());
  using In = Window1D<int, 0, maps::NO_CHECKS>;
  using Out = StructuredInjective<int, 1>;
  sched.AnalyzeCall(In(A), Out(B));
  sched.AnalyzeCall(In(B), Out(A));
  sched.AnalyzeCall(In(A), Out(C));

  // Warm A->C, then interleave tasks that rewrite A; every later A->C sees
  // a different producer for A yet must stay correct.
  sched.Invoke(AddOneKernel{}, In(A), Out(C)); // c = a+1 = 1
  sched.Invoke(AddOneKernel{}, In(A), Out(B)); // b = a+1 = 1
  sched.Invoke(AddOneKernel{}, In(B), Out(A)); // a = b+1 = 2
  sched.Invoke(AddOneKernel{}, In(A), Out(C)); // c = a+1 = 3
  sched.Invoke(AddOneKernel{}, In(B), Out(A)); // a = b+1 = 2 (again)
  sched.Invoke(AddOneKernel{}, In(A), Out(C)); // c = a+1 = 3
  sched.Gather(C);
  EXPECT_EQ(c, std::vector<int>(n, 3));
  sched.Gather(A);
  EXPECT_EQ(a, std::vector<int>(n, 2));
}

TEST(PlanCacheTest, ReductiveLoopWithGatherStaysCorrect) {
  const std::size_t W = 200, H = 160;
  sim::Node node = make_node(4);
  Scheduler sched(node);

  std::mt19937 rng(7);
  std::vector<int> image(W * H);
  for (auto& p : image) {
    p = static_cast<int>(rng() % 256);
  }
  std::vector<int> expected(256, 0);
  for (int p : image) {
    expected[static_cast<std::size_t>(p)]++;
  }
  std::vector<int> hist(256, 0);
  Matrix<int> img(W, H, "image");
  Vector<int> h(256, "hist");
  img.Bind(image.data());
  h.Bind(hist.data());
  using In = Window2D<int, 0, maps::NO_CHECKS>;
  using Out = ReductiveStatic<int, 256>;
  sched.AnalyzeCall(In(img), Out(h));

  // Each round schedules partial writes (pending aggregation) and gathers;
  // the Gather must invalidate/refresh the cached plan state every time.
  for (int round = 0; round < 5; ++round) {
    sched.Invoke(HistogramKernel{}, In(img), Out(h));
    sched.Gather(h);
    EXPECT_EQ(hist, expected) << "round " << round;
  }
}

// --- Cache management --------------------------------------------------------

TEST(PlanCacheTest, DisabledCacheBuildsEveryPlan) {
  sim::Node node = make_node(2);
  Scheduler sched(node);
  sched.set_plan_cache_enabled(false);
  (void)run_gol(sched, 64, 64, 8, 1);
  EXPECT_EQ(sched.stats().cache_hits, 0u);
  EXPECT_EQ(sched.stats().plans_built, 8u);
  EXPECT_EQ(sched.plan_cache_size(), 0u);
}

TEST(PlanCacheTest, LruCapacityOneThrashesButStaysCorrect) {
  const std::size_t W = 64, H = 64;
  const int iterations = 8;
  sim::Node node = make_node(2);
  Scheduler sched(node);
  sched.set_plan_cache_capacity(1); // alternating shapes evict each other

  std::vector<int> reference = random_grid(W * H, 9);
  const auto result = run_gol(sched, W, H, iterations, 9);
  for (int i = 0; i < iterations; ++i) {
    gol_reference(reference, W, H);
  }
  EXPECT_EQ(result, reference);
  EXPECT_GT(sched.stats().cache_evictions, 0u);
  EXPECT_LE(sched.plan_cache_size(), 1u);
}

TEST(PlanCacheTest, LiveIntervalsStayBoundedAcrossLongLoop) {
  sim::Node node = make_node(4);
  Scheduler sched(node);
  (void)run_gol(sched, 64, 128, 64, 5);
  // 2 datums x 5 locations x a handful of bands each; a linear-growth bug
  // here would show hundreds of entries after 64 iterations.
  EXPECT_LE(sched.live_dependency_intervals(), 200u);
}

} // namespace
