// Interval algebra underpinning the Segment Location Monitor (Algorithm 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "multi/interval_set.hpp"

namespace {

using maps::multi::IntervalSet;
using maps::multi::RowInterval;

TEST(IntervalSetTest, IntersectBasics) {
  EXPECT_EQ(maps::multi::intersect({0, 10}, {5, 20}), (RowInterval{5, 10}));
  EXPECT_TRUE(maps::multi::intersect({0, 5}, {5, 10}).empty());
  EXPECT_TRUE(maps::multi::intersect({8, 9}, {0, 2}).empty());
}

TEST(IntervalSetTest, AddMergesAdjacentAndOverlapping) {
  IntervalSet s;
  s.add({0, 5});
  s.add({5, 10});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], (RowInterval{0, 10}));
  s.add({20, 30});
  s.add({8, 22});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], (RowInterval{0, 30}));
}

TEST(IntervalSetTest, AddIgnoresEmpty) {
  IntervalSet s;
  s.add({7, 7});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, RemoveSplits) {
  IntervalSet s;
  s.add({0, 100});
  s.remove({40, 60});
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.intervals()[0], (RowInterval{0, 40}));
  EXPECT_EQ(s.intervals()[1], (RowInterval{60, 100}));
  EXPECT_EQ(s.total_rows(), 80u);
}

TEST(IntervalSetTest, RemoveEdgesAndAll) {
  IntervalSet s;
  s.add({10, 20});
  s.remove({0, 12});
  EXPECT_EQ(s.intervals()[0], (RowInterval{12, 20}));
  s.remove({0, 100});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, Covers) {
  IntervalSet s(std::vector<RowInterval>{{0, 10}, {10, 20}, {30, 40}});
  EXPECT_TRUE(s.covers({0, 20}));  // merged across pieces
  EXPECT_TRUE(s.covers({5, 15}));
  EXPECT_FALSE(s.covers({15, 35})); // hole at [20,30)
  EXPECT_TRUE(s.covers({33, 33}));  // empty always covered
}

TEST(IntervalSetTest, IntersectionWith) {
  IntervalSet s(std::vector<RowInterval>{{0, 10}, {20, 30}});
  const auto hits = s.intersection_with({5, 25});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (RowInterval{5, 10}));
  EXPECT_EQ(hits[1], (RowInterval{20, 25}));
}

TEST(IntervalSetTest, MissingFrom) {
  IntervalSet s(std::vector<RowInterval>{{0, 10}, {20, 30}});
  const auto gaps = s.missing_from({5, 40});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (RowInterval{10, 20}));
  EXPECT_EQ(gaps[1], (RowInterval{30, 40}));
  EXPECT_TRUE(s.missing_from({0, 10}).empty());
}

TEST(IntervalSetTest, MissingFromEmptySetIsWholeRange) {
  IntervalSet s;
  const auto gaps = s.missing_from({3, 9});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (RowInterval{3, 9}));
}

// --- IntervalEventMap --------------------------------------------------------

using maps::multi::AccessIntervalMap;
using maps::multi::IntervalEventMap;

std::vector<int> collected(const IntervalEventMap& m, RowInterval rows) {
  std::vector<int> out;
  m.collect(rows, out);
  return out;
}

TEST(IntervalEventMapTest, UpdateSupersedesOverlappedRanges) {
  IntervalEventMap m;
  m.update({0, 100}, 1);
  m.update({40, 60}, 2);
  EXPECT_EQ(m.entry_count(), 3u); // [0,40)=1 [40,60)=2 [60,100)=1
  EXPECT_EQ(collected(m, {0, 10}), (std::vector<int>{1}));
  EXPECT_EQ(collected(m, {45, 50}), (std::vector<int>{2}));
  EXPECT_EQ(collected(m, {0, 100}), (std::vector<int>{1, 2}));
}

TEST(IntervalEventMapTest, CoalescesAdjacentEqualEvents) {
  IntervalEventMap m;
  m.update({0, 10}, 7);
  m.update({10, 20}, 7);
  m.update({20, 30}, 7);
  EXPECT_EQ(m.entry_count(), 1u);
  // Re-updating the same band with the same event stays at one entry: the
  // steady-state loop invariant that keeps these maps bounded.
  for (int i = 0; i < 100; ++i) {
    m.update({0, 30}, 7);
  }
  EXPECT_EQ(m.entry_count(), 1u);
}

TEST(IntervalEventMapTest, PartialOverwriteKeepsFragments) {
  IntervalEventMap m;
  m.update({10, 20}, 1);
  m.update({30, 40}, 2);
  m.update({15, 35}, 3);
  EXPECT_EQ(collected(m, {10, 15}), (std::vector<int>{1}));
  EXPECT_EQ(collected(m, {15, 35}), (std::vector<int>{3}));
  EXPECT_EQ(collected(m, {35, 40}), (std::vector<int>{2}));
  EXPECT_TRUE(collected(m, {0, 10}).empty());
  EXPECT_TRUE(collected(m, {40, 99}).empty());
}

// --- AccessIntervalMap -------------------------------------------------------

std::vector<int> collected(const AccessIntervalMap& m, RowInterval rows) {
  std::vector<int> out;
  m.collect(rows, out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AccessIntervalMapTest, DuplicateReadersAreDeduped) {
  AccessIntervalMap m;
  // The add_reader bugfix: registering the same (range, event) repeatedly —
  // every Gather re-reads the same rows — must not grow the map.
  for (int i = 0; i < 1000; ++i) {
    m.add_reader({0, 50}, 5);
  }
  EXPECT_EQ(m.reader_entry_count(), 1u);
  EXPECT_EQ(collected(m, {10, 20}), (std::vector<int>{5}));
}

TEST(AccessIntervalMapTest, WriteCollectsReadersAndWriters) {
  AccessIntervalMap m;
  m.add_reader({0, 30}, 1);
  m.add_reader({20, 60}, 2);
  m.write({50, 80}, 3);
  EXPECT_EQ(collected(m, {0, 100}), (std::vector<int>{1, 2, 3}));
  // Rows [50,60) were superseded by writer 3; reader 2 survives on [20,50).
  EXPECT_EQ(collected(m, {55, 58}), (std::vector<int>{3}));
  EXPECT_EQ(collected(m, {25, 26}), (std::vector<int>{1, 2}));
}

TEST(AccessIntervalMapTest, WriteCompactsCoveredReaders) {
  AccessIntervalMap m;
  for (int ev = 1; ev <= 64; ++ev) {
    m.add_reader({0, 100}, ev);
  }
  ASSERT_EQ(m.reader_entry_count(), 1u);
  m.write({0, 100}, 200);
  // All readers were fully covered: later writers order through event 200.
  EXPECT_EQ(m.reader_entry_count(), 0u);
  EXPECT_EQ(collected(m, {0, 100}), (std::vector<int>{200}));
}

TEST(AccessIntervalMapTest, SteadyStateLoopStaysBounded) {
  AccessIntervalMap m;
  // A training epoch: every "task" reads the band then writes it.
  for (int i = 0; i < 10'000; ++i) {
    m.add_reader({0, 128}, 2 * i);
    m.write({0, 128}, 2 * i + 1);
  }
  EXPECT_LE(m.entry_count(), 2u);
}

TEST(AccessIntervalMapTest, ReaderSplitKeepsEventSets) {
  AccessIntervalMap m;
  m.add_reader({0, 40}, 1);
  m.add_reader({10, 30}, 2);
  EXPECT_EQ(collected(m, {0, 10}), (std::vector<int>{1}));
  EXPECT_EQ(collected(m, {10, 30}), (std::vector<int>{1, 2}));
  EXPECT_EQ(collected(m, {30, 40}), (std::vector<int>{1}));
  m.write({5, 35}, 9);
  EXPECT_EQ(collected(m, {0, 5}), (std::vector<int>{1}));
  EXPECT_EQ(collected(m, {5, 35}), (std::vector<int>{9}));
  EXPECT_EQ(collected(m, {35, 40}), (std::vector<int>{1}));
}

} // namespace
