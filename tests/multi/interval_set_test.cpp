// Interval algebra underpinning the Segment Location Monitor (Algorithm 2).
#include <gtest/gtest.h>

#include "multi/interval_set.hpp"

namespace {

using maps::multi::IntervalSet;
using maps::multi::RowInterval;

TEST(IntervalSetTest, IntersectBasics) {
  EXPECT_EQ(maps::multi::intersect({0, 10}, {5, 20}), (RowInterval{5, 10}));
  EXPECT_TRUE(maps::multi::intersect({0, 5}, {5, 10}).empty());
  EXPECT_TRUE(maps::multi::intersect({8, 9}, {0, 2}).empty());
}

TEST(IntervalSetTest, AddMergesAdjacentAndOverlapping) {
  IntervalSet s;
  s.add({0, 5});
  s.add({5, 10});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], (RowInterval{0, 10}));
  s.add({20, 30});
  s.add({8, 22});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], (RowInterval{0, 30}));
}

TEST(IntervalSetTest, AddIgnoresEmpty) {
  IntervalSet s;
  s.add({7, 7});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, RemoveSplits) {
  IntervalSet s;
  s.add({0, 100});
  s.remove({40, 60});
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.intervals()[0], (RowInterval{0, 40}));
  EXPECT_EQ(s.intervals()[1], (RowInterval{60, 100}));
  EXPECT_EQ(s.total_rows(), 80u);
}

TEST(IntervalSetTest, RemoveEdgesAndAll) {
  IntervalSet s;
  s.add({10, 20});
  s.remove({0, 12});
  EXPECT_EQ(s.intervals()[0], (RowInterval{12, 20}));
  s.remove({0, 100});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, Covers) {
  IntervalSet s(std::vector<RowInterval>{{0, 10}, {10, 20}, {30, 40}});
  EXPECT_TRUE(s.covers({0, 20}));  // merged across pieces
  EXPECT_TRUE(s.covers({5, 15}));
  EXPECT_FALSE(s.covers({15, 35})); // hole at [20,30)
  EXPECT_TRUE(s.covers({33, 33}));  // empty always covered
}

TEST(IntervalSetTest, IntersectionWith) {
  IntervalSet s(std::vector<RowInterval>{{0, 10}, {20, 30}});
  const auto hits = s.intersection_with({5, 25});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (RowInterval{5, 10}));
  EXPECT_EQ(hits[1], (RowInterval{20, 25}));
}

TEST(IntervalSetTest, MissingFrom) {
  IntervalSet s(std::vector<RowInterval>{{0, 10}, {20, 30}});
  const auto gaps = s.missing_from({5, 40});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (RowInterval{10, 20}));
  EXPECT_EQ(gaps[1], (RowInterval{30, 40}));
  EXPECT_TRUE(s.missing_from({0, 10}).empty());
}

TEST(IntervalSetTest, MissingFromEmptySetIsWholeRange) {
  IntervalSet s;
  const auto gaps = s.missing_from({3, 9});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (RowInterval{3, 9}));
}

} // namespace
