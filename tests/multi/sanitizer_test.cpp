// Tests for the runtime access sanitizer (sanitizer.hpp): the shadow
// write-version map, the dispatch-time freshness checks, and the fault
// injection hook that proves a dropped inferred copy is reported with the
// exact stale rectangle — on the plan-build path AND the plan-cache replay
// path, which is exactly the path that skips the location monitor's
// per-copy marks.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "multi/maps_multi.hpp"
#include "multi/sanitizer.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

// --- VersionMap unit tests ---------------------------------------------------

TEST(VersionMapTest, AssignQueryAndCoalesce) {
  VersionMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.at(5), 0u);

  m.assign({0, 10}, 1);
  m.assign({10, 20}, 1); // adjacent, same version: must coalesce
  EXPECT_EQ(m.entry_count(), 1u);
  EXPECT_EQ(m.at(0), 1u);
  EXPECT_EQ(m.at(19), 1u);
  EXPECT_EQ(m.at(20), 0u);

  m.assign({5, 12}, 3); // splits the range
  EXPECT_EQ(m.at(4), 1u);
  EXPECT_EQ(m.at(5), 3u);
  EXPECT_EQ(m.at(11), 3u);
  EXPECT_EQ(m.at(12), 1u);

  std::vector<VersionedRange> pieces;
  m.query({0, 25}, pieces);
  // Pieces partition [0,25) exactly, including a version-0 gap at the end.
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0].rows.begin, 0u);
  EXPECT_EQ(pieces[0].rows.end, 5u);
  EXPECT_EQ(pieces[0].version, 1u);
  EXPECT_EQ(pieces[1].rows.begin, 5u);
  EXPECT_EQ(pieces[1].rows.end, 12u);
  EXPECT_EQ(pieces[1].version, 3u);
  EXPECT_EQ(pieces[2].rows.begin, 12u);
  EXPECT_EQ(pieces[2].rows.end, 20u);
  EXPECT_EQ(pieces[2].version, 1u);
  EXPECT_EQ(pieces[3].rows.begin, 20u);
  EXPECT_EQ(pieces[3].rows.end, 25u);
  EXPECT_EQ(pieces[3].version, 0u);
}

TEST(VersionMapTest, AssignZeroErasesAndAssignFromPropagates) {
  VersionMap a, b;
  a.assign({0, 100}, 7);
  a.assign({40, 60}, 0); // erase the middle
  EXPECT_EQ(a.at(39), 7u);
  EXPECT_EQ(a.at(50), 0u);
  EXPECT_EQ(a.at(60), 7u);

  b.assign({0, 10}, 1);
  b.assign_from(a, {30, 70}); // copies 7 / gap / 7 piecewise
  EXPECT_EQ(b.at(5), 1u);     // untouched outside the range
  EXPECT_EQ(b.at(35), 7u);
  EXPECT_EQ(b.at(50), 0u);
  EXPECT_EQ(b.at(65), 7u);
}

// --- Shared fixtures ---------------------------------------------------------

struct StencilWrap {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      *it = (2 * x.at(it, 0, 0) + x.at(it, -1, 0) + x.at(it, 1, 0) +
             x.at(it, 0, -1) + x.at(it, 0, 1)) %
            1000;
    }
  }
};

using Win = Window2D<int, 1, maps::WRAP>;
using Out = StructuredInjective<int, 2>;

struct ChainSetup {
  std::vector<int> a, b;
  sim::Node node;
  Scheduler sched;
  Matrix<int> A, B;

  ChainSetup(std::size_t w, std::size_t h, int devices, bool sanitize = true,
             bool cache = true)
      : a(w * h), b(w * h, 0),
        node(sim::homogeneous_node(sim::titan_black(), devices)), sched(node),
        A(w, h, "A"), B(w, h, "B") {
    std::mt19937 rng(1234);
    for (auto& v : a) {
      v = static_cast<int>(rng() % 1000);
    }
    sched.set_plan_cache_enabled(cache);
    if (sanitize) {
      sched.set_sanitizer_enabled(true);
    }
    A.Bind(a.data());
    B.Bind(b.data());
    sched.AnalyzeCall(Win(A), Out(B));
    sched.AnalyzeCall(Win(B), Out(A));
  }

  void step(int i) {
    if (i % 2 == 0) {
      sched.Invoke(StencilWrap{}, Win(A), Out(B));
    } else {
      sched.Invoke(StencilWrap{}, Win(B), Out(A));
    }
  }
};

// --- Clean runs --------------------------------------------------------------

TEST(SanitizerTest, CleanMultiDeviceChainPassesAndCountsChecks) {
  ChainSetup s(64, 96, 4);
  for (int i = 0; i < 8; ++i) {
    s.step(i);
  }
  s.sched.Gather(s.A);
  s.sched.Gather(s.B);

  ASSERT_TRUE(s.sched.sanitizer_enabled());
  const auto& st = s.sched.sanitizer()->stats();
  EXPECT_EQ(st.tasks_checked, 10u); // 8 kernels + 2 gathers
  EXPECT_GT(st.copies_checked, 0u);
  EXPECT_GT(st.rects_checked, 0u);
  EXPECT_GT(st.writes_recorded, 0u);

  // Cross-check against an unsanitized run: identical results, proving the
  // sanitizer is pure metadata.
  ChainSetup ref(64, 96, 4, /*sanitize=*/false);
  for (int i = 0; i < 8; ++i) {
    ref.step(i);
  }
  ref.sched.Gather(ref.A);
  ref.sched.Gather(ref.B);
  EXPECT_EQ(s.a, ref.a);
  EXPECT_EQ(s.b, ref.b);
}

TEST(SanitizerTest, ShadowMapTracksWritersAndGather) {
  ChainSetup s(48, 64, 2);
  s.step(0); // A -> B: B freshly written on the devices
  AccessSanitizer* san = s.sched.sanitizer();
  const Datum* b = &static_cast<Datum&>(s.B);
  // The host's copy of B is stale until the gather runs.
  const VersionMap& latest = san->latest(b);
  EXPECT_FALSE(latest.empty());
  EXPECT_GT(latest.at(0), san->held(b, AccessSanitizer::kHost).at(0));
  s.sched.Gather(s.B);
  EXPECT_EQ(san->held(b, AccessSanitizer::kHost).at(0), san->latest(b).at(0));
}

TEST(SanitizerTest, EnableAfterSchedulingThrows) {
  ChainSetup s(32, 32, 2, /*sanitize=*/false);
  s.step(0);
  EXPECT_THROW(s.sched.set_sanitizer_enabled(true), std::logic_error);
  // Disabling is always allowed (a no-op here).
  s.sched.set_sanitizer_enabled(false);
  EXPECT_FALSE(s.sched.sanitizer_enabled());
}

// --- Fault injection: dropped copies must be reported ------------------------

/// Drops the n-th copy matching `pred`; records what it dropped.
struct DropNth {
  int target = 0;
  int seen = 0;
  Scheduler::CopyFaultInfo dropped;
  bool hit = false;

  template <typename Pred> Scheduler::CopyFaultHook hook(Pred pred) {
    return [this, pred](const Scheduler::CopyFaultInfo& c) {
      if (!pred(c)) {
        return false;
      }
      if (seen++ != target) {
        return false;
      }
      dropped = c;
      hit = true;
      return true;
    };
  }
};

std::string rows_str(const RowInterval& r) {
  return "[" + std::to_string(r.begin) + ", " + std::to_string(r.end) + ")";
}

TEST(SanitizerTest, DroppedHostUploadReportsExactRectangle) {
  ChainSetup s(64, 80, 2);
  DropNth drop;
  // Drop the first aligned host->device upload of the first task.
  s.sched.set_copy_fault_hook(drop.hook([](const Scheduler::CopyFaultInfo& c) {
    return c.aligned && !c.zero_fill && c.src_location == 0;
  }));
  try {
    s.step(0);
    FAIL() << "stale read not reported";
  } catch (const SanitizerError& e) {
    ASSERT_TRUE(drop.hit);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("datum 'A'"), std::string::npos) << msg;
    // The transfer planner forwards device 1's halo from device 0's replica,
    // so the first casualty of the dropped upload may be that forward rather
    // than the kernel read itself. Either way the report must pinpoint a
    // rectangle inside the dropped one and prescribe the upload that never
    // happened.
    const std::size_t pos = msg.find("rows [");
    ASSERT_NE(pos, std::string::npos) << msg;
    std::size_t rb = 0, re = 0;
    ASSERT_EQ(std::sscanf(msg.c_str() + pos, "rows [%zu, %zu)", &rb, &re), 2)
        << msg;
    EXPECT_GE(rb, drop.dropped.rows.begin) << msg;
    EXPECT_LE(re, drop.dropped.rows.end) << msg;
    EXPECT_NE(msg.find("should have scheduled a copy"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("host -> device 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("does not hold at all"), std::string::npos) << msg;
  }
}

TEST(SanitizerTest, DroppedInteriorHaloExchangeReportsStaleVersion) {
  ChainSetup s(64, 96, 3);
  s.step(0); // writes B on the devices
  DropNth drop;
  // Task 2 reads B: its interior halo rows move device-to-device. Drop the
  // first such exchange; the destination then holds those rows at the stale
  // pre-task-1 version (or not at all).
  s.sched.set_copy_fault_hook(drop.hook([](const Scheduler::CopyFaultInfo& c) {
    return c.aligned && !c.zero_fill && c.src_location != 0 &&
           c.dst_location != 0 && c.src_location != c.dst_location;
  }));
  try {
    s.step(1);
    FAIL() << "stale read not reported";
  } catch (const SanitizerError& e) {
    ASSERT_TRUE(drop.hit);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("datum 'B'"), std::string::npos) << msg;
    EXPECT_NE(msg.find(rows_str(drop.dropped.rows)), std::string::npos) << msg;
    EXPECT_NE(msg.find("reads"), std::string::npos) << msg;
  }
}

TEST(SanitizerTest, DroppedWrapHaloRefillReportsMissingHalo) {
  ChainSetup s(64, 96, 2);
  s.step(0);
  DropNth drop;
  // Wrap boundary slots are refilled every task with rows that do NOT land
  // at their global position; dropping one is caught by the per-dispatch
  // halo-coverage check rather than the version map.
  s.sched.set_copy_fault_hook(drop.hook([](const Scheduler::CopyFaultInfo& c) {
    return !c.aligned && !c.zero_fill;
  }));
  try {
    s.step(1);
    FAIL() << "missing halo refill not reported";
  } catch (const SanitizerError& e) {
    ASSERT_TRUE(drop.hit);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("halo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("datum 'B'"), std::string::npos) << msg;
  }
}

TEST(SanitizerTest, ReplayPathIsCheckedIdentically) {
  // Warm the plan cache, prove the steady state replays, then drop a copy in
  // a replayed dispatch: the sanitizer must still catch it, because its hooks
  // run on the plan being executed, not on the monitor marks (which replays
  // skip entirely).
  ChainSetup s(64, 96, 3);
  for (int i = 0; i < 6; ++i) {
    s.step(i);
  }
  ASSERT_GT(s.sched.stats().cache_hits, 0u)
      << "steady state did not reach the replay path";
  const auto hits_before = s.sched.stats().cache_hits;

  DropNth drop;
  s.sched.set_copy_fault_hook(drop.hook([](const Scheduler::CopyFaultInfo& c) {
    return c.aligned && !c.zero_fill && c.src_location != 0 &&
           c.dst_location != 0;
  }));
  try {
    s.step(6);
    FAIL() << "stale read not reported on the replay path";
  } catch (const SanitizerError& e) {
    ASSERT_TRUE(drop.hit);
    EXPECT_GT(s.sched.stats().cache_hits, hits_before)
        << "the faulted dispatch was not a replay";
    const std::string msg = e.what();
    EXPECT_NE(msg.find(rows_str(drop.dropped.rows)), std::string::npos) << msg;
  }
}

TEST(SanitizerTest, WithoutSanitizerDropIsSilentCorruption) {
  // The motivating failure mode: the same injected fault without the
  // sanitizer completes "successfully" and corrupts the result. The exec
  // observer confirms the transfer really was suppressed in the simulator.
  const std::size_t W = 64, H = 96;
  auto run = [&](bool inject, std::uint64_t* copy_events) {
    ChainSetup s(W, H, 3, /*sanitize=*/false);
    if (copy_events != nullptr) {
      s.node.set_exec_observer([copy_events](const sim::TraceEvent& te) {
        if (te.kind == 'C') {
          ++*copy_events;
        }
      });
    }
    DropNth drop;
    if (inject) {
      s.sched.set_copy_fault_hook(
          drop.hook([](const Scheduler::CopyFaultInfo& c) {
            return c.aligned && !c.zero_fill && c.src_location != 0 &&
                   c.dst_location != 0;
          }));
    }
    s.step(0);
    s.step(1);
    s.sched.set_copy_fault_hook(nullptr);
    s.sched.Gather(s.A);
    return s.a;
  };
  std::uint64_t copies_clean = 0, copies_faulted = 0;
  const auto clean = run(false, &copies_clean);
  const auto faulted = run(true, &copies_faulted);
  EXPECT_LT(copies_faulted, copies_clean)
      << "the dropped copy still executed";
  EXPECT_NE(clean, faulted) << "fault injection did not corrupt the result";
}

TEST(SanitizerTest, DroppedCopyDoesNotDeadlockTheSimulator) {
  // A dropped copy must still record its done event, or every consumer
  // waiting on it would hang the node forever. With the sanitizer off the
  // run completes; WaitAll returning at all is the assertion.
  ChainSetup s(48, 64, 2, /*sanitize=*/false);
  int drops = 0;
  s.sched.set_copy_fault_hook([&](const Scheduler::CopyFaultInfo& c) {
    if (!c.zero_fill && drops < 3) {
      ++drops;
      return true;
    }
    return false;
  });
  s.step(0);
  s.step(1);
  s.sched.WaitAll();
  EXPECT_EQ(drops, 3);
  // Pipeline drained: every submitted invoker job executed.
  EXPECT_GT(s.sched.tasks_scheduled(), 0u);
}

// --- Aggregation lifecycle ---------------------------------------------------

struct HistKernel {
  template <typename In, typename OutP>
  void operator()(const maps::ThreadContext&, In& image, OutP& hist) const {
    MAPS_FOREACH(h, hist) {
      auto pixel = image.align(h);
      h[static_cast<std::size_t>(*pixel)] += 1;
    }
    hist.commit();
  }
};

TEST(SanitizerTest, AggregationLifecycleIsTracked) {
  const std::size_t W = 96, H = 64;
  std::vector<int> image(W * H);
  std::mt19937 rng(7);
  for (auto& p : image) {
    p = static_cast<int>(rng() % 256);
  }
  std::vector<int> hist(256, 0), expected(256, 0);
  for (int p : image) {
    expected[static_cast<std::size_t>(p)]++;
  }

  sim::Node node(sim::homogeneous_node(sim::gtx780(), 3));
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  Matrix<int> img(W, H, "image");
  Vector<int> h(256, "hist");
  img.Bind(image.data());
  h.Bind(hist.data());
  using In = Window2D<int, 0, maps::NO_CHECKS>;
  sched.Invoke(HistKernel{}, In(img), ReductiveStatic<int, 256>(h));

  // Partial copies: no location holds the latest version yet, and trying to
  // read the datum is refused (by the monitor before the sanitizer even
  // runs; the sanitizer's shadow state agrees).
  AccessSanitizer* san = sched.sanitizer();
  const Datum* hd = &static_cast<Datum&>(h);
  EXPECT_EQ(san->held(hd, AccessSanitizer::kHost).at(0), 0u);
  EXPECT_NE(san->latest(hd).at(0), 0u);
  sched.Gather(h);
  EXPECT_EQ(hist, expected);
  // Gather resolved the aggregation: the host holds the latest version.
  EXPECT_EQ(san->held(hd, AccessSanitizer::kHost).at(0), san->latest(hd).at(0));
  EXPECT_NE(san->latest(hd).at(0), 0u);
}

TEST(SanitizerTest, MarkHostModifiedMintsFreshVersion) {
  ChainSetup s(48, 64, 2);
  s.step(0);
  AccessSanitizer* san = s.sched.sanitizer();
  const Datum* a = &static_cast<Datum&>(s.A);
  const std::uint64_t before = san->latest(a).at(0);
  // Host code rewrites A out of band: devices' replicas go stale.
  for (auto& v : s.a) {
    v = (v + 1) % 1000;
  }
  s.sched.MarkHostModified(s.A);
  EXPECT_GT(san->latest(a).at(0), before);
  EXPECT_EQ(san->held(a, AccessSanitizer::kHost).at(0), san->latest(a).at(0));
  for (int loc = 1; loc <= 2; ++loc) {
    EXPECT_NE(san->held(a, loc).at(0), san->latest(a).at(0));
  }
  // The next task re-uploads and passes the checks.
  s.step(0);
  s.sched.Gather(s.B);
}

TEST(SanitizerTest, ReduceScatterResolvesPartialsDeviceSide) {
  const std::size_t n = 512;
  std::vector<float> host_in(n, 1.0f), acc_out(n, 0.0f);
  auto routine = [n](RoutineArgs& a) {
    float* acc = a.parameters[1].as<float>();
    const int slot = a.device_idx;
    sim::LaunchStats st;
    st.label = "partial";
    st.blocks = 4;
    a.node->launch(a.stream, st, [acc, n, slot] {
      for (std::size_t i = 0; i < n; ++i) {
        acc[i] += static_cast<float>(slot + 1);
      }
    });
    return true;
  };
  sim::Node node(sim::homogeneous_node(sim::gtx980(), 4));
  Scheduler sched(node);
  sched.set_sanitizer_enabled(true);
  Vector<float> In(n, "in"), Acc(n, "acc");
  In.Bind(host_in.data());
  Acc.Bind(acc_out.data());
  sched.InvokeUnmodified(routine, nullptr, Work{n},
                         Block2D<float>(static_cast<Datum&>(In)),
                         SumReduced<float>(Acc));
  sched.ReduceScatter(Acc, Work{n});
  sched.Gather(Acc);
  EXPECT_EQ(acc_out, std::vector<float>(n, 10.0f));
  // After the scatter + gather the host holds the latest version.
  AccessSanitizer* san = sched.sanitizer();
  const Datum* ad = &static_cast<Datum&>(Acc);
  EXPECT_EQ(san->held(ad, AccessSanitizer::kHost).at(0), san->latest(ad).at(0));
}

} // namespace
