// Symbolic transfer-inference verifier (label: symbolic-cert).
//
// Four layers of coverage:
//   1. the affine engine itself (exact provability, conservative subtraction,
//      boundary-basis printing),
//   2. the shipped-pattern certification sweep — every pattern class x
//      {1..8 devices} x {aligned, unaligned} partition shape, proved in
//      milliseconds (this is the CI first gate),
//   3. mutation-style negative tests: perturb the read-span formula or drop
//      a planned copy through the hooks and assert the verifier reports the
//      EXACT symbolic counterexample rectangle,
//   4. concretization cross-checks: evaluate the symbolic regions and copies
//      at concrete partition gaps and compare them against the real
//      segmenter (compute_requirement, compute_strips) and the real location
//      monitor (plan_copies) — the proofs and the runtime can never drift
//      apart silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <tuple>
#include <vector>

#include "multi/input_patterns.hpp"
#include "multi/location_monitor.hpp"
#include "multi/output_patterns.hpp"
#include "multi/read_spans.hpp"
#include "multi/segmenter.hpp"
#include "multi/symbolic_verifier.hpp"

namespace {

using namespace maps::multi;

// --- Spec helpers (mirrors of the typed pattern wrappers, no datum needed) ---

SymArg in_window_arg(int datum, int radius, maps::Boundary b) {
  PatternSpec s;
  s.kind = PatternKind::Window;
  s.is_input = true;
  s.seg = Segmentation::PartitionAligned;
  s.radius_low = radius;
  s.radius_high = radius;
  s.boundary = b;
  return {s, datum};
}

SymArg in_block_arg(int datum) {
  PatternSpec s;
  s.kind = PatternKind::Block2D;
  s.is_input = true;
  s.seg = Segmentation::PartitionAligned;
  s.boundary = maps::Boundary::NoChecks;
  return {s, datum};
}

SymArg out_sj_arg(int datum) {
  PatternSpec s;
  s.kind = PatternKind::StructuredInjective;
  s.is_input = false;
  s.seg = Segmentation::PartitionAligned;
  return {s, datum};
}

SymArg out_sum_arg(int datum) {
  PatternSpec s;
  s.kind = PatternKind::ReductiveStatic;
  s.is_input = false;
  s.seg = Segmentation::DuplicateFull;
  s.agg = AggregationKind::Sum;
  return {s, datum};
}

/// The window ping-pong chain every steady-state proof uses: stencil A -> B,
/// pointwise B -> A.
std::vector<SymStep> window_chain(int radius, maps::Boundary b) {
  return {SymStep::task({in_window_arg(0, radius, b), out_sj_arg(1)}),
          SymStep::task({in_block_arg(1), out_sj_arg(0)})};
}

// --- 1. Engine ---------------------------------------------------------------

TEST(SymEngineTest, BoundaryBasisPrinting) {
  const sym::Family f = sym::Family::unaligned(2, 1);
  EXPECT_EQ(f.print(f.work_bound(1) - 2), "b1 - 2");
  EXPECT_EQ(f.print(f.work_rows() - 1), "R - 1");
  EXPECT_EQ(f.print(f.work_rows()), "R");
  EXPECT_EQ(f.print(f.constant(7)), "7");
  EXPECT_EQ(f.print(2 * f.work_bound(1) + 3), "2*b1 + 3");
  EXPECT_EQ(f.print(sym::Interval{f.work_bound(1) - 1, f.work_bound(1)}),
            "[b1 - 1, b1)");
  // Aligned families have no independent boundaries: raw gap basis.
  const sym::Family a = sym::Family::aligned(3, 1);
  EXPECT_EQ(a.print(a.var(0)), "g");
  EXPECT_EQ(a.print(3 * a.var(0) - 1), "3*g - 1");
}

TEST(SymEngineTest, ProvabilityIsExactOverTheBox) {
  sym::Family f = sym::Family::unaligned(2, 3); // g0, g1 >= 3
  EXPECT_TRUE(f.provable_nonneg(f.var(0) - 3));
  EXPECT_FALSE(f.provable_nonneg(f.var(0) - 4)); // g0 = 3 violates
  EXPECT_TRUE(f.provable_le(f.work_bound(1), f.work_bound(2) - 3));
  // Negative coefficients need an upper bound to be decidable.
  EXPECT_FALSE(f.provable_nonneg(f.constant(100) - f.var(0)));
  f.vars[0].ub = 50;
  EXPECT_TRUE(f.provable_nonneg(f.constant(100) - f.var(0)));
  EXPECT_FALSE(f.provable_nonneg(f.constant(49) - f.var(0)));
  // eval agrees with the concrete member.
  EXPECT_EQ(f.eval(f.work_bound(2) - 1, {5, 7}), 11);
}

TEST(SymEngineTest, ConservativeSubtraction) {
  const sym::Family f = sym::Family::unaligned(2, 2);
  const sym::Expr b1 = f.work_bound(1);
  const sym::Expr R = f.work_rows();
  const sym::Interval r{f.constant(0), R};
  const sym::Interval p{b1 - 1, b1 + 1};
  // Over-approximation: both flanks survive (superset of the difference).
  const auto over = sym::subtract_over(f, r, p);
  ASSERT_EQ(over.size(), 2u);
  EXPECT_EQ(f.print(over[0]), "[0, b1 - 1)");
  EXPECT_EQ(f.print(over[1]), "[b1 + 1, R)");
  // Under-approximation drops pieces whose endpoints are incomparable: the
  // right flank of [0, b1) minus [g0-dependent cut] must not be overstated.
  const sym::Interval q{b1 - 1, R + 5}; // reaches past r for every member
  const auto under = sym::subtract_under(f, r, q);
  ASSERT_EQ(under.size(), 1u);
  EXPECT_EQ(f.print(under[0]), "[0, b1 - 1)");
  // Containment and disjointness are decisions, not heuristics.
  EXPECT_TRUE(sym::provably_contains(f, r, p));
  EXPECT_TRUE(sym::provably_disjoint(f, {f.constant(0), b1 - 1}, {b1, R}));
  EXPECT_FALSE(sym::provably_disjoint(f, {f.constant(0), b1}, {b1 - 1, R}));
}

// --- 2. The shipped sweep ----------------------------------------------------

TEST(SymbolicCertTest, EveryShippedFamilyIsCertified) {
  const auto t0 = std::chrono::steady_clock::now();
  const CertResult res = certify_shipped(8);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_TRUE(res.ok) << res.summary();
  for (const SymFailure& f : res.failures) {
    ADD_FAILURE() << f.what << " " << f.rect << " step " << f.step << " slot "
                  << f.slot << " iter " << f.iteration << ": " << f.detail;
  }
  // Pattern classes x 1..8 devices x two partition shapes, plus the strip
  // certificates: hundreds of families, each an unbounded set of concrete
  // partitions.
  EXPECT_GE(res.families, 300u);
  EXPECT_GE(res.obligations, 5000u);
  // The whole sweep is the CI first gate; it must stay in the milliseconds.
  EXPECT_LT(ms, 1000.0) << "symbolic-cert gate must stay under a second";
}

TEST(SymbolicCertTest, FixpointClosesWithinTwoSteadyIterations) {
  SymbolicVerifier v(sym::Family::unaligned(4, 2));
  const CertResult res = v.verify_chain(window_chain(2, maps::Boundary::Wrap));
  EXPECT_TRUE(res.ok) << res.summary();
  // Cold start + one steady iteration + the repeat that proves induction.
  EXPECT_LE(res.iterations, 3);
}

TEST(SymbolicCertTest, ClusterTopologiesReportOutsideModelNotSilentPass) {
  // The symbolic copy model has no network tier (NICs, staged inter-node
  // legs); a cluster chain must be *rejected* as outside-model, exactly as
  // CustomAligned segmentations are — never silently certified with
  // single-node routing the simulator would not use.
  SymbolicVerifier v(sym::Family::unaligned(4, 2));
  v.set_cluster_nodes(2);
  const CertResult res = v.verify_chain(window_chain(2, maps::Boundary::Wrap));
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_EQ(res.failures.front().what, "outside-model");
  EXPECT_NE(res.failures.front().detail.find("cluster"), std::string::npos);
  // certify_strips runs verify_chain first, so it is gated identically.
  const CertResult strips =
      v.certify_strips(window_chain(2, maps::Boundary::Wrap), 0);
  EXPECT_FALSE(strips.ok);
  EXPECT_EQ(strips.failures.front().what, "outside-model");
}

// --- 3. Mutation-style negatives --------------------------------------------

TEST(SymbolicMutationTest, WidenedReadSpanReportsExactRectangle) {
  SymbolicVerifier v(sym::Family::unaligned(2, 1));
  // The windowed kernel reads one row further down than the pattern declares:
  // the planner's copy set is now short by exactly one symbolic row on slot 1.
  // (Gate on lo_offset < 0 so only the window read is perturbed, not the
  // radius-0 block read of the ping-pong partner.)
  v.set_read_span_mutator([](ReadSpanFormula& f) {
    if (f.reads && !f.whole_datum && f.lo_offset < 0) {
      f.lo_offset -= 1;
    }
  });
  const CertResult res = v.verify_chain(window_chain(1, maps::Boundary::Wrap));
  ASSERT_FALSE(res.ok);
  bool found = false;
  for (const SymFailure& f : res.failures) {
    if (f.what == "uncovered-read" && f.slot == 1) {
      EXPECT_EQ(f.rect, "[b1 - 2, b1 - 1)");
      EXPECT_EQ(f.iteration, 1); // caught on the very first abstract run
      found = true;
    }
  }
  EXPECT_TRUE(found) << res.summary();
}

TEST(SymbolicMutationTest, DroppedAlignedHaloCopyReportsExactRectangle) {
  const sym::Family fam = sym::Family::unaligned(2, 1);
  SymbolicVerifier v(fam);
  // Drop exactly slot 1's low interior halo copy [b1 - 1, b1).
  const sym::Interval halo{fam.work_bound(1) - 1, fam.work_bound(1)};
  v.set_copy_filter([halo](const sym::Copy& c) {
    return !(c.aligned && c.rows == halo);
  });
  const CertResult res = v.verify_chain(window_chain(1, maps::Boundary::Wrap));
  ASSERT_FALSE(res.ok);
  bool found = false;
  for (const SymFailure& f : res.failures) {
    if (f.what == "uncovered-read" && f.slot == 1) {
      EXPECT_EQ(f.rect, "[b1 - 1, b1)");
      found = true;
    }
  }
  EXPECT_TRUE(found) << res.summary();
}

TEST(SymbolicMutationTest, DroppedWrapHaloRefillReportsExactRectangle) {
  SymbolicVerifier v(sym::Family::unaligned(2, 1));
  // Drop every halo-slot refill (the unaligned copies): slot 0's wrapped
  // read of the last global row goes uncovered.
  v.set_copy_filter([](const sym::Copy& c) { return c.aligned; });
  const CertResult res = v.verify_chain(window_chain(1, maps::Boundary::Wrap));
  ASSERT_FALSE(res.ok);
  bool found = false;
  for (const SymFailure& f : res.failures) {
    if (f.what == "uncovered-halo-read" && f.slot == 0) {
      EXPECT_EQ(f.rect, "[R - 1, R)");
      found = true;
    }
  }
  EXPECT_TRUE(found) << res.summary();
}

TEST(SymbolicMutationTest, MissingGatherIsAPendingAggregationRead) {
  SymbolicVerifier v(sym::Family::unaligned(2, 1));
  // Reductive output read back without a gather in between.
  const CertResult res = v.verify_chain(
      {SymStep::task({in_block_arg(0), out_sum_arg(1)}),
       SymStep::task({in_block_arg(1), out_sj_arg(0)})});
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failures.front().what, "pending-aggregation-read");
}

TEST(SymbolicMutationTest, RoutingPreservesCoverage) {
  // The same chains verify with the symbolic router on and off — routing
  // rewrites sources only, never destination rows (the planner invariant).
  for (const bool routed : {true, false}) {
    SymbolicVerifier v(sym::Family::unaligned(4, 2));
    v.set_routing_enabled(routed);
    const CertResult res =
        v.verify_chain(window_chain(2, maps::Boundary::Clamp));
    EXPECT_TRUE(res.ok) << "routing=" << routed << " " << res.summary();
  }
}

// --- 4. Strip certificates ---------------------------------------------------

TEST(SymbolicStripTest, StripSplitCertifiedForWholeFamilies) {
  // Gaps in block rows (unit = 8 rows per block row), radius 3 -> one
  // leading and one trailing boundary block row per slot.
  SymbolicVerifier v(sym::Family::unaligned(4, 3, 8));
  const CertResult res =
      v.certify_strips(window_chain(3, maps::Boundary::Wrap), 0);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_GT(res.obligations, 0u);
}

TEST(SymbolicStripTest, FamilyWithoutInteriorIsRejected) {
  // lead + trail + 1 = 3 block rows minimum; a min gap of 2 leaves members
  // with no interior strip, so no certificate may be issued.
  SymbolicVerifier v(sym::Family::unaligned(4, 2, 8));
  const CertResult res =
      v.certify_strips(window_chain(3, maps::Boundary::Wrap), 0);
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.failures.front().what, "family-unsupported");
}

// --- 5. Concretization cross-checks ------------------------------------------
//
// Evaluating every symbolic region/copy at one concrete member of the family
// (the gaps make_partition actually produced) must reproduce the real
// segmenter's regions and the real location monitor's plans exactly — this
// pins the abstract interpreter to the runtime it talks about.

using RegionKey = std::tuple<long, long, bool, bool>; ///< lo, hi, zero, aligned
using CopyKey = std::tuple<int, int, long, long, bool>; ///< dst, src, lo, hi, al

std::vector<long> partition_gaps(const TaskPartition& p) {
  std::vector<long> gaps;
  for (const RowInterval& r : p.work_row_ranges) {
    gaps.push_back(static_cast<long>(r.size()));
  }
  return gaps;
}

void expect_regions_match(int radius, maps::Boundary b, int slots,
                          std::size_t rows) {
  SCOPED_TRACE("radius=" + std::to_string(radius) +
               " slots=" + std::to_string(slots));
  Matrix<int> m(64, rows, "A");
  std::vector<int> host(64 * rows);
  m.Bind(host.data());
  PatternSpec win = in_window_arg(0, radius, b).spec;
  win.datum = &m;
  const TaskPartition p =
      make_partition(rows, 64, maps::Dim3{32, 8, 1}, 1, 1, slots);
  const std::vector<long> gaps = partition_gaps(p);

  SymbolicVerifier v(sym::Family::unaligned(slots, std::max(1, radius)));
  const CertResult res = v.verify_chain(
      {SymStep::task({SymArg{win, 0}, out_sj_arg(1)})}, /*loop=*/false);
  ASSERT_TRUE(res.ok) << res.summary();
  ASSERT_EQ(v.last_trace().size(), 1u);

  for (int s = 0; s < slots; ++s) {
    const SegmentReq req = compute_requirement(win, p, s);
    std::vector<RegionKey> concrete;
    for (const CopyRegion& r : req.input_regions) {
      concrete.emplace_back(static_cast<long>(r.global.begin),
                            static_cast<long>(r.global.end), r.zero_fill,
                            !r.zero_fill &&
                                region_lands_aligned(r, req.origin));
    }
    std::vector<RegionKey> symbolic;
    for (const SymbolicVerifier::RegionTrace& r : v.last_trace()[0].regions) {
      if (r.arg != 0 || r.slot != s) {
        continue;
      }
      symbolic.emplace_back(v.family().eval(r.global.lo, gaps),
                            v.family().eval(r.global.hi, gaps), r.zero_fill,
                            !r.zero_fill && r.aligned);
    }
    std::sort(concrete.begin(), concrete.end());
    std::sort(symbolic.begin(), symbolic.end());
    EXPECT_EQ(concrete, symbolic) << "slot " << s;
  }
}

TEST(ConcretizationTest, RegionsMatchComputeRequirement) {
  expect_regions_match(2, maps::Boundary::Clamp, 3, 256);
  expect_regions_match(1, maps::Boundary::Wrap, 4, 256);
  expect_regions_match(2, maps::Boundary::Zero, 3, 192);
  expect_regions_match(0, maps::Boundary::NoChecks, 4, 256);
  expect_regions_match(3, maps::Boundary::Wrap, 1, 128);
}

/// Replays one task the way the scheduler drives Algorithm 2: per slot, per
/// input region, plan against the monitor and mark aligned copies; then mark
/// the output cores written. Returns the planned copies.
std::vector<CopyKey>
emulate_task(SegmentLocationMonitor& mon,
             const std::vector<PatternSpec>& specs, const TaskPartition& p,
             int slots) {
  std::vector<CopyKey> out;
  for (int s = 0; s < slots; ++s) {
    for (const PatternSpec& spec : specs) {
      if (!spec.is_input) {
        continue;
      }
      const SegmentReq req = compute_requirement(spec, p, s);
      for (const CopyRegion& r : req.input_regions) {
        if (r.zero_fill) {
          continue;
        }
        const bool aligned = region_lands_aligned(r, req.origin);
        for (const SegmentLocationMonitor::CopyOp& op : mon.plan_copies(
                 spec.datum, SegmentLocationMonitor::loc(s), r.global,
                 aligned)) {
          out.emplace_back(s + 1, op.src_location,
                           static_cast<long>(op.rows.begin),
                           static_cast<long>(op.rows.end), aligned);
          if (aligned) {
            mon.mark_copied(spec.datum, SegmentLocationMonitor::loc(s),
                            op.rows);
          }
        }
      }
    }
  }
  for (const PatternSpec& spec : specs) {
    if (spec.is_input) {
      continue;
    }
    for (int s = 0; s < slots; ++s) {
      const SegmentReq req = compute_requirement(spec, p, s);
      mon.mark_written(spec.datum, SegmentLocationMonitor::loc(s), req.core);
    }
  }
  return out;
}

std::vector<CopyKey> eval_copies(const sym::Family& f,
                                 const std::vector<sym::Copy>& copies,
                                 const std::vector<long>& gaps) {
  std::vector<CopyKey> out;
  for (const sym::Copy& c : copies) {
    out.emplace_back(c.dst_location, c.src_location, f.eval(c.rows.lo, gaps),
                     f.eval(c.rows.hi, gaps), c.aligned);
  }
  return out;
}

TEST(ConcretizationTest, PlannedCopiesMatchLocationMonitor) {
  constexpr int kSlots = 3;
  constexpr std::size_t kRows = 240;
  constexpr int kRadius = 2;
  Matrix<int> A(64, kRows, "A"), B(64, kRows, "B");
  std::vector<int> ah(64 * kRows), bh(64 * kRows);
  A.Bind(ah.data());
  B.Bind(bh.data());
  const TaskPartition p =
      make_partition(kRows, 64, maps::Dim3{32, 8, 1}, 1, 1, kSlots);
  const std::vector<long> gaps = partition_gaps(p);

  PatternSpec win = in_window_arg(0, kRadius, maps::Boundary::Wrap).spec;
  win.datum = &A;
  PatternSpec blk = in_block_arg(1).spec;
  blk.datum = &B;
  PatternSpec out_b = out_sj_arg(1).spec;
  out_b.datum = &B;
  PatternSpec out_a = out_sj_arg(0).spec;
  out_a.datum = &A;

  SegmentLocationMonitor mon(kSlots);
  mon.register_datum(&A);
  mon.register_datum(&B);
  std::vector<CopyKey> cold = emulate_task(mon, {win, out_b}, p, kSlots);
  emulate_task(mon, {blk, out_a}, p, kSlots); // finish iteration 1
  std::vector<CopyKey> steady =
      emulate_task(mon, {win, out_b}, p, kSlots); // iteration 2, task 1

  // Symbolic side: raw Algorithm-2 sources (routing off so the source
  // choices are comparable one to one).
  const std::vector<SymStep> chain = window_chain(kRadius,
                                                  maps::Boundary::Wrap);
  SymbolicVerifier v(sym::Family::unaligned(kSlots, kRadius));
  v.set_routing_enabled(false);
  const CertResult cold_res = v.verify_chain(chain, /*loop=*/false);
  ASSERT_TRUE(cold_res.ok) << cold_res.summary();
  std::vector<CopyKey> sym_cold =
      eval_copies(v.family(), v.last_trace()[0].copies, gaps);
  const CertResult steady_res = v.verify_chain(chain, /*loop=*/true);
  ASSERT_TRUE(steady_res.ok) << steady_res.summary();
  // last_trace() now holds the proven fixpoint iteration: the steady state.
  std::vector<CopyKey> sym_steady =
      eval_copies(v.family(), v.last_trace()[0].copies, gaps);

  std::sort(cold.begin(), cold.end());
  std::sort(sym_cold.begin(), sym_cold.end());
  std::sort(steady.begin(), steady.end());
  std::sort(sym_steady.begin(), sym_steady.end());
  EXPECT_EQ(cold, sym_cold);
  EXPECT_EQ(steady, sym_steady);
  // Steady state recopies exactly the halos — interior traffic is gone.
  EXPECT_LT(steady.size(), cold.size());
}

TEST(ConcretizationTest, StripHaloBlocksMatchesComputeStrips) {
  constexpr int kSlots = 4;
  constexpr std::size_t kRows = 256;
  for (const int radius : {1, 3, 9}) {
    SCOPED_TRACE("radius=" + std::to_string(radius));
    Matrix<int> in(64, kRows, "in"), out(64, kRows, "out");
    std::vector<int> ih(64 * kRows), oh(64 * kRows);
    in.Bind(ih.data());
    out.Bind(oh.data());
    PatternSpec win = in_window_arg(0, radius, maps::Boundary::Wrap).spec;
    win.datum = &in;
    PatternSpec sj = out_sj_arg(1).spec;
    sj.datum = &out;
    const std::vector<PatternSpec> specs{win, sj};
    const TaskPartition p =
        make_partition(kRows, 64, maps::Dim3{32, 8, 1}, 1, 1, kSlots);
    const StripShape shape = strip_halo_blocks(specs, p.rows_per_block_row());
    ASSERT_TRUE(shape.any);
    for (int s = 0; s < kSlots; ++s) {
      std::vector<SegmentReq> reqs;
      for (const PatternSpec& spec : specs) {
        reqs.push_back(compute_requirement(spec, p, s));
      }
      const std::vector<StripRange> strips =
          compute_strips(specs, p, s, reqs);
      ASSERT_EQ(strips.size(), 3u);
      const RowInterval span = p.block_rows[static_cast<std::size_t>(s)];
      EXPECT_TRUE(strips.front().boundary);
      EXPECT_EQ(strips.front().block_rows.size(), shape.lead);
      EXPECT_EQ(strips.front().block_rows.begin, span.begin);
      EXPECT_FALSE(strips[1].boundary);
      EXPECT_EQ(strips[1].block_rows.size(),
                span.size() - shape.lead - shape.trail);
      EXPECT_TRUE(strips.back().boundary);
      EXPECT_EQ(strips.back().block_rows.size(), shape.trail);
      EXPECT_EQ(strips.back().block_rows.end, span.end);
    }
  }
  // No windowed input -> no boundary anywhere, and compute_strips agrees.
  PatternSpec blk = in_block_arg(0).spec;
  EXPECT_FALSE(strip_halo_blocks({blk}, 8).any);
}

} // namespace
