// Property-style tests: randomized task chains and configuration sweeps
// asserting the framework's central invariant — any sequence of pattern
// tasks on any device count produces exactly the sequential result.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

// --- Randomized stencil/elementwise chains --------------------------------------

/// Stencil parameterized by weights; doubles as the CPU reference.
struct WeightedStencil {
  int center = 2, cross = 1;
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      *it = center * x.at(it, 0, 0) + cross * (x.at(it, -1, 0) +
                                               x.at(it, 1, 0) +
                                               x.at(it, 0, -1) +
                                               x.at(it, 0, 1));
      *it %= 1000; // keep values bounded across long chains
    }
  }
};

struct ElementwiseMix {
  template <typename A, typename B, typename Out>
  void operator()(const maps::ThreadContext&, A& a, B& b, Out& y) const {
    MAPS_FOREACH(it, y) {
      *it = (a.at(it, 0, 0) + 3 * b.at(it, 0, 0)) % 1000;
    }
  }
};

void reference_stencil(std::vector<int>& grid, std::size_t w, std::size_t h,
                       int center, int cross) {
  auto wrap = [&](long v, std::size_t m) {
    return static_cast<std::size_t>((v + static_cast<long>(m)) %
                                    static_cast<long>(m));
  };
  std::vector<int> next(grid.size());
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const int v =
          center * grid[y * w + x] +
          cross * (grid[wrap(static_cast<long>(y) - 1, h) * w + x] +
                   grid[wrap(static_cast<long>(y) + 1, h) * w + x] +
                   grid[y * w + wrap(static_cast<long>(x) - 1, w)] +
                   grid[y * w + wrap(static_cast<long>(x) + 1, w)]);
      next[y * w + x] = v % 1000;
    }
  }
  grid = std::move(next);
}

class RandomChainTest : public ::testing::TestWithParam<unsigned> {};

/// One random kernel invocation: a weighted stencil or the elementwise mix.
struct ChainStep {
  bool stencil = true;
  int center = 2, cross = 1;
};

TEST_P(RandomChainTest, RandomTaskChainsMatchSequentialReference) {
  const unsigned seed = GetParam();
  std::mt19937 rng(seed);
  const std::size_t W = 48 + rng() % 40;
  const std::size_t H = 48 + rng() % 70;
  const int devices = 1 + static_cast<int>(rng() % 4);
  const int chain = 6 + static_cast<int>(rng() % 6);

  std::vector<int> init(W * H);
  for (auto& v : init) {
    v = static_cast<int>(rng() % 1000);
  }
  // Generate the chain as data so the run can be repeated exactly.
  std::vector<ChainStep> steps(chain);
  for (ChainStep& s : steps) {
    s.stencil = rng() % 3 != 0;
    if (s.stencil) {
      s.center = static_cast<int>(rng() % 4);
      s.cross = 1 + static_cast<int>(rng() % 3);
    }
  }

  // Every chain runs twice — plan cache on and off — with the access
  // sanitizer active. The cache must change neither the results nor the
  // simulated timeline (it only removes host-side planning work).
  struct RunOut {
    std::vector<int> a, b;
    double now_ms = 0;
  };
  auto run = [&](bool cache) {
    RunOut r;
    r.a = init;
    r.b.assign(W * H, 0);
    sim::Node node(sim::homogeneous_node(sim::titan_black(), devices));
    Scheduler sched(node);
    sched.set_plan_cache_enabled(cache);
    sched.set_sanitizer_enabled(true);
    Matrix<int> A(W, H, "A"), B(W, H, "B");
    A.Bind(r.a.data());
    B.Bind(r.b.data());
    using Win = Window2D<int, 1, maps::WRAP>;
    using Out = StructuredInjective<int, 2>;
    sched.AnalyzeCall(Win(A), Out(B));
    sched.AnalyzeCall(Win(B), Out(A));
    for (int step = 0; step < chain; ++step) {
      Matrix<int>& in = (step % 2 == 0) ? A : B;
      Matrix<int>& out = (step % 2 == 0) ? B : A;
      const ChainStep& s = steps[static_cast<std::size_t>(step)];
      if (s.stencil) {
        WeightedStencil k;
        k.center = s.center;
        k.cross = s.cross;
        sched.Invoke(k, Win(in), Out(out));
      } else {
        sched.Invoke(ElementwiseMix{}, Window2D<int, 0, maps::WRAP>(in),
                     Window2D<int, 0, maps::WRAP>(out), Out(out));
      }
    }
    sched.Gather(A);
    sched.Gather(B);
    r.now_ms = node.now_ms();
    return r;
  };
  const RunOut cached = run(true);
  const RunOut uncached = run(false);

  // CPU reference.
  std::vector<int> ref_a = init, ref_b(W * H, 0);
  for (int step = 0; step < chain; ++step) {
    std::vector<int>& rin = (step % 2 == 0) ? ref_a : ref_b;
    std::vector<int>& rout = (step % 2 == 0) ? ref_b : ref_a;
    const ChainStep& s = steps[static_cast<std::size_t>(step)];
    if (s.stencil) {
      rout = rin;
      reference_stencil(rout, W, H, s.center, s.cross);
    } else {
      // out = (in + 3*out) % 1000 elementwise. (Reading `out` while writing
      // it is safe on the device too: r=0 windows read only the element the
      // thread itself overwrites.)
      for (std::size_t i = 0; i < rout.size(); ++i) {
        rout[i] = (rin[i] + 3 * rout[i]) % 1000;
      }
    }
  }

  EXPECT_EQ(cached.a, ref_a) << "seed " << seed;
  EXPECT_EQ(cached.b, ref_b) << "seed " << seed;
  EXPECT_EQ(uncached.a, cached.a) << "seed " << seed;
  EXPECT_EQ(uncached.b, cached.b) << "seed " << seed;
  EXPECT_DOUBLE_EQ(uncached.now_ms, cached.now_ms)
      << "plan cache changed the simulated timeline, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainTest,
                         ::testing::Range(100u, 112u));

// --- Overlap splitting: results and traffic invariant, timing free --------------

class OverlapChainTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(OverlapChainTest, OverlapChangesTimingOnly) {
  const unsigned seed = GetParam();
  std::mt19937 rng(seed);
  const std::size_t W = 48 + rng() % 40;
  const std::size_t H = 192 + rng() % 128; // deep enough to split at span 8
  const int devices = 2 + static_cast<int>(rng() % 3);
  const int chain = 6 + static_cast<int>(rng() % 6);

  std::vector<int> init(W * H);
  for (auto& v : init) {
    v = static_cast<int>(rng() % 1000);
  }
  std::vector<ChainStep> steps(chain);
  for (ChainStep& s : steps) {
    s.stencil = rng() % 3 != 0;
    if (s.stencil) {
      s.center = static_cast<int>(rng() % 4);
      s.cross = 1 + static_cast<int>(rng() % 3);
    }
  }

  struct RunOut {
    std::vector<int> a, b;
    std::uint64_t bytes = 0;
    std::uint64_t interior = 0;
  };
  auto run = [&](bool overlap) {
    RunOut r;
    r.a = init;
    r.b.assign(W * H, 0);
    sim::Node node(sim::homogeneous_node(sim::titan_black(), devices));
    Scheduler sched(node);
    sched.set_sanitizer_enabled(true);
    sched.set_overlap_enabled(overlap);
    sched.set_overlap_min_benefit(0.0); // split wherever structurally possible
    Matrix<int> A(W, H, "A"), B(W, H, "B");
    A.Bind(r.a.data());
    B.Bind(r.b.data());
    using Win = Window2D<int, 1, maps::WRAP>;
    using Out = StructuredInjective<int, 2>;
    sched.AnalyzeCall(Win(A), Out(B));
    sched.AnalyzeCall(Win(B), Out(A));
    for (int step = 0; step < chain; ++step) {
      Matrix<int>& in = (step % 2 == 0) ? A : B;
      Matrix<int>& out = (step % 2 == 0) ? B : A;
      const ChainStep& s = steps[static_cast<std::size_t>(step)];
      if (s.stencil) {
        WeightedStencil k;
        k.center = s.center;
        k.cross = s.cross;
        sched.Invoke(k, Win(in), Out(out));
      } else {
        sched.Invoke(ElementwiseMix{}, Window2D<int, 0, maps::WRAP>(in),
                     Window2D<int, 0, maps::WRAP>(out), Out(out));
      }
    }
    sched.Gather(A);
    sched.Gather(B);
    r.bytes = sched.stats().transfers.bytes_total();
    r.interior = sched.stats().interior_subkernels;
    return r;
  };
  const RunOut on = run(true);
  const RunOut off = run(false);

  EXPECT_EQ(on.a, off.a) << "seed " << seed;
  EXPECT_EQ(on.b, off.b) << "seed " << seed;
  // Splitting/chunking re-times transfers, never adds or removes traffic.
  EXPECT_EQ(on.bytes, off.bytes) << "seed " << seed;
  EXPECT_GT(on.interior, 0u) << "seed " << seed; // the chains must split
  EXPECT_EQ(off.interior, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapChainTest,
                         ::testing::Range(200u, 208u));

// --- Heterogeneous nodes ---------------------------------------------------------

TEST(PropertyTest, HeterogeneousNodeStillComputesCorrectly) {
  // The paper's nodes are homogeneous; the framework's even block split
  // still yields correct results on mixed devices — the slowest gates.
  std::vector<sim::DeviceSpec> specs{sim::gtx780(), sim::gtx980(),
                                     sim::titan_black(), sim::gtx780()};
  sim::Node node(specs);
  Scheduler sched(node);
  const std::size_t W = 64, H = 96;
  std::vector<int> a(W * H), b(W * H, 0);
  std::mt19937 rng(55);
  for (auto& v : a) {
    v = static_cast<int>(rng() % 1000);
  }
  std::vector<int> ref = a;
  Matrix<int> A(W, H), B(W, H);
  A.Bind(a.data());
  B.Bind(b.data());
  WeightedStencil k;
  sched.Invoke(k, Window2D<int, 1, maps::WRAP>(A),
               StructuredInjective<int, 2>(B));
  sched.Gather(B);
  reference_stencil(ref, W, H, k.center, k.cross);
  EXPECT_EQ(b, ref);
}

// --- Device loss invalidates the plan cache ---------------------------------------

TEST(PropertyTest, DeviceLossEmptiesPlanCacheAndReplansCorrectly) {
  // Warm the steady-state plan cache, kill a device, and assert every cached
  // shape is evicted (it was partitioned over the old live set). Subsequent
  // Invokes must miss, replan over the survivors, and still match the
  // sequential reference.
  const std::size_t W = 48, H = 64;
  std::vector<int> a(W * H), b(W * H, 0);
  std::mt19937 rng(77);
  for (auto& v : a) {
    v = static_cast<int>(rng() % 1000);
  }
  std::vector<int> ref = a;

  sim::Node node(sim::homogeneous_node(sim::titan_black(), 4));
  Scheduler sched(node);
  sched.set_fault_tolerance_enabled(true);
  Matrix<int> A(W, H), B(W, H);
  A.Bind(a.data());
  B.Bind(b.data());

  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  WeightedStencil k;
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(Win(B), Out(A));
  for (int i = 0; i < 6; ++i) {
    Matrix<int>& in = (i % 2 == 0) ? A : B;
    Matrix<int>& out = (i % 2 == 0) ? B : A;
    sched.Invoke(k, Win(in), Out(out));
    reference_stencil(ref, W, H, k.center, k.cross);
  }
  ASSERT_GT(sched.plan_cache_size(), 0u); // steady state reached
  ASSERT_GT(sched.stats().cache_hits, 0u);

  sched.kill_device(2);
  EXPECT_EQ(sched.plan_cache_size(), 0u);

  const std::uint64_t misses_before = sched.stats().cache_misses;
  for (int i = 6; i < 10; ++i) {
    Matrix<int>& in = (i % 2 == 0) ? A : B;
    Matrix<int>& out = (i % 2 == 0) ? B : A;
    sched.Invoke(k, Win(in), Out(out));
    reference_stencil(ref, W, H, k.center, k.cross);
  }
  // The first post-loss Invoke of each direction must rebuild its plan.
  EXPECT_GE(sched.stats().cache_misses, misses_before + 2);
  sched.Gather(A);
  EXPECT_EQ(a, ref);
}

// --- Radius sweep -----------------------------------------------------------------

struct BoxSum {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      int acc = 0;
      MAPS_FOREACH_ALIGNED(n, x, it) {
        acc += *n;
      }
      *it = acc;
    }
  }
};

template <int R> void run_radius_case(int devices) {
  const std::size_t W = 41, H = 67;
  std::mt19937 rng(R * 17u);
  std::vector<int> x(W * H), y(W * H, -1);
  for (auto& v : x) {
    v = static_cast<int>(rng() % 5);
  }
  sim::Node node(sim::homogeneous_node(sim::gtx780(), devices));
  Scheduler sched(node);
  Matrix<int> X(W, H), Y(W, H);
  X.Bind(x.data());
  Y.Bind(y.data());
  sched.Invoke(BoxSum{}, Window2D<int, R, maps::WRAP>(X),
               StructuredInjective<int, 2>(Y));
  sched.Gather(Y);
  auto wrap = [&](long v, std::size_t m) {
    return static_cast<std::size_t>((v % static_cast<long>(m) +
                                     static_cast<long>(m)) %
                                    static_cast<long>(m));
  };
  for (std::size_t i = 0; i < H; i += 3) {
    for (std::size_t j = 0; j < W; j += 2) {
      int ref = 0;
      for (int di = -R; di <= R; ++di) {
        for (int dj = -R; dj <= R; ++dj) {
          ref += x[wrap(static_cast<long>(i) + di, H) * W +
                   wrap(static_cast<long>(j) + dj, W)];
        }
      }
      ASSERT_EQ(y[i * W + j], ref) << "R=" << R << " " << i << "," << j;
    }
  }
}

TEST(PropertyTest, WindowRadiusSweep) {
  run_radius_case<1>(4);
  run_radius_case<2>(4);
  run_radius_case<3>(3);
  run_radius_case<4>(2);
}

// --- Double precision ---------------------------------------------------------------

struct ScaleDouble {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& x, Out& y) const {
    MAPS_FOREACH(it, y) {
      *it = 0.5 * x.at(it, 0, 0);
    }
  }
};

TEST(PropertyTest, PatternsAreTypeGeneric) {
  const std::size_t W = 32, H = 32;
  std::vector<double> x(W * H, 3.0), y(W * H, 0.0);
  sim::Node node(sim::homogeneous_node(sim::gtx980(), 2));
  Scheduler sched(node);
  Matrix<double> X(W, H), Y(W, H);
  X.Bind(x.data());
  Y.Bind(y.data());
  sched.Invoke(ScaleDouble{}, Window2D<double, 0, maps::NO_CHECKS>(X),
               StructuredInjective<double, 2>(Y));
  sched.Gather(Y);
  EXPECT_DOUBLE_EQ(y[100], 1.5);
}

} // namespace
