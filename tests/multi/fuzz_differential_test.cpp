// Differential fuzz harness for the multi-GPU pipeline (label: fuzz_smoke).
//
// Each seed derives a random task chain — stencil / elementwise kernels,
// out-of-band host writes, mid-chain gathers — plus a random configuration:
// grid size, device count (1–4), architecture preset, plan cache on/off,
// final gather ordering. The chain is generated once as data and executed
// three ways: the seeded multi-GPU configuration on the parallel execution
// backend, the same configuration on the sequential legacy backend, and a
// single-device reference scheduler — all with the access sanitizer
// enabled. Results must be bit-identical everywhere and the two backends
// must report the exact same simulated time; a mismatch (or a sanitizer
// report on a clean run) prints the seed and a full reproducer description.
// 1000 seeded chains by default; MAPS_FUZZ_SEEDS overrides.
//
// A second pass fuzzes the sanitizer itself: for each seed it counts the
// aligned inferred copies of the run, drops one at random, and asserts the
// stale read is reported instead of silently corrupting the output.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "multi/maps_multi.hpp"
#include "multi/sanitizer.hpp"
#include "multi/symbolic_verifier.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

// --- Chain description (generated as data so every run replays it) -----------

struct FuzzOp {
  enum Kind { Stencil, Mix, HostModify, MidGather } kind = Stencil;
  int center = 2, cross = 1; ///< Stencil weights
  int target = 0;            ///< HostModify / MidGather: 0 = A, 1 = B
  int delta = 0;             ///< HostModify increment
};

struct FuzzCase {
  unsigned seed = 0;
  std::size_t W = 0, H = 0;
  int devices = 1;
  int arch = 0; ///< index into the preset list
  bool cache = true;
  bool gather_a_first = true;
  std::vector<FuzzOp> ops;

  std::string describe() const {
    static const char* arch_names[] = {"gtx780", "titan_black", "gtx980"};
    std::ostringstream os;
    os << "seed=" << seed << " W=" << W << " H=" << H
       << " devices=" << devices << " arch=" << arch_names[arch]
       << " cache=" << (cache ? "on" : "off")
       << " gather=" << (gather_a_first ? "A,B" : "B,A") << " ops=[";
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const FuzzOp& op = ops[i];
      if (i != 0) {
        os << " ";
      }
      switch (op.kind) {
      case FuzzOp::Stencil:
        os << "stencil(" << op.center << "," << op.cross << ")";
        break;
      case FuzzOp::Mix:
        os << "mix";
        break;
      case FuzzOp::HostModify:
        os << "hostmod(" << (op.target == 0 ? 'A' : 'B') << ",+" << op.delta
           << ")";
        break;
      case FuzzOp::MidGather:
        os << "gather(" << (op.target == 0 ? 'A' : 'B') << ")";
        break;
      }
    }
    os << "]";
    return os.str();
  }
};

FuzzCase make_case(unsigned seed) {
  std::mt19937 rng(seed);
  FuzzCase fc;
  fc.seed = seed;
  fc.W = 24 + rng() % 48;
  fc.H = 24 + rng() % 56;
  fc.devices = 1 + static_cast<int>(rng() % 4);
  fc.arch = static_cast<int>(rng() % 3);
  fc.cache = rng() % 2 == 0;
  fc.gather_a_first = rng() % 2 == 0;
  const int chain = 4 + static_cast<int>(rng() % 7);
  for (int i = 0; i < chain; ++i) {
    FuzzOp op;
    const unsigned roll = rng() % 10;
    if (roll < 5) {
      op.kind = FuzzOp::Stencil;
      op.center = static_cast<int>(rng() % 4);
      op.cross = 1 + static_cast<int>(rng() % 3);
    } else if (roll < 8) {
      op.kind = FuzzOp::Mix;
    } else if (roll < 9) {
      op.kind = FuzzOp::HostModify;
      op.target = static_cast<int>(rng() % 2);
      op.delta = 1 + static_cast<int>(rng() % 99);
    } else {
      op.kind = FuzzOp::MidGather;
      op.target = static_cast<int>(rng() % 2);
    }
    fc.ops.push_back(op);
  }
  return fc;
}

// --- Kernels -----------------------------------------------------------------

struct FuzzStencil {
  int center = 2, cross = 1;
  template <typename In, typename OutP>
  void operator()(const maps::ThreadContext&, In& x, OutP& y) const {
    MAPS_FOREACH(it, y) {
      *it = (center * x.at(it, 0, 0) + cross * (x.at(it, -1, 0) +
                                                x.at(it, 1, 0) +
                                                x.at(it, 0, -1) +
                                                x.at(it, 0, 1))) %
            1000;
    }
  }
};

struct FuzzMix {
  template <typename A, typename B, typename OutP>
  void operator()(const maps::ThreadContext&, A& a, B& b, OutP& y) const {
    MAPS_FOREACH(it, y) {
      *it = (a.at(it, 0, 0) + 3 * b.at(it, 0, 0)) % 1000;
    }
  }
};

// --- Executing one configuration of a chain ----------------------------------

struct RunResult {
  std::vector<int> a, b;
  double sim_ms = 0.0; ///< simulated clock after the final gather
};

sim::DeviceSpec arch_spec(int arch) {
  switch (arch) {
  case 0:
    return sim::gtx780();
  case 1:
    return sim::titan_black();
  default:
    return sim::gtx980();
  }
}

/// Compute-transfer overlap configuration of one run. `force` drops the cost
/// gate and shrinks the chunk threshold so the tiny fuzz grids still split
/// and chunk; `stats_out` (optional) receives the run's scheduler stats.
struct OverlapCfg {
  bool enabled = true;
  bool force = false;
  SchedulerStats* stats_out = nullptr;
};

/// Runs the chain on `devices` devices. `fault` (optional) is installed as
/// the scheduler's copy fault hook for the kernel tasks. `fault_tolerance`
/// switches on host mirroring, and `injector` (optional, requires fault
/// tolerance) kills a device at a seeded dispatch boundary mid-chain.
/// `cluster_nodes > 0` spreads the devices over that many cluster nodes
/// (devices must divide evenly); `planner` forces the transfer planner on
/// (1) or off (0), -1 keeps the scheduler default.
RunResult run_chain(const FuzzCase& fc, int devices,
                    Scheduler::CopyFaultHook fault = nullptr,
                    const OverlapCfg& overlap = OverlapCfg{},
                    bool fault_tolerance = false,
                    FaultInjector injector = nullptr,
                    int exec_threads = -1, int cluster_nodes = 0,
                    int planner = -1, int placement = -1,
                    std::size_t budget = 0) {
  using Win = Window2D<int, 1, maps::WRAP>;
  using Pt = Window2D<int, 0, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;

  RunResult r;
  r.a.resize(fc.W * fc.H);
  r.b.assign(fc.W * fc.H, 0);
  std::mt19937 init_rng(fc.seed ^ 0x9e3779b9u);
  for (auto& v : r.a) {
    v = static_cast<int>(init_rng() % 1000);
  }

  const sim::Topology topo =
      cluster_nodes > 0
          ? sim::Topology::cluster(cluster_nodes, devices / cluster_nodes)
          : sim::Topology::pcie3_pairs(devices);
  sim::Node node(sim::homogeneous_node(arch_spec(fc.arch), devices), topo);
  Scheduler sched(node);
  if (exec_threads >= 0) {
    sched.set_exec_threads(static_cast<unsigned>(exec_threads));
  }
  if (planner >= 0) {
    sched.set_transfer_planner_enabled(planner != 0);
  }
  if (placement >= 0) {
    sched.set_placement_enabled(placement != 0);
  }
  if (fault_tolerance) {
    sched.set_fault_tolerance_enabled(true);
  }
  if (injector) {
    sched.set_fault_injector(std::move(injector));
  }
  sched.set_plan_cache_enabled(fc.cache);
  sched.set_sanitizer_enabled(true);
  if (budget > 0) {
    sched.set_device_memory_budget(budget);
  }
  sched.set_overlap_enabled(overlap.enabled);
  if (overlap.force) {
    sched.set_overlap_min_benefit(0.0);
    sched.set_copy_chunk_bytes(256); // chunk even the fuzz grids' tiny copies
  }
  if (fault) {
    sched.set_copy_fault_hook(std::move(fault));
  }
  Matrix<int> A(fc.W, fc.H, "A"), B(fc.W, fc.H, "B");
  A.Bind(r.a.data());
  B.Bind(r.b.data());
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(Win(B), Out(A));

  int step = 0; // parity selects the ping-pong direction
  for (const FuzzOp& op : fc.ops) {
    Matrix<int>& in = (step % 2 == 0) ? A : B;
    Matrix<int>& out = (step % 2 == 0) ? B : A;
    switch (op.kind) {
    case FuzzOp::Stencil: {
      FuzzStencil k;
      k.center = op.center;
      k.cross = op.cross;
      sched.Invoke(k, Win(in), Out(out));
      ++step;
      break;
    }
    case FuzzOp::Mix:
      sched.Invoke(FuzzMix{}, Pt(in), Pt(out), Out(out));
      ++step;
      break;
    case FuzzOp::HostModify: {
      Matrix<int>& t = (op.target == 0) ? A : B;
      std::vector<int>& host = (op.target == 0) ? r.a : r.b;
      sched.Gather(t); // host copy is current before the out-of-band write
      for (auto& v : host) {
        v = (v + op.delta) % 1000;
      }
      sched.MarkHostModified(t);
      break;
    }
    case FuzzOp::MidGather:
      sched.Gather((op.target == 0) ? A : B);
      break;
    }
  }
  if (fc.gather_a_first) {
    sched.Gather(A);
    sched.Gather(B);
  } else {
    sched.Gather(B);
    sched.Gather(A);
  }
  if (overlap.stats_out != nullptr) {
    *overlap.stats_out = sched.stats();
  }
  r.sim_ms = node.now_ms();
  return r;
}

// --- Differential fuzz: multi-GPU == single-device reference -----------------

constexpr unsigned kSeedsPerChunk = 25;

/// Total seeded chains: 1000 by default, tunable with MAPS_FUZZ_SEEDS (the
/// TSan CI job trims it; soak runs can raise it).
unsigned fuzz_seed_total() {
  if (const char* env = std::getenv("MAPS_FUZZ_SEEDS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<unsigned>(v);
    }
  }
  return 1000;
}

unsigned fuzz_chunk_count() {
  return (fuzz_seed_total() + kSeedsPerChunk - 1) / kSeedsPerChunk;
}

class DifferentialFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialFuzz, MultiGpuMatchesSingleDeviceReference) {
  const unsigned total = fuzz_seed_total();
  const unsigned base = GetParam() * kSeedsPerChunk;
  for (unsigned seed = base; seed < std::min(base + kSeedsPerChunk, total);
       ++seed) {
    const FuzzCase fc = make_case(seed);
    // Every chain runs three ways: the seeded multi-GPU config on the
    // parallel execution backend (4 exec threads, forced so the assertion
    // is meaningful on single-core runners), the same config on the
    // sequential legacy backend, and the single-device reference. Results
    // must be bit-identical across all three, and the parallel backend
    // must not move the simulated clock by a single tick (sim time depends
    // only on the dependency graph, never on host execution).
    RunResult par, seq, ref;
    try {
      par = run_chain(fc, fc.devices, nullptr, OverlapCfg{}, false, nullptr,
                      /*exec_threads=*/4);
      seq = run_chain(fc, fc.devices, nullptr, OverlapCfg{}, false, nullptr,
                      /*exec_threads=*/0);
      ref = run_chain(fc, 1);
    } catch (const SanitizerError& e) {
      FAIL() << "sanitizer report on a clean chain\n  " << fc.describe()
             << "\n  " << e.what();
    }
    ASSERT_EQ(par.a, ref.a) << "reproducer: " << fc.describe();
    ASSERT_EQ(par.b, ref.b) << "reproducer: " << fc.describe();
    ASSERT_EQ(par.a, seq.a)
        << "exec-threads changed results; reproducer: " << fc.describe();
    ASSERT_EQ(par.b, seq.b)
        << "exec-threads changed results; reproducer: " << fc.describe();
    ASSERT_EQ(par.sim_ms, seq.sim_ms)
        << "exec-threads changed SIM TIME; reproducer: " << fc.describe();
  }
}

// ceil(MAPS_FUZZ_SEEDS / 25) chunks of 25 seeds (40 x 25 = 1000 default).
INSTANTIATE_TEST_SUITE_P(Chunks, DifferentialFuzz,
                         ::testing::Range(0u, fuzz_chunk_count()));

// --- Determinism: same case, same config, identical output -------------------

TEST(DifferentialFuzzExtra, RepeatedRunsAreBitIdentical) {
  for (unsigned seed = 300; seed < 310; ++seed) {
    const FuzzCase fc = make_case(seed);
    const RunResult r1 = run_chain(fc, fc.devices);
    const RunResult r2 = run_chain(fc, fc.devices);
    ASSERT_EQ(r1.a, r2.a) << "reproducer: " << fc.describe();
    ASSERT_EQ(r1.b, r2.b) << "reproducer: " << fc.describe();
  }
}

// --- Overlap fuzz: splitting/chunking change timing only ---------------------

TEST(DifferentialFuzzExtra, OverlapOnOffBitIdenticalWithEqualByteTotals) {
  // Forced interior/boundary splitting and aggressive copy chunking must not
  // change a single output value or a single byte of planned traffic — only
  // the simulated timeline. The sanitizer is live in both runs, so every
  // strip's copy gating is also structurally checked per dispatch.
  std::uint64_t split_runs = 0, chunked_runs = 0;
  for (unsigned seed = 700; seed < 740; ++seed) {
    const FuzzCase fc = make_case(seed);
    SchedulerStats stats_on, stats_off;
    RunResult on, off;
    try {
      on = run_chain(fc, fc.devices, nullptr,
                     OverlapCfg{true, /*force=*/true, &stats_on});
      off = run_chain(fc, fc.devices, nullptr,
                      OverlapCfg{false, false, &stats_off});
    } catch (const SanitizerError& e) {
      FAIL() << "sanitizer report on a clean chain\n  " << fc.describe()
             << "\n  " << e.what();
    }
    ASSERT_EQ(on.a, off.a) << "reproducer: " << fc.describe();
    ASSERT_EQ(on.b, off.b) << "reproducer: " << fc.describe();
    ASSERT_EQ(stats_on.transfers.bytes_total(),
              stats_off.transfers.bytes_total())
        << "overlap changed planned traffic; reproducer: " << fc.describe();
    split_runs += stats_on.interior_subkernels > 0 ? 1 : 0;
    chunked_runs += stats_on.transfers.copies_chunked > 0 ? 1 : 0;
    EXPECT_EQ(stats_off.interior_subkernels, 0u) << fc.describe();
    EXPECT_EQ(stats_off.transfers.copies_chunked, 0u) << fc.describe();
  }
  // The seed range must actually exercise both mechanisms.
  EXPECT_GE(split_runs, 10u);
  EXPECT_GE(chunked_runs, 10u);
}

// --- Out-of-core fuzz: random memory budgets change residency only -----------

TEST(OutOfCoreFuzz, RandomBudgetsBitIdenticalWithBalancedBytes) {
  // For each seed: the unlimited-memory run is the reference; the same chain
  // under a seed-derived device memory budget must produce bit-identical
  // outputs with the sanitizer live, differing only in residency traffic.
  // The budget floor (16 KiB) keeps every draw above the minimum streaming
  // window for the corpus grids (double-buffered block-row windows over rows
  // of at most ~284 bytes), so a budget is never rejected; the 32 KiB span
  // still pulls many draws below the per-slot working sets of the larger
  // low-device-count seeds, forcing real evictions and streamed passes. Every spill
  // byte must be balanced: the spill transfer ledger equals write-backs plus
  // refills exactly — a leak either way means residency traffic was
  // misclassified as first-touch distribution (or vice versa).
  const unsigned total = std::min(fuzz_seed_total(), 80u);
  std::uint64_t streamed = 0, residency_bytes = 0;
  for (unsigned seed = 0; seed < total; ++seed) {
    const FuzzCase fc = make_case(seed);
    std::mt19937 brng(fc.seed ^ 0x00c0ffeeu);
    const std::size_t budget = 16 * 1024 + brng() % (32 * 1024);
    SchedulerStats ref_stats, ooc_stats;
    RunResult ref, ooc;
    try {
      ref = run_chain(fc, fc.devices, nullptr,
                      OverlapCfg{true, false, &ref_stats});
      ooc = run_chain(fc, fc.devices, nullptr,
                      OverlapCfg{true, false, &ooc_stats}, false, nullptr,
                      /*exec_threads=*/-1, /*cluster_nodes=*/0,
                      /*planner=*/-1, /*placement=*/-1, budget);
    } catch (const SanitizerError& e) {
      FAIL() << "sanitizer report under budget " << budget << "\n  "
             << fc.describe() << "\n  " << e.what();
    }
    ASSERT_EQ(ooc.a, ref.a)
        << "budget " << budget << " changed results; " << fc.describe();
    ASSERT_EQ(ooc.b, ref.b)
        << "budget " << budget << " changed results; " << fc.describe();
    EXPECT_EQ(ref_stats.spill.evictions, 0u) << fc.describe();
    EXPECT_EQ(ref_stats.spill.transfers.bytes_total(), 0u) << fc.describe();
    EXPECT_EQ(ooc_stats.spill.transfers.bytes_total(),
              ooc_stats.spill.bytes_spilled + ooc_stats.spill.bytes_refilled)
        << "spill byte ledger out of balance under budget " << budget << "; "
        << fc.describe();
    streamed += ooc_stats.spill.streamed_tasks;
    residency_bytes +=
        ooc_stats.spill.bytes_spilled + ooc_stats.spill.bytes_refilled;
  }
  // The slice must actually exercise the out-of-core machinery, not just
  // hand every chain a budget it fits under. (LRU evictions cannot occur in
  // this corpus — the ping-pong chain references both datums in every task,
  // so no resident is ever idle; the eviction counters are pinned in
  // out_of_core_test instead.)
  EXPECT_GT(streamed, 0u);
  EXPECT_GT(residency_bytes, 0u);
}

// --- Fault fuzz: a dropped inferred copy must be reported --------------------

TEST(FaultFuzz, DroppedAlignedCopyIsAlwaysReported) {
  // For each seed: count the aligned non-zero-fill copies the chain plans,
  // then rerun dropping one of them at random. The sanitizer must throw —
  // the alternative is the silent corruption this harness exists to rule
  // out. (Non-aligned Wrap/Clamp halo refills can be duplicated at Clamp
  // boundaries, so only aligned drops guarantee a detectable stale read.)
  int exercised = 0;
  for (unsigned seed = 500; seed < 520; ++seed) {
    const FuzzCase fc = make_case(seed);
    std::uint64_t aligned_copies = 0;
    run_chain(fc, fc.devices, [&](const Scheduler::CopyFaultInfo& c) {
      if (c.aligned && !c.zero_fill) {
        ++aligned_copies;
      }
      return false;
    });
    if (aligned_copies == 0) {
      continue; // nothing to drop (tiny single-device chains)
    }
    ++exercised;
    std::mt19937 rng(seed ^ 0x7f4a7c15u);
    const std::uint64_t victim = rng() % aligned_copies;
    std::uint64_t n = 0;
    bool dropped = false;
    EXPECT_THROW(
        {
          run_chain(fc, fc.devices, [&](const Scheduler::CopyFaultInfo& c) {
            if (c.aligned && !c.zero_fill && n++ == victim) {
              dropped = true;
              return true;
            }
            return false;
          });
        },
        SanitizerError)
        << "silent stale read! dropped copy " << victim << " of "
        << aligned_copies << "; reproducer: " << fc.describe();
    EXPECT_TRUE(dropped) << fc.describe();
  }
  // The seed range must actually exercise the fault path.
  EXPECT_GE(exercised, 10);
}

// --- Symbolic agreement: static proofs match the dynamic sanitizer -----------

SymArg sym_window(int datum, int radius) {
  PatternSpec s;
  s.kind = PatternKind::Window;
  s.is_input = true;
  s.seg = Segmentation::PartitionAligned;
  s.radius_low = radius;
  s.radius_high = radius;
  s.boundary = maps::Boundary::Wrap;
  return {s, datum};
}

SymArg sym_out(int datum) {
  PatternSpec s;
  s.kind = PatternKind::StructuredInjective;
  s.is_input = false;
  s.seg = Segmentation::PartitionAligned;
  return {s, datum};
}

/// The symbolic image of a fuzz chain: same ping-pong parity, same
/// out-of-band host writes and gathers as run_chain() issues concretely.
/// Win is a radius-1 WRAP window, Pt a radius-0 one; datum 0 is A, 1 is B.
std::vector<SymStep> symbolic_chain(const FuzzCase& fc) {
  std::vector<SymStep> chain;
  int step = 0;
  for (const FuzzOp& op : fc.ops) {
    const int in = (step % 2 == 0) ? 0 : 1;
    const int out = 1 - in;
    switch (op.kind) {
    case FuzzOp::Stencil:
      chain.push_back(SymStep::task({sym_window(in, 1), sym_out(out)}));
      ++step;
      break;
    case FuzzOp::Mix:
      chain.push_back(SymStep::task(
          {sym_window(in, 0), sym_window(out, 0), sym_out(out)}));
      ++step;
      break;
    case FuzzOp::HostModify:
      chain.push_back(SymStep::gather(op.target));
      chain.push_back(SymStep::host_write(op.target));
      break;
    case FuzzOp::MidGather:
      chain.push_back(SymStep::gather(op.target));
      break;
    }
  }
  chain.push_back(SymStep::gather(fc.gather_a_first ? 0 : 1));
  chain.push_back(SymStep::gather(fc.gather_a_first ? 1 : 0));
  return chain;
}

TEST(SymbolicAgreement, VerifierAndSanitizerNeverDisagree) {
  // A slice of the fuzz corpus, checked both ways. Direction one: every
  // chain the sanitizer accepts at runtime must be PROVABLE — the symbolic
  // verifier certifies the chain's whole partition family for each device
  // count the seed can draw, then the concrete run (sanitizer live) must be
  // clean. Direction two: a chain the sanitizer would flag must fail the
  // proof too — drop the first aligned inferred copy through the symbolic
  // hook and require a counterexample rectangle, mirroring what FaultFuzz
  // proves concretely with the scheduler's copy fault hook.
  const unsigned total = std::min(fuzz_seed_total(), 150u);
  unsigned mutated = 0;
  for (unsigned seed = 0; seed < total; ++seed) {
    const FuzzCase fc = make_case(seed);
    const std::vector<SymStep> chain = symbolic_chain(fc);
    SymbolicVerifier probe(sym::Family::unaligned(fc.devices, 1));
    for (int devices = 1; devices <= fc.devices; ++devices) {
      SymbolicVerifier v(sym::Family::unaligned(devices, 1));
      const CertResult res = v.verify_chain(chain, /*loop=*/false);
      EXPECT_TRUE(res.ok) << "proof failed for a chain the sanitizer accepts"
                          << "\n  devices=" << devices << " " << fc.describe()
                          << "\n  " << res.summary();
      if (devices == fc.devices) {
        probe = std::move(v);
      }
    }
    try {
      run_chain(fc, fc.devices);
    } catch (const SanitizerError& e) {
      FAIL() << "sanitizer flagged a chain the verifier proved\n  "
             << fc.describe() << "\n  " << e.what();
    }
    // Direction two on the same seed: drop the first aligned task copy.
    bool has_victim = false;
    for (const SymbolicVerifier::StepTrace& st : probe.last_trace()) {
      for (const sym::Copy& c : st.copies) {
        has_victim |= c.aligned && !c.zero_fill && c.arg >= 0;
      }
    }
    if (!has_victim) {
      continue;
    }
    ++mutated;
    SymbolicVerifier broken(sym::Family::unaligned(fc.devices, 1));
    bool dropped = false;
    broken.set_copy_filter([&dropped](const sym::Copy& c) {
      if (!dropped && c.aligned && !c.zero_fill && c.arg >= 0) {
        dropped = true;
        return false;
      }
      return true;
    });
    const CertResult res = broken.verify_chain(chain, /*loop=*/false);
    EXPECT_TRUE(dropped) << fc.describe();
    EXPECT_FALSE(res.ok)
        << "dropped copy not detected symbolically; " << fc.describe();
    for (const SymFailure& f : res.failures) {
      EXPECT_FALSE(f.rect.empty())
          << "counterexample without a rectangle; " << fc.describe();
    }
  }
  // The corpus slice must actually exercise the mutation direction.
  EXPECT_GE(mutated, total / 2);
}

// --- Fault fuzz: random device loss keeps chains bit-identical ---------------

TEST(FaultFuzz, RandomDeviceLossKeepsChainsBitIdentical) {
  // For each multi-device seed: run the chain fault-free with fault
  // tolerance on, then rerun it killing a seeded random device at a seeded
  // random boundary (CopiesIssued / KernelIssued / PreGather), sanitizer
  // live in both. Recovery must reproduce the fault-free results bit for
  // bit — across stencils, in-place mixes, out-of-band host writes and
  // mid-chain gathers.
  int exercised = 0;
  for (unsigned seed = 900; seed < 940; ++seed) {
    const FuzzCase fc = make_case(seed);
    if (fc.devices < 2) {
      continue; // losing the only device is (correctly) unrecoverable
    }
    ++exercised;
    std::mt19937 rng(seed ^ 0x51f15eedu);
    const int victim =
        static_cast<int>(rng() % static_cast<unsigned>(fc.devices));
    constexpr KillStage kStages[] = {KillStage::CopiesIssued,
                                     KillStage::KernelIssued,
                                     KillStage::PreGather};
    const KillStage stage = kStages[rng() % 3];
    const int nth = static_cast<int>(rng() % 3);
    RunResult clean, faulty;
    try {
      clean = run_chain(fc, fc.devices, nullptr, OverlapCfg{},
                        /*fault_tolerance=*/true);
      faulty = run_chain(fc, fc.devices, nullptr, OverlapCfg{},
                         /*fault_tolerance=*/true,
                         kill_at_nth(victim, stage, nth));
    } catch (const SanitizerError& e) {
      FAIL() << "sanitizer report under fault tolerance\n  " << fc.describe()
             << "\n  kill slot " << victim << " stage "
             << static_cast<int>(stage) << " nth " << nth << "\n  "
             << e.what();
    }
    ASSERT_EQ(faulty.a, clean.a)
        << "device loss changed results; reproducer: " << fc.describe()
        << " kill slot " << victim << " stage " << static_cast<int>(stage)
        << " nth " << nth;
    ASSERT_EQ(faulty.b, clean.b)
        << "device loss changed results; reproducer: " << fc.describe()
        << " kill slot " << victim << " stage " << static_cast<int>(stage)
        << " nth " << nth;
  }
  // The seed range must actually exercise recovery.
  EXPECT_GE(exercised, 20);
}

// --- Cluster fuzz: hierarchical routing never changes results ----------------

TEST(ClusterFuzz, PlannerOnOffBitIdenticalAcrossNodeBoundaries) {
  // Cluster slice (2 nodes x 2-4 GPUs per node): the hierarchical planner
  // only reroutes copies — it picks sources and stages node crossings, never
  // changes what lands where. For every seeded chain the planner-on and
  // planner-off runs must agree bit for bit, and the total bytes moved is a
  // routing invariant (reclassification between link classes is allowed;
  // the sum is not).
  int crossed = 0;
  for (unsigned seed = 1300; seed < 1330; ++seed) {
    const FuzzCase fc = make_case(seed);
    const int gpn = 2 + static_cast<int>(seed % 3u); // 2..4 GPUs per node
    const int devices = 2 * gpn;
    SchedulerStats on_stats, off_stats, pl_stats;
    OverlapCfg on_cfg, off_cfg, pl_cfg;
    on_cfg.stats_out = &on_stats;
    off_cfg.stats_out = &off_stats;
    pl_cfg.stats_out = &pl_stats;
    RunResult on, off, pl;
    try {
      on = run_chain(fc, devices, nullptr, on_cfg, false, nullptr, -1,
                     /*cluster_nodes=*/2, /*planner=*/1);
      off = run_chain(fc, devices, nullptr, off_cfg, false, nullptr, -1,
                      /*cluster_nodes=*/2, /*planner=*/0);
      pl = run_chain(fc, devices, nullptr, pl_cfg, false, nullptr, -1,
                     /*cluster_nodes=*/2, /*planner=*/1, /*placement=*/1);
    } catch (const SanitizerError& e) {
      FAIL() << "sanitizer report on cluster chain\n  " << fc.describe()
             << "\n  gpus per node " << gpn << "\n  " << e.what();
    }
    ASSERT_EQ(on.a, off.a)
        << "cluster planner changed results; reproducer: " << fc.describe()
        << " gpus per node " << gpn;
    ASSERT_EQ(on.b, off.b)
        << "cluster planner changed results; reproducer: " << fc.describe()
        << " gpus per node " << gpn;
    // Topology-aware placement only reorders which physical device hosts
    // which segment — results must stay bit-identical with it on.
    ASSERT_EQ(pl.a, on.a)
        << "placement changed results; reproducer: " << fc.describe()
        << " gpus per node " << gpn;
    ASSERT_EQ(pl.b, on.b)
        << "placement changed results; reproducer: " << fc.describe()
        << " gpus per node " << gpn;
    ASSERT_EQ(on_stats.transfers.bytes_total(),
              off_stats.transfers.bytes_total())
        << "routing changed the total bytes moved; reproducer: "
        << fc.describe() << " gpus per node " << gpn;
    const std::uint64_t net = on_stats.transfers.bytes_net_send +
                              on_stats.transfers.bytes_net_recv +
                              on_stats.transfers.bytes_net_staged;
    if (net > 0) {
      ++crossed;
    }
  }
  // The slice must actually drive traffic across the node boundary.
  EXPECT_GE(crossed, 20);
}

} // namespace
