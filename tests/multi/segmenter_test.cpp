// Segmenter: even block distribution (§2.1) and per-pattern segment
// requirements, including the boundary materializations of Window patterns.
#include <gtest/gtest.h>

#include "multi/input_patterns.hpp"
#include "multi/output_patterns.hpp"
#include "multi/segmenter.hpp"

namespace {

using namespace maps::multi;

TaskPartition part2d(std::size_t h, std::size_t w, int slots, unsigned ilp_x = 1,
                     unsigned ilp_y = 1) {
  return make_partition(h, w, maps::Dim3{32, 8, 1}, ilp_x, ilp_y, slots);
}

TEST(PartitionTest, EvenBlockDistribution) {
  const TaskPartition p = part2d(1024, 1024, 4);
  EXPECT_EQ(p.blocks_x, 32u);
  EXPECT_EQ(p.blocks_y, 128u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(p.block_rows[static_cast<std::size_t>(s)].size(), 32u);
    EXPECT_EQ(p.work_row_ranges[static_cast<std::size_t>(s)].size(), 256u);
  }
}

TEST(PartitionTest, UnevenSplitCoversEverything) {
  const TaskPartition p = part2d(1000, 64, 3);
  std::size_t covered = 0;
  for (int s = 0; s < 3; ++s) {
    covered += p.work_row_ranges[static_cast<std::size_t>(s)].size();
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_EQ(p.work_row_ranges[0].begin, 0u);
  EXPECT_EQ(p.work_row_ranges[2].end, 1000u);
}

TEST(PartitionTest, IlpShrinksGrid) {
  const TaskPartition a = part2d(1024, 1024, 1);
  const TaskPartition b = part2d(1024, 1024, 1, 4, 2);
  EXPECT_EQ(b.blocks_x, a.blocks_x / 4);
  EXPECT_EQ(b.blocks_y, a.blocks_y / 2);
}

TEST(PartitionTest, MoreSlotsThanBlockRows) {
  const TaskPartition p = part2d(8, 64, 4); // one block row total
  int active = 0;
  for (int s = 0; s < 4; ++s) {
    if (!p.work_row_ranges[static_cast<std::size_t>(s)].empty()) {
      ++active;
    }
  }
  EXPECT_EQ(active, 1);
}

TEST(SegmenterTest, StructuredInjectiveExactSegments) {
  Matrix<float> m(256, 1024);
  StructuredInjective<float> out(m);
  const TaskPartition p = part2d(1024, 256, 4);
  for (int s = 0; s < 4; ++s) {
    const SegmentReq req = compute_requirement(out.spec(), p, s);
    ASSERT_TRUE(req.active);
    EXPECT_EQ(req.local_rows, 256u); // exact quarter, no halo (§3.2)
    EXPECT_EQ(req.core.begin, 256u * static_cast<std::size_t>(s));
    EXPECT_FALSE(req.whole);
    EXPECT_TRUE(req.input_regions.empty());
  }
}

TEST(SegmenterTest, WindowAddsHaloRows) {
  Matrix<int> m(128, 512);
  Window2D<int, 2, maps::CLAMP> win(m);
  const TaskPartition p = part2d(512, 128, 4);
  const SegmentReq req = compute_requirement(win.spec(), p, 1);
  ASSERT_TRUE(req.active);
  EXPECT_EQ(req.core, (RowInterval{128, 256}));
  EXPECT_EQ(req.local_rows, 128u + 4u);
  EXPECT_EQ(req.origin, 126);
  // Core + top halo + bottom halo, all plain copies for an interior device.
  std::size_t copied = 0;
  for (const auto& r : req.input_regions) {
    EXPECT_FALSE(r.zero_fill);
    copied += r.global.size();
  }
  EXPECT_EQ(copied, 132u);
}

TEST(SegmenterTest, WrapHaloWrapsAroundGlobalEdges) {
  Matrix<int> m(64, 256);
  Window2D<int, 1, maps::WRAP> win(m);
  const TaskPartition p = part2d(256, 64, 4);
  // Device 0's top halo is global row 255.
  const SegmentReq top = compute_requirement(win.spec(), p, 0);
  bool found_wrap = false;
  for (const auto& r : top.input_regions) {
    if (r.global.begin == 255 && r.global.end == 256 && r.local_row == 0) {
      found_wrap = true;
    }
  }
  EXPECT_TRUE(found_wrap);
  // Device 3's bottom halo is global row 0.
  const SegmentReq bottom = compute_requirement(win.spec(), p, 3);
  bool found_wrap_bottom = false;
  for (const auto& r : bottom.input_regions) {
    if (r.global.begin == 0 && r.global.end == 1 &&
        r.local_row == static_cast<long>(bottom.local_rows) - 1) {
      found_wrap_bottom = true;
    }
  }
  EXPECT_TRUE(found_wrap_bottom);
}

TEST(SegmenterTest, ClampHaloRepeatsEdgeRow) {
  Matrix<int> m(64, 256);
  Window2D<int, 2, maps::CLAMP> win(m);
  const TaskPartition p = part2d(256, 64, 4);
  const SegmentReq top = compute_requirement(win.spec(), p, 0);
  int clamp_rows = 0;
  for (const auto& r : top.input_regions) {
    if (r.local_row < 2) {
      EXPECT_EQ(r.global, (RowInterval{0, 1}));
      ++clamp_rows;
    }
  }
  EXPECT_EQ(clamp_rows, 2);
}

TEST(SegmenterTest, ZeroBoundaryEmitsZeroFill) {
  Matrix<int> m(64, 256);
  Window2D<int, 1, maps::ZERO> win(m);
  const TaskPartition p = part2d(256, 64, 2);
  const SegmentReq top = compute_requirement(win.spec(), p, 0);
  bool has_zero = false;
  for (const auto& r : top.input_regions) {
    has_zero = has_zero || r.zero_fill;
  }
  EXPECT_TRUE(has_zero);
  // Interior edge (bottom of device 0) is a normal neighbor copy.
  const SegmentReq dev1 = compute_requirement(win.spec(), p, 1);
  for (const auto& r : dev1.input_regions) {
    if (r.local_row == 0) {
      EXPECT_FALSE(r.zero_fill);
      EXPECT_EQ(r.global, (RowInterval{127, 128}));
    }
  }
}

TEST(SegmenterTest, ReplicatePatternsNeedWholeDatum) {
  Vector<float> v(10000);
  Block1D<float> b(v);
  const TaskPartition p = part2d(512, 64, 4);
  for (int s = 0; s < 4; ++s) {
    const SegmentReq req = compute_requirement(b.spec(), p, s);
    EXPECT_TRUE(req.whole);
    EXPECT_EQ(req.local_rows, 10000u);
    EXPECT_FALSE(req.private_copy);
  }
}

TEST(SegmenterTest, ReductiveStaticDuplicatesWithZeroInit) {
  Vector<int> hist(256);
  ReductiveStatic<int, 256> out(hist);
  const TaskPartition p = part2d(512, 512, 4);
  const SegmentReq req = compute_requirement(out.spec(), p, 2);
  EXPECT_TRUE(req.whole);
  EXPECT_TRUE(req.private_copy);
  ASSERT_EQ(req.input_regions.size(), 1u);
  EXPECT_TRUE(req.input_regions[0].zero_fill);
}

TEST(SegmenterTest, DynamicAppendCapacityIsLocalShare) {
  Vector<float> out_data(100000);
  ReductiveDynamic<float> out(out_data);
  TaskPartition p = make_partition(100000, 1, maps::Dim3{1, 128, 1}, 1, 1, 4);
  const SegmentReq req = compute_requirement(out.spec(), p, 0);
  EXPECT_TRUE(req.private_copy);
  EXPECT_EQ(req.local_rows,
            p.work_row_ranges[0].size()); // capacity = device's work share
}

TEST(SegmenterTest, SingleDevicePatternsRunOnSlotZeroOnly) {
  Vector<int> v(1000);
  Traversal<int> t(v);
  const TaskPartition p = part2d(512, 64, 1);
  EXPECT_TRUE(compute_requirement(t.spec(), p, 0).active);
}

TEST(SegmenterTest, RowScaleForStridedRoutines) {
  // A stride-2 pooling input: datum rows = 2x work rows.
  Matrix<float> in(64, 512);
  Block2D<float> pattern(in);
  PatternSpec spec = pattern.spec();
  spec.row_scale_num = 2;
  const TaskPartition p = part2d(256, 64, 2); // work is the pooled output
  const SegmentReq req = compute_requirement(spec, p, 1);
  EXPECT_EQ(req.core, (RowInterval{256, 512}));
}

} // namespace
