// Unit tests for the pattern-derived cost model (task_cost.cpp): the access
// pattern specification is also the kernel's cost descriptor (DESIGN.md §5).
#include <gtest/gtest.h>

#include "multi/input_patterns.hpp"
#include "multi/output_patterns.hpp"
#include "multi/task_cost.hpp"

namespace {

using namespace maps::multi;

TaskPartition part(std::size_t h, std::size_t w, int slots, unsigned ilp_x = 1,
                   unsigned ilp_y = 1) {
  return make_partition(h, w, maps::Dim3{32, 8, 1}, ilp_x, ilp_y, slots);
}

TEST(TaskCostTest, WindowChargesTileReadsAndSharedOps) {
  Matrix<int> m(1024, 1024);
  Window2D<int, 1, maps::WRAP> win(m);
  const std::vector<PatternSpec> specs{win.spec()};
  const TaskPartition p = part(1024, 1024, 1);
  const auto st = task_launch_stats(specs, p, 0, CostHints{}, "t");
  // Tile overlap makes reads exceed one-byte-per-element...
  EXPECT_GT(st.global_bytes_read, 1024u * 1024u * 4u);
  // ...but stays below the naive 9-reads-per-element.
  EXPECT_LT(st.global_bytes_read, 9u * 1024u * 1024u * 4u);
  EXPECT_GT(st.shared_ops, 9u * 1024u * 1024u / 2);
}

TEST(TaskCostTest, IlpReducesThreadOverheadAndPipelinesShared) {
  Matrix<int> m(1024, 1024);
  Window2D<int, 1, maps::WRAP> w1(m);
  Window2D<int, 1, maps::WRAP, 4, 2> w8(m);
  const std::vector<PatternSpec> s1{w1.spec()};
  const std::vector<PatternSpec> s8{w8.spec()};
  const auto st1 = task_launch_stats(s1, part(1024, 1024, 1), 0, CostHints{},
                                     "noilp");
  const auto st8 = task_launch_stats(s8, part(1024, 1024, 1, 4, 2), 0,
                                     CostHints{}, "ilp");
  EXPECT_LT(st8.instr_overhead, st1.instr_overhead / 4);
  EXPECT_LT(st8.shared_ops, st1.shared_ops / 2);
  EXPECT_EQ(st8.blocks, st1.blocks / 8);
}

TEST(TaskCostTest, ReductiveStaticChargesSharedAtomicsNotGlobal) {
  Matrix<int> img(2048, 2048);
  Vector<int> bins(256);
  Window2D<int, 0, maps::NO_CHECKS, 8> in(img);
  ReductiveStatic<int, 256, 8> out(bins);
  const std::vector<PatternSpec> specs{in.spec(), out.spec()};
  const auto st = task_launch_stats(specs, part(2048, 2048, 1, 8, 1), 0,
                                    CostHints{}, "hist");
  EXPECT_GT(st.shared_atomics, 0u);
  // Per-block commits only — far fewer global atomics than elements (the
  // §4.5.2 aggregator conserves atomic operations).
  EXPECT_LT(st.global_atomics, 2048u * 2048u / 16);
}

TEST(TaskCostTest, UnstructuredWritesChargeFullTransactions) {
  Vector<float> v(100000);
  UnstructuredInjective<float> out(v);
  StructuredInjective<float, 1> structured(v);
  const std::vector<PatternSpec> su{out.spec()};
  const std::vector<PatternSpec> ss{structured.spec()};
  const TaskPartition p = make_partition(100000, 1, maps::Dim3{1, 128, 1}, 1,
                                         1, 1);
  const auto a = task_launch_stats(su, p, 0, CostHints{}, "scatter");
  const auto b = task_launch_stats(ss, p, 0, CostHints{}, "coalesced");
  EXPECT_GT(a.global_bytes_written, 4 * b.global_bytes_written);
}

TEST(TaskCostTest, InactiveSlotCostsNothing) {
  Matrix<int> m(64, 8); // one block row; slots beyond 0 idle
  StructuredInjective<int, 2> out(m);
  const std::vector<PatternSpec> specs{out.spec()};
  const TaskPartition p = part(8, 64, 4);
  const auto st = task_launch_stats(specs, p, 0, CostHints{}, "idle");
  EXPECT_EQ(st.blocks, 0u);
  EXPECT_EQ(st.flops, 0u);
}

TEST(TaskCostTest, HintsOverrideFlopsAndEfficiency) {
  Matrix<float> m(256, 256);
  StructuredInjective<float, 2> out(m);
  const std::vector<PatternSpec> specs{out.spec()};
  CostHints hints;
  hints.flops_per_elem = 100.0;
  hints.flop_efficiency = 0.9;
  const auto st =
      task_launch_stats(specs, part(256, 256, 1), 0, hints, "hinted");
  EXPECT_EQ(st.flops, 100u * 256u * 256u);
  EXPECT_DOUBLE_EQ(st.flop_efficiency, 0.9);
}

} // namespace
