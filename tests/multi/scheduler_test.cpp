// End-to-end scheduler tests: the central invariant is that a task invoked
// through MAPS-Multi on any number of simulated GPUs produces exactly the
// same result as a sequential CPU reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

// --- Kernels ----------------------------------------------------------------

// Game of Life tick (Fig 2b): Window2D input, StructuredInjective output.
struct GameOfLifeTick {
  template <typename Win, typename Out>
  void operator()(const maps::ThreadContext&, Win& current, Out& next) const {
    MAPS_FOREACH(cell, next) {
      int live = 0;
      MAPS_FOREACH_ALIGNED(n, current, cell) {
        if (!n.is_center()) {
          live += *n;
        }
      }
      const int alive = current.at(cell, 0, 0);
      *cell = (live == 3 || (alive && live == 2)) ? 1 : 0;
    }
    next.commit();
  }
};

void gol_reference(std::vector<int>& grid, std::size_t w, std::size_t h) {
  std::vector<int> next(grid.size());
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      int live = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) {
            continue;
          }
          const std::size_t yy = (y + h + static_cast<std::size_t>(dy)) % h;
          const std::size_t xx = (x + w + static_cast<std::size_t>(dx)) % w;
          live += grid[yy * w + xx];
        }
      }
      const int alive = grid[y * w + x];
      next[y * w + x] = (live == 3 || (alive && live == 2)) ? 1 : 0;
    }
  }
  grid = std::move(next);
}

std::vector<int> random_grid(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<int> g(n);
  for (auto& v : g) {
    v = static_cast<int>(rng() & 1u);
  }
  return g;
}

sim::Node make_node(int devices,
                    sim::ExecMode mode = sim::ExecMode::Functional) {
  return sim::Node(sim::homogeneous_node(sim::titan_black(), devices), mode);
}

// --- Game of Life -----------------------------------------------------------

class GolDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(GolDevicesTest, MatchesCpuReferenceOverIterations) {
  const int devices = GetParam();
  const std::size_t W = 96, H = 128;
  const int iterations = 6;

  std::vector<int> host_a = random_grid(W * H, 42);
  std::vector<int> host_b(W * H, 0);
  std::vector<int> reference = host_a;

  sim::Node node = make_node(devices);
  Scheduler sched(node);

  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(host_a.data());
  B.Bind(host_b.data());

  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(Win(B), Out(A));

  for (int i = 0; i < iterations; ++i) {
    if (i % 2 == 0) {
      sched.Invoke(GameOfLifeTick{}, Win(A), Out(B));
    } else {
      sched.Invoke(GameOfLifeTick{}, Win(B), Out(A));
    }
    gol_reference(reference, W, H);
  }
  if (iterations % 2 == 0) {
    sched.Gather(A);
    EXPECT_EQ(host_a, reference);
  } else {
    sched.Gather(B);
    EXPECT_EQ(host_b, reference);
  }
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, GolDevicesTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(GolTest, BoundaryExchangeBytesPerIteration) {
  // §5.1: the Game of Life requires two-line boundary exchanges per
  // iteration. With 4 devices, 6 interior boundaries x 1 row each.
  const std::size_t W = 256, H = 256;
  std::vector<int> host_a = random_grid(W * H, 1);
  std::vector<int> host_b(W * H, 0);

  sim::Node node = make_node(4);
  Scheduler sched(node);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(host_a.data());
  B.Bind(host_b.data());
  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  sched.AnalyzeCall(Win(A), Out(B));
  sched.AnalyzeCall(Win(B), Out(A));
  sched.Invoke(GameOfLifeTick{}, Win(A), Out(B)); // all inputs from host
  sched.WaitAll();
  node.reset_stats();
  sched.Invoke(GameOfLifeTick{}, Win(B), Out(A)); // halos now exchanged p2p
  sched.WaitAll();
  // 6 interior halo rows move p2p; the 2 wrap rows cross the node too.
  const std::uint64_t row_bytes = W * sizeof(int);
  EXPECT_EQ(node.stats().bytes_p2p, 8 * row_bytes);
  EXPECT_EQ(node.stats().bytes_h2d, 0u); // nothing re-sent from the host
}

// --- Histogram (Reductive Static) --------------------------------------------

struct HistogramKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& image, Out& hist) const {
    MAPS_FOREACH(h, hist) {
      auto pixel = image.align(h);
      h[static_cast<std::size_t>(*pixel)] += 1;
    }
    hist.commit();
  }
};

class HistogramDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramDevicesTest, SumAggregationMatchesReference) {
  const int devices = GetParam();
  const std::size_t W = 200, H = 160;
  std::mt19937 rng(7);
  std::vector<int> image(W * H);
  for (auto& p : image) {
    p = static_cast<int>(rng() % 256);
  }
  std::vector<int> hist(256, 0);
  std::vector<int> expected(256, 0);
  for (int p : image) {
    expected[static_cast<std::size_t>(p)]++;
  }

  sim::Node node = make_node(devices);
  Scheduler sched(node);
  Matrix<int> img(W, H, "image");
  Vector<int> h(256, "hist");
  img.Bind(image.data());
  h.Bind(hist.data());

  using In = Window2D<int, 0, maps::NO_CHECKS>;
  using Out = ReductiveStatic<int, 256>;
  sched.AnalyzeCall(In(img), Out(h));
  sched.Invoke(HistogramKernel{}, In(img), Out(h));
  sched.Gather(h);
  EXPECT_EQ(hist, expected);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, HistogramDevicesTest,
                         ::testing::Values(1, 2, 4));

struct ReadHistKernel {
  template <typename A, typename B>
  void operator()(const maps::ThreadContext&, A&, B&) const {}
};

TEST(HistogramTest, ReuseWithoutGatherIsAnError) {
  sim::Node node = make_node(2);
  Scheduler sched(node);
  const std::size_t W = 64, H = 64;
  std::vector<int> image(W * H, 3);
  std::vector<int> hist(256, 0);
  Matrix<int> img(W, H);
  Vector<int> h(256);
  img.Bind(image.data());
  h.Bind(hist.data());
  using In = Window2D<int, 0, maps::NO_CHECKS>;
  sched.Invoke(HistogramKernel{}, In(img), ReductiveStatic<int, 256>(h));
  // Using the un-gathered (partial) histogram as an input must be refused.
  EXPECT_THROW(sched.Invoke(ReadHistKernel{}, Block1D<int>(h),
                            StructuredInjective<int, 2>(img)),
               std::runtime_error);
}

// --- ILP --------------------------------------------------------------------

TEST(IlpTest, IlpVariantsProduceIdenticalResults) {
  const std::size_t W = 96, H = 64;
  std::vector<int> init = random_grid(W * H, 99);

  auto run = [&](auto win_tag, auto out_tag) {
    using Win = decltype(win_tag);
    using Out = decltype(out_tag);
    std::vector<int> a = init, b(W * H, 0);
    sim::Node node = make_node(3);
    Scheduler sched(node);
    Matrix<int> A(W, H), B(W, H);
    A.Bind(a.data());
    B.Bind(b.data());
    sched.AnalyzeCall(Win(A), Out(B));
    sched.Invoke(GameOfLifeTick{}, Win(A), Out(B));
    sched.Gather(B);
    return b;
  };

  const auto plain = run(Window2D<int, 1, maps::WRAP, 1, 1>{},
                         StructuredInjective<int, 2, 1, 1>{});
  const auto ilp42 = run(Window2D<int, 1, maps::WRAP, 4, 2>{},
                         StructuredInjective<int, 2, 4, 2>{});
  const auto ilp22 = run(Window2D<int, 1, maps::WRAP, 2, 2>{},
                         StructuredInjective<int, 2, 2, 2>{});
  EXPECT_EQ(plain, ilp42);
  EXPECT_EQ(plain, ilp22);
}

// --- Unmodified routines (SAXPY, Fig 5) ---------------------------------------

bool SaxpyRoutine(RoutineArgs& args) {
  const float alpha = args.constant<float>(0);
  const std::size_t n = args.container_segments[0].m_dimensions[0];
  const float* x = args.parameters[0].as<float>();
  float* y = args.parameters[1].as<float>(); // in/out (parameters[2] aliases)
  sim::LaunchStats st;
  st.label = "saxpy";
  st.blocks = (n + 255) / 256;
  st.threads_per_block = 256;
  st.flops = 2 * n;
  st.global_bytes_read = n * sizeof(float) * 2;
  st.global_bytes_written = n * sizeof(float);
  args.node->launch(args.stream, st, [x, y, n, alpha] {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = alpha * x[i] + y[i];
    }
  });
  return true;
}

class SaxpyDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(SaxpyDevicesTest, RoutinePartitionsAndGathers) {
  const int devices = GetParam();
  const std::size_t n = 10007; // deliberately not a multiple of anything
  std::vector<float> x(n), y(n), expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i % 17);
    y[i] = static_cast<float>(i % 5);
    expected[i] = 2.5f * x[i] + y[i];
  }
  sim::Node node = make_node(devices);
  Scheduler sched(node);
  Vector<float> X(n, "x"), Y(n, "y");
  X.Bind(x.data());
  Y.Bind(y.data());

  // x is consumed element-aligned with the partition; y is read AND written
  // in place, so it appears both as an aligned input and as a Structured
  // Injective output over the same datum.
  sched.InvokeUnmodified(SaxpyRoutine, nullptr, Work{n, 1},
                         Block2D<float>(static_cast<Datum&>(X)),
                         Block2D<float>(static_cast<Datum&>(Y)),
                         StructuredInjective<float, 1>(Y),
                         Constant<float>(2.5f));
  sched.Gather(Y);
  EXPECT_EQ(y, expected);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, SaxpyDevicesTest,
                         ::testing::Values(1, 2, 4));

// --- Memory analyzer behaviour (Fig 3) ----------------------------------------

TEST(MemoryAnalyzerTest, GameOfLifeDoubleBufferingAllocations) {
  const std::size_t W = 256, H = 256;
  std::vector<int> a(W * H), b(W * H);
  sim::Node node = make_node(4);
  Scheduler sched(node);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  sched.AnalyzeCall(Win(A), Out(B));
  // After the first AnalyzeCall: A needs quarter + 2 halo rows; B a quarter.
  const auto* planA = sched.analyzer().plan(&A, 1);
  const auto* planB = sched.analyzer().plan(&B, 1);
  ASSERT_NE(planA, nullptr);
  ASSERT_NE(planB, nullptr);
  EXPECT_EQ(planA->rows(), H / 4 + 2);
  EXPECT_EQ(planB->rows(), H / 4);
  // Second call (reversed roles): B grows to include halos; A unchanged
  // (Fig 3: "its memory allocation remains unchanged").
  sched.AnalyzeCall(Win(B), Out(A));
  EXPECT_EQ(sched.analyzer().plan(&A, 1)->rows(), H / 4 + 2);
  EXPECT_EQ(sched.analyzer().plan(&B, 1)->rows(), H / 4 + 2);
}

TEST(MemoryAnalyzerTest, GrowthAfterAllocationThrows) {
  const std::size_t W = 64, H = 64;
  std::vector<int> a(W * H), b(W * H);
  sim::Node node = make_node(2);
  Scheduler sched(node);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());
  using Out = StructuredInjective<int, 2>;
  // Invoke without analyzing the reverse call first: A is allocated with no
  // halo...
  sched.Invoke(GameOfLifeTick{}, Window2D<int, 1, maps::WRAP>(A), Out(B));
  sched.WaitAll();
  // ...so the reverse task, which needs halos on B AND a halo'd A input,
  // grows A's box and must be rejected with the paper's §4.2 error.
  EXPECT_THROW(
      sched.Invoke(GameOfLifeTick{}, Window2D<int, 1, maps::WRAP>(B), Out(A)),
      std::runtime_error);
}

// --- Location monitor caching -------------------------------------------------

struct GatherVectorKernel {
  template <typename In, typename Out>
  void operator()(const maps::ThreadContext&, In& in, Out& out) const {
    MAPS_FOREACH(it, out) {
      *it = in[it.work_y()];
    }
  }
};

TEST(LocationMonitorIntegrationTest, ReplicatedInputUploadedOnlyOnce) {
  const std::size_t n = 4096;
  std::vector<float> x(n, 1.0f), y(n, 0.0f);
  sim::Node node = make_node(2);
  Scheduler sched(node);
  Vector<float> X(n, "x"), Y(n, "y");
  X.Bind(x.data());
  Y.Bind(y.data());

  sched.AnalyzeCall(Block1D<float>(X), StructuredInjective<float, 1>(Y));
  sched.Invoke(GatherVectorKernel{}, Block1D<float>(X),
               StructuredInjective<float, 1>(Y));
  sched.WaitAll();
  const auto h2d_after_first = node.stats().bytes_h2d;
  sched.Invoke(GatherVectorKernel{}, Block1D<float>(X),
               StructuredInjective<float, 1>(Y));
  sched.WaitAll();
  // X replicas are cached in the upToDate list: no re-upload (§4.4).
  EXPECT_EQ(node.stats().bytes_h2d, h2d_after_first);
}

} // namespace
