// Application-level tests: all Game of Life and histogram schemes agree with
// the CPU references on every device count, and the calibrated performance
// relationships of Fig 7 / Fig 8 / §5.3 hold in the cost model.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "apps/game_of_life.hpp"
#include "apps/histogram.hpp"
#include "sim/presets.hpp"
#include "simcub/simcub.hpp"

namespace {

using namespace maps::multi;

std::vector<int> random_cells(std::size_t n, unsigned seed, int mod = 2) {
  std::mt19937 rng(seed);
  std::vector<int> g(n);
  for (auto& v : g) {
    v = static_cast<int>(rng() % static_cast<unsigned>(mod));
  }
  return g;
}

struct SchemeDevices {
  apps::gol::Scheme scheme;
  int devices;
};

class GolSchemeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GolSchemeTest, AllSchemesMatchReference) {
  const auto scheme = static_cast<apps::gol::Scheme>(std::get<0>(GetParam()));
  const int devices = std::get<1>(GetParam());
  const std::size_t W = 128, H = 96;
  const int iterations = 5;

  std::vector<int> host_a = random_cells(W * H, 11);
  std::vector<int> host_b(W * H, 0);
  std::vector<int> ref = host_a;

  sim::Node node(sim::homogeneous_node(sim::gtx780(), devices));
  Scheduler sched(node);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(host_a.data());
  B.Bind(host_b.data());

  apps::gol::run(sched, A, B, iterations, scheme);
  for (int i = 0; i < iterations; ++i) {
    apps::gol::reference_tick(ref, W, H);
  }
  EXPECT_EQ((iterations % 2 == 0) ? host_a : host_b, ref);
}

INSTANTIATE_TEST_SUITE_P(SchemesByDevices, GolSchemeTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 4)));

class HistSchemeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HistSchemeTest, AllSchemesMatchReference) {
  const auto scheme =
      static_cast<apps::histogram::Scheme>(std::get<0>(GetParam()));
  const int devices = std::get<1>(GetParam());
  const std::size_t W = 160, H = 120;

  std::vector<int> image = random_cells(W * H, 5, 256);
  std::vector<int> hist(apps::histogram::kBins, 0);

  sim::Node node(sim::homogeneous_node(sim::gtx980(), devices));
  Scheduler sched(node);
  Matrix<int> img(W, H, "image");
  Vector<int> h(apps::histogram::kBins, "hist");
  img.Bind(image.data());
  h.Bind(hist.data());

  apps::histogram::run(sched, img, h, /*iterations=*/1, scheme);
  EXPECT_EQ(hist, apps::histogram::reference(image));
}

INSTANTIATE_TEST_SUITE_P(SchemesByDevices, HistSchemeTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 4)));

// --- Calibration shape checks (paper-scale, TimingOnly) ----------------------

double gol_time_ms(const sim::DeviceSpec& spec, int devices,
                   apps::gol::Scheme scheme, std::size_t size = 8192,
                   int iterations = 100) {
  sim::Node node(sim::homogeneous_node(spec, devices),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  Matrix<int> A(size, size, "A"), B(size, size, "B");
  std::vector<int> dummy(1); // TimingOnly: host buffers are never touched
  A.Bind(dummy.data());
  B.Bind(dummy.data());
  return apps::gol::run(sched, A, B, iterations, scheme) / iterations;
}

TEST(Fig7CalibrationTest, NaiveBeatsNonIlpMapsBy20to50Percent) {
  // §5.2: "the naive version outperforms the non-ILP version of MAPS-Multi
  // by ~20-50%, depending on the architecture."
  for (const auto& spec : sim::paper_device_models()) {
    const double naive = gol_time_ms(spec, 1, apps::gol::Scheme::Naive);
    const double maps = gol_time_ms(spec, 1, apps::gol::Scheme::Maps);
    const double ratio = maps / naive;
    EXPECT_GE(ratio, 1.15) << spec.name;
    EXPECT_LE(ratio, 1.55) << spec.name;
  }
}

TEST(Fig7CalibrationTest, IlpBeatsNaiveByAbout2point4x) {
  // §5.2: "using ILP yields a ~2.42x performance increase over the naive
  // version on all architectures."
  for (const auto& spec : sim::paper_device_models()) {
    const double naive = gol_time_ms(spec, 1, apps::gol::Scheme::Naive);
    const double ilp = gol_time_ms(spec, 1, apps::gol::Scheme::MapsIlp);
    const double speedup = naive / ilp;
    EXPECT_GE(speedup, 2.1) << spec.name;
    EXPECT_LE(speedup, 2.8) << spec.name;
  }
}

double hist_time_ms(const sim::DeviceSpec& spec, int devices,
                    apps::histogram::Scheme scheme, std::size_t size = 8192,
                    int iterations = 100) {
  sim::Node node(sim::homogeneous_node(spec, devices),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  Matrix<int> img(size, size, "image");
  Vector<int> h(apps::histogram::kBins, "hist");
  std::vector<int> dummy(1);
  img.Bind(dummy.data());
  h.Bind(dummy.data());
  return apps::histogram::run(sched, img, h, iterations, scheme) / iterations;
}

TEST(Fig8CalibrationTest, NaiveHistogramRuntimesMatchSection53) {
  // §5.3: ~6.09, ~6.41 and ~30.92 ms on a single GPU.
  const double t780 =
      hist_time_ms(sim::gtx780(), 1, apps::histogram::Scheme::Naive);
  const double tblack =
      hist_time_ms(sim::titan_black(), 1, apps::histogram::Scheme::Naive);
  const double t980 =
      hist_time_ms(sim::gtx980(), 1, apps::histogram::Scheme::Naive);
  EXPECT_NEAR(t780, 6.09, 0.5);
  EXPECT_NEAR(tblack, 6.41, 0.5);
  EXPECT_NEAR(t980, 30.92, 1.5);
}

TEST(Fig8CalibrationTest, MapsVsCubRelationshipsPerArchitecture) {
  // Fig 8: MAPS-Multi beats CUB on the GTX 780; CUB is faster on the Titan
  // Black and more so on the GTX 980 — all within the same order of
  // magnitude (unlike naive).
  const double maps780 =
      hist_time_ms(sim::gtx780(), 1, apps::histogram::Scheme::Maps);
  const double cub780 =
      hist_time_ms(sim::gtx780(), 1, apps::histogram::Scheme::Cub);
  EXPECT_LT(maps780, cub780);

  const double maps_tb =
      hist_time_ms(sim::titan_black(), 1, apps::histogram::Scheme::Maps);
  const double cub_tb =
      hist_time_ms(sim::titan_black(), 1, apps::histogram::Scheme::Cub);
  EXPECT_LT(cub_tb, maps_tb);

  const double maps980 =
      hist_time_ms(sim::gtx980(), 1, apps::histogram::Scheme::Maps);
  const double cub980 =
      hist_time_ms(sim::gtx980(), 1, apps::histogram::Scheme::Cub);
  EXPECT_LT(cub980, maps980);
  EXPECT_GT(maps_tb / cub_tb, 1.0);
  EXPECT_GT((maps980 / cub980), (maps_tb / cub_tb)); // "more so" on Maxwell
  // Same order of magnitude everywhere.
  EXPECT_LT(cub780 / maps780, 3.0);
  EXPECT_LT(maps980 / cub980, 3.0);
}

// The paper's Fig 6 scaling numbers measure long steady-state runs, so the
// one-time input distribution is amortized away. 400 iterations keep its
// share below ~2% now that uploads to the two devices of a pair serialize
// on their shared per-bus host link (they no longer overlap for free).
TEST(Fig6CalibrationTest, GolScalesToRoughly3point7xOn4Gpus) {
  for (const auto& spec : sim::paper_device_models()) {
    const double one =
        gol_time_ms(spec, 1, apps::gol::Scheme::MapsIlp, 8192, 400);
    const double four =
        gol_time_ms(spec, 4, apps::gol::Scheme::MapsIlp, 8192, 400);
    const double speedup = one / four;
    EXPECT_GE(speedup, 3.3) << spec.name;
    EXPECT_LE(speedup, 3.95) << spec.name;
  }
}

TEST(Fig6CalibrationTest, HistogramScalesNearLinearly) {
  for (const auto& spec : sim::paper_device_models()) {
    const double one =
        hist_time_ms(spec, 1, apps::histogram::Scheme::Maps, 8192, 400);
    const double four =
        hist_time_ms(spec, 4, apps::histogram::Scheme::Maps, 8192, 400);
    const double speedup = one / four;
    EXPECT_GE(speedup, 3.5) << spec.name;
    EXPECT_LE(speedup, 4.05) << spec.name;
  }
}

TEST(GolPropertyTest, GliderTranslatesAcrossDeviceBoundaries) {
  // A glider moves one cell diagonally every 4 generations. Crossing the
  // partition boundary exercises the halo exchange end to end: after
  // 4*k generations the pattern must be an exact translation.
  const std::size_t W = 64, H = 64;
  std::vector<int> grid(W * H, 0);
  auto set = [&](std::size_t y, std::size_t x) { grid[y * W + x] = 1; };
  // Standard glider (heads down-right).
  set(1, 2);
  set(2, 3);
  set(3, 1);
  set(3, 2);
  set(3, 3);
  const std::vector<int> initial = grid;

  std::vector<int> buf_b(W * H, 0);
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4));
  Scheduler sched(node);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(grid.data());
  B.Bind(buf_b.data());
  const int generations = 4 * 40; // crosses all three device boundaries
  apps::gol::run(sched, A, B, generations, apps::gol::Scheme::Maps);

  const std::size_t shift = static_cast<std::size_t>(generations / 4);
  for (std::size_t y = 0; y < H; ++y) {
    for (std::size_t x = 0; x < W; ++x) {
      const std::size_t sy = (y + shift) % H, sx = (x + shift) % W;
      ASSERT_EQ(grid[sy * W + sx], initial[y * W + x]) << y << "," << x;
    }
  }
}

} // namespace
