// Shape-regression tests for the remaining evaluation figures: the
// qualitative relationships the paper reports must hold in the simulated
// measurements (the per-figure calibration tests live in apps_test.cpp).
#include <gtest/gtest.h>

#include <vector>

#include "multi/maps_multi.hpp"
#include "nmf/nmf.hpp"
#include "nn/trainer.hpp"
#include "sim/presets.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

// --- Fig 9 / Table 4 ------------------------------------------------------------

double maps_gemm_chain_ms(const sim::DeviceSpec& spec, int gpus, int chain) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<float> dummy(1);
  Matrix<float> b(8192, 8192, "B"), c1(8192, 8192, "C1"), c2(8192, 8192, "C2");
  b.Bind(dummy.data());
  c1.Bind(dummy.data());
  c2.Bind(dummy.data());
  simblas::Gemm(sched, c1, b, c2);
  sched.WaitAll();
  const double t0 = node.now_ms();
  for (int i = 0; i < chain / 2; ++i) {
    simblas::Gemm(sched, c2, b, c1);
    simblas::Gemm(sched, c1, b, c2);
  }
  sched.WaitAll();
  return (node.now_ms() - t0) / chain;
}

double xt_gemm_chain_ms(const sim::DeviceSpec& spec, int gpus, int chain) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  std::vector<int> devices;
  for (int d = 0; d < gpus; ++d) {
    devices.push_back(d);
  }
  simblas::XtHandle xt(node, devices);
  std::vector<float> h(1);
  xt.sgemm(8192, 8192, 8192, 1.0f, h.data(), h.data(), 0.0f, h.data());
  const double t0 = node.now_ms();
  for (int i = 0; i < chain; ++i) {
    xt.sgemm(8192, 8192, 8192, 1.0f, h.data(), h.data(), 0.0f, h.data());
  }
  return (node.now_ms() - t0) / chain;
}

TEST(Table4ShapeTest, SingleGpuGemmMatchesPaperAndXtIsSeveralTimesSlower) {
  struct Case {
    sim::DeviceSpec spec;
    double cublas_ms;
  } cases[] = {{sim::gtx780(), 365.21},
               {sim::titan_black(), 338.65},
               {sim::gtx980(), 245.31}};
  for (const auto& c : cases) {
    const double maps = maps_gemm_chain_ms(c.spec, 1, 20);
    EXPECT_NEAR(maps, c.cublas_ms, 0.02 * c.cublas_ms) << c.spec.name;
    const double xt = xt_gemm_chain_ms(c.spec, 1, 4);
    EXPECT_GT(xt, 3.0 * maps) << c.spec.name; // paper: 3.8-5.4x
    EXPECT_LT(xt, 7.0 * maps) << c.spec.name;
  }
}

TEST(Fig9ShapeTest, MapsScalingSurpassesXtOnAllPlatforms) {
  for (const auto& spec : sim::paper_device_models()) {
    const double maps_speedup = maps_gemm_chain_ms(spec, 1, 10) /
                                maps_gemm_chain_ms(spec, 4, 10);
    const double xt_speedup =
        xt_gemm_chain_ms(spec, 1, 4) / xt_gemm_chain_ms(spec, 4, 4);
    EXPECT_GT(maps_speedup, xt_speedup) << spec.name;
    EXPECT_GT(maps_speedup, 3.8) << spec.name;
  }
}

// --- Fig 11 -----------------------------------------------------------------------

double train_ips(nn::Strategy strategy, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  nn::LeNetConfig cfg;
  nn::SyntheticDigits data(2049, cfg.image, cfg.classes, 5);
  nn::LeNetParams params(cfg);
  nn::Trainer trainer(sched, params, data, 2048, strategy);
  trainer.train(1);
  return trainer.train(6).images_per_second;
}

TEST(Fig11ShapeTest, StrategyOrderingMatchesPaper) {
  const double dp1 = train_ips(nn::Strategy::DataParallel, 1);
  const double dp4 = train_ips(nn::Strategy::DataParallel, 4);
  const double hy1 = train_ips(nn::Strategy::Hybrid, 1);
  const double hy4 = train_ips(nn::Strategy::Hybrid, 4);
  const double to1 = train_ips(nn::Strategy::TorchLike, 1);
  const double to4 = train_ips(nn::Strategy::TorchLike, 4);

  // Single-GPU throughput is similar across frameworks (same routines).
  EXPECT_NEAR(to1 / dp1, 1.0, 0.25);
  EXPECT_NEAR(hy1 / dp1, 1.0, 0.25);
  // Paper's 4-GPU ordering: MAPS data-parallel > MAPS hybrid > Torch.
  const double dp_s = dp4 / dp1, hy_s = hy4 / hy1, to_s = to4 / to1;
  EXPECT_GT(dp_s, hy_s);
  EXPECT_GT(hy_s, to_s);
  EXPECT_GT(dp_s, 2.8); // paper ~3.12
  EXPECT_GT(hy_s, 2.2); // paper ~2.79
  EXPECT_LT(to_s, 2.6); // paper ~2.07-2.3
}

// --- Fig 13 -----------------------------------------------------------------------

TEST(Fig13ShapeTest, MapsNmfBeatsBaselineEverywhere) {
  const nmf::Shape shape{}; // the paper's 16Kx4K, k=128
  std::vector<float> v(1), w, h;
  for (const auto& spec : sim::paper_device_models()) {
    double maps[2], base[2];
    int idx = 0;
    for (int g : {1, 4}) {
      sim::Node node(sim::homogeneous_node(spec, g),
                     sim::ExecMode::TimingOnly);
      Scheduler sched(node);
      // Enough iterations that the one-time input distribution (which MAPS
      // performs inside the measured region, the baseline before it)
      // amortizes and the steady-state per-iteration rates dominate, as in
      // the paper's long NMF runs.
      maps[idx] = nmf::run_maps(sched, v, w, h, shape, 40).sim_ms;
      sim::Node node2(sim::homogeneous_node(spec, g),
                      sim::ExecMode::TimingOnly);
      base[idx] = nmf::run_mgpu_baseline(node2, v, w, h, shape, 40, g).sim_ms;
      ++idx;
    }
    // Higher throughput at every device count...
    EXPECT_LT(maps[0], base[0]) << spec.name;
    EXPECT_LT(maps[1], base[1]) << spec.name;
    // ...and better scalability (§6.2).
    EXPECT_GT(maps[0] / maps[1], base[0] / base[1]) << spec.name;
    EXPECT_GT(maps[0] / maps[1], 2.8) << spec.name; // paper ~3.17
  }
}

} // namespace
