// simblas: functional correctness of the BLAS stand-in, multi-GPU GEMM via
// unmodified routines, chained-GEMM residency, and the XT baseline.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "simblas/simblas.hpp"
#include "sim/presets.hpp"

namespace {

using namespace maps::multi;

std::vector<float> random_matrix(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> m(n);
  for (auto& v : m) {
    v = dist(rng);
  }
  return m;
}

std::vector<float> gemm_reference(const std::vector<float>& a,
                                  const std::vector<float>& b, std::size_t m,
                                  std::size_t n, std::size_t k) {
  std::vector<float> c(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += a[i * k + p] * b[p * n + j];
      }
    }
  }
  return c;
}

void expect_near(const std::vector<float>& a, const std::vector<float>& b,
                 float tol = 1e-4f) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at " << i;
  }
}

TEST(SimblasTest, SingleDeviceSgemmMatchesReference) {
  const std::size_t m = 33, n = 47, k = 29;
  auto a = random_matrix(m * k, 1);
  auto b = random_matrix(k * n, 2);
  std::vector<float> c(m * n, 0.0f);
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 1));
  sim::Buffer* da = node.malloc_device(0, a.size() * 4);
  sim::Buffer* db = node.malloc_device(0, b.size() * 4);
  sim::Buffer* dc = node.malloc_device(0, c.size() * 4);
  const auto s = node.default_stream(0);
  node.memcpy_h2d(s, da, 0, a.data(), a.size() * 4);
  node.memcpy_h2d(s, db, 0, b.data(), b.size() * 4);
  simblas::sgemm(node, 0, s, m, n, k, 1.0f, da->as<float>(), db->as<float>(),
                 0.0f, dc->as<float>());
  node.memcpy_d2h(s, c.data(), dc, 0, c.size() * 4);
  node.synchronize();
  expect_near(c, gemm_reference(a, b, m, n, k));
}

class GemmDevicesTest : public ::testing::TestWithParam<int> {};

TEST_P(GemmDevicesTest, MultiGpuGemmViaUnmodifiedRoutine) {
  const int devices = GetParam();
  const std::size_t m = 96, n = 64, k = 48;
  auto a = random_matrix(m * k, 3);
  auto b = random_matrix(k * n, 4);
  std::vector<float> c(m * n, -1.0f);

  sim::Node node(sim::homogeneous_node(sim::gtx980(), devices));
  Scheduler sched(node);
  Matrix<float> A(k, m, "A"), B(n, k, "B"), C(n, m, "C");
  A.Bind(a.data());
  B.Bind(b.data());
  C.Bind(c.data());
  simblas::Gemm(sched, A, B, C);
  sched.Gather(C);
  expect_near(c, gemm_reference(a, b, m, n, k));
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, GemmDevicesTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(SimblasTest, ChainedGemmKeepsDataResident) {
  // §5.4: chained multiplications over MAPS-Multi exchange nothing after the
  // first upload — unlike the XT baseline below.
  const std::size_t n = 64;
  auto a = random_matrix(n * n, 5);
  auto b = random_matrix(n * n, 6);
  std::vector<float> c1(n * n), c2(n * n);

  sim::Node node(sim::homogeneous_node(sim::titan_black(), 4));
  Scheduler sched(node);
  Matrix<float> A(n, n, "A"), B(n, n, "B"), C1(n, n, "C1"), C2(n, n, "C2");
  A.Bind(a.data());
  B.Bind(b.data());
  C1.Bind(c1.data());
  C2.Bind(c2.data());

  simblas::Gemm(sched, A, B, C1);
  sched.WaitAll();
  node.reset_stats();
  // Chain: C2 = C1 x B, C1 = C2 x B, ... — all operands already resident.
  simblas::Gemm(sched, C1, B, C2);
  simblas::Gemm(sched, C2, B, C1);
  simblas::Gemm(sched, C1, B, C2);
  sched.WaitAll();
  EXPECT_EQ(node.stats().bytes_h2d, 0u);
  EXPECT_EQ(node.stats().bytes_p2p, 0u);
  EXPECT_EQ(node.stats().bytes_d2h, 0u);
  // And the chain is numerically right.
  sched.Gather(C2);
  auto ref = gemm_reference(a, b, n, n, n);     // C1
  ref = gemm_reference(ref, b, n, n, n);        // C2
  ref = gemm_reference(ref, b, n, n, n);        // C1
  ref = gemm_reference(ref, b, n, n, n);        // C2
  expect_near(c2, ref, 2e-3f);
}

TEST(SimblasTest, XtBaselineStagesEveryCall) {
  const std::size_t n = 32;
  auto a = random_matrix(n * n, 7);
  auto b = random_matrix(n * n, 8);
  std::vector<float> c(n * n, 0.0f);
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2));
  simblas::XtHandle xt(node, {0, 1});
  xt.sgemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  xt.synchronize();
  expect_near(c, gemm_reference(a, b, n, n, n));
  const auto h2d_one = node.stats().bytes_h2d;
  EXPECT_GT(h2d_one, 0u);
  xt.sgemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  xt.synchronize();
  // Second call re-uploads everything: the host-based-API flaw of §5.4.
  EXPECT_EQ(node.stats().bytes_h2d, 2 * h2d_one);
}

TEST(SimblasTest, ElementwiseKernels) {
  const std::size_t n = 1000;
  std::vector<float> a(n), b(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i + 1);
    b[i] = 2.0f;
  }
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 1));
  sim::Buffer* da = node.malloc_device(0, n * 4);
  sim::Buffer* db = node.malloc_device(0, n * 4);
  sim::Buffer* dout = node.malloc_device(0, n * 4);
  const auto s = node.default_stream(0);
  node.memcpy_h2d(s, da, 0, a.data(), n * 4);
  node.memcpy_h2d(s, db, 0, b.data(), n * 4);
  simblas::shad(node, 0, s, n, da->as<float>(), db->as<float>(),
                dout->as<float>());
  node.memcpy_d2h(s, out.data(), dout, 0, n * 4);
  node.synchronize();
  EXPECT_FLOAT_EQ(out[9], 20.0f);
  simblas::sdiv(node, 0, s, n, da->as<float>(), db->as<float>(),
                dout->as<float>());
  node.memcpy_d2h(s, out.data(), dout, 0, n * 4);
  node.synchronize();
  EXPECT_FLOAT_EQ(out[9], 5.0f);
  std::vector<float> colsum(10, 0.0f);
  sim::Buffer* dcs = node.malloc_device(0, 10 * 4);
  node.memset_device(s, dcs, 0, 0, 10 * 4);
  simblas::scolsum(node, 0, s, 100, 10, da->as<float>(), dcs->as<float>());
  node.memcpy_d2h(s, colsum.data(), dcs, 0, 10 * 4);
  node.synchronize();
  // Column j of the 100x10 view of a: sum_{i} (10 i + j + 1).
  EXPECT_FLOAT_EQ(colsum[0], 100.0f * 99.0f / 2.0f * 10.0f + 100.0f);
}

TEST(SimblasTest, GemmDimensionMismatchThrows) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 1));
  Scheduler sched(node);
  std::vector<float> buf(64 * 64);
  Matrix<float> A(64, 64), B(32, 64), C(64, 64);
  A.Bind(buf.data());
  B.Bind(buf.data());
  C.Bind(buf.data());
  EXPECT_THROW(simblas::Gemm(sched, A, B, C), std::invalid_argument);
}

} // namespace
