// Cost model: roofline behaviour, calibration against the paper's published
// single-GPU numbers, and transfer-time arithmetic.
#include <gtest/gtest.h>

#include "sim/cost_model.hpp"
#include "sim/presets.hpp"

namespace {

// 2 * 8192^3 flop — one of the paper's chained SGEMM multiplications.
constexpr std::uint64_t kGemm8kFlops = 2ull * 8192 * 8192 * 8192;

sim::LaunchStats gemm8k(double efficiency) {
  sim::LaunchStats st;
  st.blocks = 65536;
  st.threads_per_block = 256;
  st.flops = kGemm8kFlops;
  st.flop_efficiency = efficiency;
  return st;
}

TEST(CostModelTest, Gemm8kMatchesTable4OnAllDevices) {
  // Table 4: CUBLAS 365.21 / 338.65 / 245.31 ms.
  struct Case {
    sim::DeviceSpec spec;
    double expect_ms;
  } cases[] = {
      {sim::gtx780(), 365.21},
      {sim::titan_black(), 338.65},
      {sim::gtx980(), 245.31},
  };
  for (const auto& c : cases) {
    const double ms =
        1e3 * sim::kernel_seconds(c.spec, gemm8k(c.spec.gemm_efficiency));
    EXPECT_NEAR(ms, c.expect_ms, 0.02 * c.expect_ms) << c.spec.name;
  }
}

TEST(CostModelTest, NaiveHistogramAtomicTimesMatchSection53) {
  // §5.3: naive global-atomic histogram on an 8K^2 image:
  // 6.09 / 6.41 / 30.92 ms.
  struct Case {
    sim::DeviceSpec spec;
    double expect_ms;
  } cases[] = {
      {sim::gtx780(), 6.09},
      {sim::titan_black(), 6.41},
      {sim::gtx980(), 30.92},
  };
  for (const auto& c : cases) {
    sim::LaunchStats st;
    st.blocks = 262144;
    st.global_atomics = 8192ull * 8192;
    st.global_bytes_read = 8192ull * 8192 * 4;
    const double ms = 1e3 * sim::kernel_seconds(c.spec, st);
    EXPECT_NEAR(ms, c.expect_ms, 0.03 * c.expect_ms) << c.spec.name;
  }
}

TEST(CostModelTest, MaxwellGlobalAtomicsPenalty) {
  // The §5.3 architectural observation: naive global atomics are several
  // times slower on Maxwell than on Kepler.
  sim::LaunchStats st;
  st.blocks = 4096;
  st.global_atomics = 10'000'000;
  const double kepler = sim::kernel_seconds(sim::gtx780(), st);
  const double maxwell = sim::kernel_seconds(sim::gtx980(), st);
  EXPECT_GT(maxwell, 3.0 * kepler);
}

TEST(CostModelTest, RooflineTakesMaximumBottleneck) {
  sim::DeviceSpec spec = sim::gtx780();
  sim::LaunchStats st;
  st.blocks = 1024;
  st.flops = 1'000'000'000;
  st.global_bytes_read = 4'000'000'000ull; // clearly memory bound
  const double t = sim::kernel_seconds(spec, st);
  const double mem_s = 4e9 / (spec.mem_bandwidth_gbps * 1e9);
  EXPECT_NEAR(t, spec.kernel_launch_us * 1e-6 + mem_s, 1e-5);
}

TEST(CostModelTest, LaunchOverheadFloorsEmptyKernels) {
  sim::DeviceSpec spec = sim::gtx780();
  sim::LaunchStats st;
  st.blocks = 1;
  EXPECT_GE(sim::kernel_seconds(spec, st), spec.kernel_launch_us * 1e-6);
}

TEST(CostModelTest, WaveQuantizationPenalizesTinyGrids) {
  sim::DeviceSpec spec = sim::gtx780(); // 12 SMs
  sim::LaunchStats st;
  st.flops = 100'000'000'000ull;
  st.blocks = 12;
  const double full = sim::kernel_seconds(spec, st);
  st.blocks = 3; // quarter of the SMs busy
  const double quarter = sim::kernel_seconds(spec, st);
  EXPECT_NEAR(quarter, 4.0 * full, 0.1 * quarter);
}

TEST(CostModelTest, CopySecondsScalesWithBytesPlusLatency) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const auto d0 = sim::Endpoint::dev(0);
  const auto d1 = sim::Endpoint::dev(1);
  const double small = sim::copy_seconds(topo, d0, d1, 4096, false);
  const double big = sim::copy_seconds(topo, d0, d1, 1 << 26, false);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, 10.0 * small);
  // Latency dominates tiny transfers.
  EXPECT_NEAR(small, topo.latency_us(d0, d1) * 1e-6, 1e-6);
}

TEST(CostModelTest, HostStagedPaysBothHopsAndSoftware) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(2);
  const auto d0 = sim::Endpoint::dev(0);
  const auto d1 = sim::Endpoint::dev(1);
  const std::size_t bytes = 32 << 20;
  const double direct = sim::copy_seconds(topo, d0, d1, bytes, false);
  const double staged = sim::copy_seconds(topo, d0, d1, bytes, true);
  EXPECT_GT(staged, 1.5 * direct);
}

TEST(CostModelTest, CrossBusPeerSlowerThanSameBus) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const std::size_t bytes = 64 << 20;
  const double same = sim::copy_seconds(topo, sim::Endpoint::dev(0),
                                        sim::Endpoint::dev(1), bytes, false);
  const double cross = sim::copy_seconds(topo, sim::Endpoint::dev(0),
                                         sim::Endpoint::dev(2), bytes, false);
  EXPECT_GT(cross, same);
}

} // namespace
