// Simulator semantics: stream ordering, events, copy engines, functional
// execution, deadlock detection and the simulated clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/node.hpp"
#include "sim/presets.hpp"

namespace {

sim::Node make_node(int devices, sim::ExecMode mode = sim::ExecMode::Functional) {
  return sim::Node(sim::homogeneous_node(sim::gtx780(), devices), mode);
}

TEST(NodeTest, ConstructionAndSpecs) {
  sim::Node node = make_node(4);
  EXPECT_EQ(node.device_count(), 4);
  EXPECT_EQ(node.spec(0).name, "GTX 780");
  EXPECT_EQ(node.spec(3).arch, sim::Arch::Kepler);
  EXPECT_TRUE(node.functional());
}

TEST(NodeTest, RejectsEmptyDeviceList) {
  EXPECT_THROW(sim::Node(std::vector<sim::DeviceSpec>{}), std::invalid_argument);
}

TEST(NodeTest, HostRoundTripThroughDevice) {
  sim::Node node = make_node(1);
  std::vector<int> src(1024), dst(1024, 0);
  for (int i = 0; i < 1024; ++i) {
    src[static_cast<std::size_t>(i)] = i * 3;
  }
  sim::Buffer* buf = node.malloc_device(0, 1024 * sizeof(int));
  const sim::StreamId s = node.default_stream(0);
  node.memcpy_h2d(s, buf, 0, src.data(), 1024 * sizeof(int));
  node.memcpy_d2h(s, dst.data(), buf, 0, 1024 * sizeof(int));
  node.synchronize();
  EXPECT_EQ(src, dst);
}

TEST(NodeTest, KernelBodyRunsInFunctionalMode) {
  sim::Node node = make_node(1);
  sim::Buffer* buf = node.malloc_device(0, 16 * sizeof(float));
  bool ran = false;
  sim::LaunchStats st;
  st.blocks = 4;
  node.launch(node.default_stream(0), st, [&] {
    ran = true;
    buf->as<float>()[0] = 42.0f;
  });
  node.synchronize();
  EXPECT_TRUE(ran);
  EXPECT_EQ(buf->as<float>()[0], 42.0f);
  EXPECT_EQ(node.stats().kernels_launched, 1u);
}

TEST(NodeTest, KernelBodySkippedInTimingOnlyMode) {
  sim::Node node = make_node(1, sim::ExecMode::TimingOnly);
  bool ran = false;
  sim::LaunchStats st;
  st.blocks = 128;
  st.flops = 1'000'000'000;
  node.launch(node.default_stream(0), st, [&] { ran = true; });
  node.synchronize();
  EXPECT_FALSE(ran);
  EXPECT_EQ(node.stats().kernels_launched, 1u);
  EXPECT_GT(node.now_ms(), 0.0);
}

TEST(NodeTest, StreamCommandsExecuteInOrder) {
  sim::Node node = make_node(1);
  std::vector<int> order;
  const sim::StreamId s = node.default_stream(0);
  for (int i = 0; i < 5; ++i) {
    node.host_func(s, [&order, i] { order.push_back(i); });
  }
  node.synchronize();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(NodeTest, EventOrdersAcrossStreams) {
  sim::Node node = make_node(2);
  const sim::StreamId s0 = node.default_stream(0);
  const sim::StreamId s1 = node.default_stream(1);
  std::vector<int> order;

  // Stream 0 does slow work, then records; stream 1 waits before running.
  sim::LaunchStats heavy;
  heavy.blocks = 1024;
  heavy.flops = 1'000'000'000'000ull;
  node.launch(s0, heavy, [&] { order.push_back(0); });
  const sim::EventId ev = node.create_event();
  node.record_event(ev, s0);
  node.wait_event(s1, ev);
  node.host_func(s1, [&] { order.push_back(1); });
  node.synchronize();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(NodeTest, WaitOnNeverRecordedEventIsNoOp) {
  sim::Node node = make_node(1);
  const sim::EventId ev = node.create_event();
  node.wait_event(node.default_stream(0), ev); // CUDA semantics: no-op
  bool ran = false;
  node.host_func(node.default_stream(0), [&] { ran = true; });
  node.synchronize();
  EXPECT_TRUE(ran);
}

TEST(NodeTest, FutureGenerationWaitDeadlocksWithoutRecord) {
  sim::Node node = make_node(1);
  const sim::EventId ev = node.create_event();
  node.wait_event_generation(node.default_stream(0), ev, 1);
  node.host_func(node.default_stream(0), [] {});
  EXPECT_THROW(node.synchronize(), std::runtime_error);
}

TEST(NodeTest, FutureGenerationWaitResolvesWhenRecordArrivesLater) {
  sim::Node node = make_node(2);
  const sim::EventId ev = node.create_event();
  std::vector<int> order;
  // Wait enqueued before the matching record exists (the invoker-thread
  // enqueue-race the strict API is for).
  node.wait_event_generation(node.default_stream(1), ev, 1);
  node.host_func(node.default_stream(1), [&] { order.push_back(1); });
  sim::LaunchStats heavy;
  heavy.blocks = 256;
  heavy.flops = 500'000'000'000ull;
  node.launch(node.default_stream(0), heavy, [&] { order.push_back(0); });
  node.record_event(ev, node.default_stream(0));
  node.synchronize();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(NodeTest, PeerCopyMovesDataBetweenDevices) {
  sim::Node node = make_node(2);
  sim::Buffer* a = node.malloc_device(0, 256);
  sim::Buffer* b = node.malloc_device(1, 256);
  std::vector<std::byte> host(256, std::byte{7});
  node.memcpy_h2d(node.default_stream(0), a, 0, host.data(), 256);
  const sim::EventId ev = node.create_event();
  node.record_event(ev, node.default_stream(0));
  node.wait_event(node.default_stream(1), ev);
  node.memcpy_p2p(node.default_stream(1), b, 0, a, 0, 256);
  node.synchronize();
  EXPECT_EQ(b->data()[100], std::byte{7});
  EXPECT_EQ(node.stats().bytes_p2p, 256u);
  EXPECT_EQ(node.stats().bytes_h2d, 256u);
}

TEST(NodeTest, SameDirectionCopiesSerializeOnTheSharedHostLink) {
  sim::Node node = make_node(1, sim::ExecMode::TimingOnly);
  sim::Buffer* buf = node.malloc_device(0, 400 << 20);
  const std::size_t chunk = 100 << 20; // ~8.3 ms at 12 GB/s
  std::vector<std::byte> dummy(1);
  // Four H2D copies on four streams: despite two copy engines, all four
  // cross the one PCIe uplink of this device's bus => ~4x serialization.
  std::vector<sim::StreamId> streams;
  for (int i = 0; i < 4; ++i) {
    streams.push_back(node.create_stream(0));
  }
  for (int i = 0; i < 4; ++i) {
    node.memcpy_h2d(streams[static_cast<std::size_t>(i)], buf,
                    static_cast<std::size_t>(i) * chunk, dummy.data(), chunk);
  }
  node.synchronize();
  const double total_ms = node.now_ms();
  const double one_ms = 1e3 * static_cast<double>(chunk) / (12.0 * 1e9);
  EXPECT_GT(total_ms, 3.8 * one_ms);
  EXPECT_LT(total_ms, 4.4 * one_ms);
  EXPECT_NEAR(node.stats().host_uplink_busy_seconds, 4e-3 * one_ms, 1e-4);
}

TEST(NodeTest, OppositeDirectionCopiesOverlapOnTheDuplexHostLink) {
  sim::Node node = make_node(1, sim::ExecMode::TimingOnly);
  sim::Buffer* buf = node.malloc_device(0, 400 << 20);
  const std::size_t chunk = 100 << 20;
  std::vector<std::byte> up(1), down(1);
  // One H2D and one D2H: uplink and downlink are independent directions of
  // the bus's host connection and the device has two copy engines, so the
  // transfers overlap almost completely.
  node.memcpy_h2d(node.create_stream(0), buf, 0, up.data(), chunk);
  node.memcpy_d2h(node.create_stream(0), down.data(), buf, chunk, chunk);
  node.synchronize();
  const double total_ms = node.now_ms();
  const double one_ms = 1e3 * static_cast<double>(chunk) / (12.0 * 1e9);
  EXPECT_LT(total_ms, 1.2 * one_ms);
  EXPECT_GT(node.stats().host_downlink_busy_seconds, 0.0);
}

TEST(NodeTest, KernelAndCopyOverlapOnSeparateEngines) {
  sim::Node node = make_node(1, sim::ExecMode::TimingOnly);
  sim::Buffer* buf = node.malloc_device(0, 120 << 20);
  std::vector<std::byte> dummy(1);
  const sim::StreamId s0 = node.default_stream(0);
  const sim::StreamId s1 = node.create_stream(0);
  sim::LaunchStats heavy;
  heavy.blocks = 1024;
  heavy.flops = 18'000'000'000ull; // ~9.6 ms on a GTX 780 (generic eff)
  node.launch(s0, heavy, nullptr);
  node.memcpy_h2d(s1, buf, 0, dummy.data(), 120 << 20); // ~10 ms
  node.synchronize();
  // Overlapped: total well below the 19+ ms serial sum.
  EXPECT_LT(node.now_ms(), 14.0);
  EXPECT_GT(node.now_ms(), 8.0);
}

TEST(NodeTest, SimulatedTimeIndependentOfDrainPoints) {
  auto run = [](bool sync_midway) {
    sim::Node node = make_node(2, sim::ExecMode::TimingOnly);
    sim::LaunchStats st;
    st.blocks = 512;
    st.flops = 1'000'000'000'000ull;
    node.launch(node.default_stream(0), st, nullptr);
    if (sync_midway) {
      node.synchronize();
    }
    node.launch(node.default_stream(1), st, nullptr);
    node.synchronize();
    return node.now_ms();
  };
  // Draining early must not change the simulated completion time of work
  // that was already enqueued... but a mid-way sync gates the *second*
  // launch's issue time, which is the documented host-clock semantics.
  EXPECT_GT(run(true), run(false));
}

TEST(NodeTest, MemsetZeroesBuffer) {
  sim::Node node = make_node(1);
  sim::Buffer* buf = node.malloc_device(0, 64);
  std::vector<std::byte> host(64, std::byte{9});
  node.memcpy_h2d(node.default_stream(0), buf, 0, host.data(), 64);
  node.memset_device(node.default_stream(0), buf, 16, 0, 32);
  node.synchronize();
  EXPECT_EQ(buf->data()[15], std::byte{9});
  EXPECT_EQ(buf->data()[16], std::byte{0});
  EXPECT_EQ(buf->data()[47], std::byte{0});
  EXPECT_EQ(buf->data()[48], std::byte{9});
}

TEST(NodeTest, Strided2DCopies) {
  sim::Node node = make_node(1);
  // Host matrix 4x8 bytes, copy middle 2x4 region into a 2x4 device buffer.
  std::vector<std::byte> host(32);
  for (int i = 0; i < 32; ++i) {
    host[static_cast<std::size_t>(i)] = std::byte(i);
  }
  sim::Buffer* buf = node.malloc_device(0, 8);
  node.memcpy_2d_h2d(node.default_stream(0), buf, 0, /*dst_pitch=*/4,
                     host.data() + 8 + 2, /*src_pitch=*/8, /*row_bytes=*/4,
                     /*height=*/2);
  node.synchronize();
  EXPECT_EQ(buf->data()[0], std::byte(10));
  EXPECT_EQ(buf->data()[3], std::byte(13));
  EXPECT_EQ(buf->data()[4], std::byte(18));
  EXPECT_EQ(buf->data()[7], std::byte(21));
}

TEST(NodeTest, HostStagedCopyIsSlowerThanDirectPeer) {
  sim::Node direct = make_node(2, sim::ExecMode::TimingOnly);
  sim::Node staged = make_node(2, sim::ExecMode::TimingOnly);
  const std::size_t bytes = 64 << 20;
  {
    sim::Buffer* a = direct.malloc_device(0, bytes);
    sim::Buffer* b = direct.malloc_device(1, bytes);
    direct.memcpy_p2p(direct.default_stream(1), b, 0, a, 0, bytes);
    direct.synchronize();
  }
  {
    sim::Buffer* a = staged.malloc_device(0, bytes);
    sim::Buffer* b = staged.malloc_device(1, bytes);
    staged.memcpy_p2p_host_staged(staged.default_stream(1), b, 0, a, 0, bytes);
    staged.synchronize();
  }
  EXPECT_GT(staged.now_ms(), 1.5 * direct.now_ms());
  EXPECT_EQ(staged.stats().bytes_host_staged, bytes);
}

TEST(NodeTest, StatsBytesBetweenMatrix) {
  sim::Node node = make_node(2);
  sim::Buffer* a = node.malloc_device(0, 128);
  sim::Buffer* b = node.malloc_device(1, 128);
  std::vector<std::byte> host(128);
  node.memcpy_h2d(node.default_stream(0), a, 0, host.data(), 128);
  node.memcpy_p2p(node.default_stream(1), b, 0, a, 0, 128);
  node.memcpy_d2h(node.default_stream(1), host.data(), b, 0, 64);
  node.synchronize();
  const auto& m = node.stats().bytes_between;
  EXPECT_EQ(m[0][1], 128u); // host -> dev0
  EXPECT_EQ(m[1][2], 128u); // dev0 -> dev1
  EXPECT_EQ(m[2][0], 64u);  // dev1 -> host
}

TEST(NodeTest, AdvanceHostGatesSubsequentCommands) {
  sim::Node node = make_node(1, sim::ExecMode::TimingOnly);
  node.advance_host_us(5000);
  sim::LaunchStats st;
  st.blocks = 16;
  node.launch(node.default_stream(0), st, nullptr);
  node.synchronize();
  EXPECT_GE(node.now_ms(), 5.0);
}

TEST(NodeTest, ResetStatsClearsCounters) {
  sim::Node node = make_node(1);
  sim::LaunchStats st;
  node.launch(node.default_stream(0), st, [] {});
  node.synchronize();
  EXPECT_EQ(node.stats().kernels_launched, 1u);
  node.reset_stats();
  EXPECT_EQ(node.stats().kernels_launched, 0u);
  EXPECT_EQ(node.stats().bytes_between.size(), 2u);
}

TEST(NodeTest, EventGenerationsResolveIndependently) {
  sim::Node node = make_node(2);
  const sim::EventId ev = node.create_event();
  std::vector<int> order;
  sim::LaunchStats slow;
  slow.blocks = 512;
  slow.flops = 400'000'000'000ull;
  // Two record generations on stream 0; stream 1 waits for each in turn.
  node.launch(node.default_stream(0), slow, [&] { order.push_back(1); });
  node.record_event(ev, node.default_stream(0));
  node.wait_event(node.default_stream(1), ev); // waits generation 1
  node.host_func(node.default_stream(1), [&] { order.push_back(2); });
  node.launch(node.default_stream(0), slow, [&] { order.push_back(3); });
  node.record_event(ev, node.default_stream(0));
  node.wait_event_generation(node.default_stream(1), ev, 2);
  node.host_func(node.default_stream(1), [&] { order.push_back(4); });
  node.synchronize();
  // Dependency order (not total order): each wait resolves against its own
  // generation.
  auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  ASSERT_EQ(order.size(), 4u);
  EXPECT_LT(pos(1), pos(2)); // "2" waited for generation 1
  EXPECT_LT(pos(3), pos(4)); // "4" waited for generation 2
  EXPECT_LT(pos(2), pos(4));
}

TEST(NodeTest, DeadlockDiagnosticNamesBlockedStreams) {
  sim::Node node = make_node(1);
  const sim::EventId ev = node.create_event();
  node.wait_event_generation(node.default_stream(0), ev, 1);
  try {
    node.synchronize();
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("stream"), std::string::npos);
  }
}

} // namespace
