// Topology: bus layout, peer routing and transfer arithmetic (§5: two PCIe-3
// buses, each connecting a pair of GPUs).
#include <gtest/gtest.h>

#include "sim/topology.hpp"

namespace {

TEST(TopologyTest, PairsShareBuses) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_EQ(topo.bus_of(0), 0);
  EXPECT_EQ(topo.bus_of(1), 0);
  EXPECT_EQ(topo.bus_of(2), 1);
  EXPECT_EQ(topo.bus_of(3), 1);
  EXPECT_THROW(topo.bus_of(4), std::out_of_range);
}

TEST(TopologyTest, PeerEnabledBetweenAllDevices) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_TRUE(topo.peer_enabled(0, 3));
  EXPECT_FALSE(topo.peer_enabled(0, -1));
}

TEST(TopologyTest, BandwidthOrdering) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const double same_bus = topo.bandwidth_gbps(sim::Endpoint::dev(0),
                                              sim::Endpoint::dev(1));
  const double cross_bus = topo.bandwidth_gbps(sim::Endpoint::dev(1),
                                               sim::Endpoint::dev(2));
  const double intra = topo.bandwidth_gbps(sim::Endpoint::dev(2),
                                           sim::Endpoint::dev(2));
  EXPECT_GT(same_bus, cross_bus);
  EXPECT_GT(intra, same_bus);
}

TEST(TopologyTest, CrossBusLatencyHigher) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_GT(topo.latency_us(sim::Endpoint::dev(0), sim::Endpoint::dev(2)),
            topo.latency_us(sim::Endpoint::dev(0), sim::Endpoint::dev(1)));
}

TEST(TopologyTest, TransferSecondsFormula) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(2);
  const auto host = sim::Endpoint::host();
  const auto dev = sim::Endpoint::dev(0);
  const std::size_t bytes = 12ull << 30; // 12 GiB at 12 GB/s ~ 1.07 s
  const double t = topo.transfer_seconds(host, dev, bytes);
  EXPECT_NEAR(t, static_cast<double>(bytes) / 12e9 + 9e-6, 1e-3);
}

TEST(TopologyTest, RequiresAtLeastOneDevice) {
  EXPECT_THROW(sim::Topology(0, 1, 1, 1, 1, 1), std::invalid_argument);
}

TEST(TopologyTest, LinkClassFollowsEndpointPlacement) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const auto host = sim::Endpoint::host();
  using LC = sim::LinkClass;
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(2), sim::Endpoint::dev(2)),
            LC::IntraDevice);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(1)),
            LC::PeerSameBus);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(1), sim::Endpoint::dev(2)),
            LC::PeerCrossBus);
  EXPECT_EQ(topo.link_class(host, sim::Endpoint::dev(3)), LC::HostToDevice);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(3), host), LC::DeviceToHost);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(3),
                            /*host_staged=*/true),
            LC::HostStaged);
}

TEST(TopologyTest, LinkRankOrdersClassesByRoutingPreference) {
  using LC = sim::LinkClass;
  EXPECT_LT(sim::Topology::link_rank(LC::IntraDevice),
            sim::Topology::link_rank(LC::PeerSameBus));
  EXPECT_LT(sim::Topology::link_rank(LC::PeerSameBus),
            sim::Topology::link_rank(LC::PeerCrossBus));
  EXPECT_LT(sim::Topology::link_rank(LC::PeerCrossBus),
            sim::Topology::link_rank(LC::HostToDevice));
  EXPECT_LT(sim::Topology::link_rank(LC::HostToDevice),
            sim::Topology::link_rank(LC::DeviceToHost));
  EXPECT_LT(sim::Topology::link_rank(LC::DeviceToHost),
            sim::Topology::link_rank(LC::HostStaged));
}

TEST(TopologyTest, LinkUseMapsTransfersToSharedResources) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const auto host = sim::Endpoint::host();

  // In-pair P2P goes point-to-point through the pair's switch: it holds no
  // shared interconnect resource at all.
  const auto in_pair = topo.link_use(sim::Endpoint::dev(0),
                                     sim::Endpoint::dev(1));
  EXPECT_EQ(in_pair.uplink_bus, -1);
  EXPECT_EQ(in_pair.downlink_bus, -1);
  EXPECT_EQ(in_pair.socket_node, -1);

  // Cross-bus P2P occupies one direction of the inter-socket link.
  const auto ascending = topo.link_use(sim::Endpoint::dev(1),
                                       sim::Endpoint::dev(2));
  EXPECT_GE(ascending.socket_node, 0);
  EXPECT_EQ(ascending.socket_dir, 0);
  const auto descending = topo.link_use(sim::Endpoint::dev(3),
                                        sim::Endpoint::dev(0));
  EXPECT_EQ(descending.socket_dir, 1);

  // Host transfers occupy the corresponding bus's uplink or downlink.
  const auto up = topo.link_use(host, sim::Endpoint::dev(3));
  EXPECT_EQ(up.uplink_bus, topo.bus_of(3));
  EXPECT_EQ(up.downlink_bus, -1);
  const auto down = topo.link_use(sim::Endpoint::dev(2), host);
  EXPECT_EQ(down.downlink_bus, topo.bus_of(2));
  EXPECT_EQ(down.uplink_bus, -1);

  // A host-staged bounce holds the source's downlink AND the target's uplink.
  const auto staged = topo.link_use(sim::Endpoint::dev(0),
                                    sim::Endpoint::dev(2),
                                    /*host_staged=*/true);
  EXPECT_EQ(staged.downlink_bus, topo.bus_of(0));
  EXPECT_EQ(staged.uplink_bus, topo.bus_of(2));
}

TEST(TopologyTest, BusCountCoversOddDeviceCounts) {
  EXPECT_EQ(sim::Topology::pcie3_pairs(1).bus_count(), 1);
  EXPECT_EQ(sim::Topology::pcie3_pairs(2).bus_count(), 1);
  EXPECT_EQ(sim::Topology::pcie3_pairs(3).bus_count(), 2);
  EXPECT_EQ(sim::Topology::pcie3_pairs(4).bus_count(), 2);
}

} // namespace
