// Topology: bus layout, peer routing and transfer arithmetic (§5: two PCIe-3
// buses, each connecting a pair of GPUs).
#include <gtest/gtest.h>

#include "sim/topology.hpp"

namespace {

TEST(TopologyTest, PairsShareBuses) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_EQ(topo.bus_of(0), 0);
  EXPECT_EQ(topo.bus_of(1), 0);
  EXPECT_EQ(topo.bus_of(2), 1);
  EXPECT_EQ(topo.bus_of(3), 1);
  EXPECT_THROW(topo.bus_of(4), std::out_of_range);
}

TEST(TopologyTest, PeerEnabledBetweenAllDevices) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_TRUE(topo.peer_enabled(0, 3));
  EXPECT_FALSE(topo.peer_enabled(0, -1));
}

TEST(TopologyTest, BandwidthOrdering) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const double same_bus = topo.bandwidth_gbps(sim::Endpoint::dev(0),
                                              sim::Endpoint::dev(1));
  const double cross_bus = topo.bandwidth_gbps(sim::Endpoint::dev(1),
                                               sim::Endpoint::dev(2));
  const double intra = topo.bandwidth_gbps(sim::Endpoint::dev(2),
                                           sim::Endpoint::dev(2));
  EXPECT_GT(same_bus, cross_bus);
  EXPECT_GT(intra, same_bus);
}

TEST(TopologyTest, CrossBusLatencyHigher) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_GT(topo.latency_us(sim::Endpoint::dev(0), sim::Endpoint::dev(2)),
            topo.latency_us(sim::Endpoint::dev(0), sim::Endpoint::dev(1)));
}

TEST(TopologyTest, TransferSecondsFormula) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(2);
  const auto host = sim::Endpoint::host();
  const auto dev = sim::Endpoint::dev(0);
  const std::size_t bytes = 12ull << 30; // 12 GiB at 12 GB/s ~ 1.07 s
  const double t = topo.transfer_seconds(host, dev, bytes);
  EXPECT_NEAR(t, static_cast<double>(bytes) / 12e9 + 9e-6, 1e-3);
}

TEST(TopologyTest, RequiresAtLeastOneDevice) {
  EXPECT_THROW(sim::Topology(0, 1, 1, 1, 1, 1), std::invalid_argument);
}

TEST(TopologyTest, LinkClassFollowsEndpointPlacement) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const auto host = sim::Endpoint::host();
  using LC = sim::LinkClass;
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(2), sim::Endpoint::dev(2)),
            LC::IntraDevice);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(1)),
            LC::PeerSameBus);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(1), sim::Endpoint::dev(2)),
            LC::PeerCrossBus);
  EXPECT_EQ(topo.link_class(host, sim::Endpoint::dev(3)), LC::HostToDevice);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(3), host), LC::DeviceToHost);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(3),
                            /*host_staged=*/true),
            LC::HostStaged);
}

TEST(TopologyTest, LinkRankOrdersClassesByRoutingPreference) {
  using LC = sim::LinkClass;
  EXPECT_LT(sim::Topology::link_rank(LC::IntraDevice),
            sim::Topology::link_rank(LC::PeerSameBus));
  EXPECT_LT(sim::Topology::link_rank(LC::PeerSameBus),
            sim::Topology::link_rank(LC::PeerCrossBus));
  EXPECT_LT(sim::Topology::link_rank(LC::PeerCrossBus),
            sim::Topology::link_rank(LC::HostToDevice));
  EXPECT_LT(sim::Topology::link_rank(LC::HostToDevice),
            sim::Topology::link_rank(LC::DeviceToHost));
  EXPECT_LT(sim::Topology::link_rank(LC::DeviceToHost),
            sim::Topology::link_rank(LC::HostStaged));
}

TEST(TopologyTest, LinkUseMapsTransfersToSharedResources) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const auto host = sim::Endpoint::host();

  // In-pair P2P goes point-to-point through the pair's switch: it holds no
  // shared interconnect resource at all.
  const auto in_pair = topo.link_use(sim::Endpoint::dev(0),
                                     sim::Endpoint::dev(1));
  EXPECT_EQ(in_pair.uplink_bus, -1);
  EXPECT_EQ(in_pair.downlink_bus, -1);
  EXPECT_EQ(in_pair.socket_node, -1);

  // Cross-bus P2P occupies one direction of the inter-socket link.
  const auto ascending = topo.link_use(sim::Endpoint::dev(1),
                                       sim::Endpoint::dev(2));
  EXPECT_GE(ascending.socket_node, 0);
  EXPECT_EQ(ascending.socket_dir, 0);
  const auto descending = topo.link_use(sim::Endpoint::dev(3),
                                        sim::Endpoint::dev(0));
  EXPECT_EQ(descending.socket_dir, 1);

  // Host transfers occupy the corresponding bus's uplink or downlink.
  const auto up = topo.link_use(host, sim::Endpoint::dev(3));
  EXPECT_EQ(up.uplink_bus, topo.bus_of(3));
  EXPECT_EQ(up.downlink_bus, -1);
  const auto down = topo.link_use(sim::Endpoint::dev(2), host);
  EXPECT_EQ(down.downlink_bus, topo.bus_of(2));
  EXPECT_EQ(down.uplink_bus, -1);

  // A host-staged bounce holds the source's downlink AND the target's uplink.
  const auto staged = topo.link_use(sim::Endpoint::dev(0),
                                    sim::Endpoint::dev(2),
                                    /*host_staged=*/true);
  EXPECT_EQ(staged.downlink_bus, topo.bus_of(0));
  EXPECT_EQ(staged.uplink_bus, topo.bus_of(2));
}

TEST(TopologyTest, BusCountCoversOddDeviceCounts) {
  EXPECT_EQ(sim::Topology::pcie3_pairs(1).bus_count(), 1);
  EXPECT_EQ(sim::Topology::pcie3_pairs(2).bus_count(), 1);
  EXPECT_EQ(sim::Topology::pcie3_pairs(3).bus_count(), 2);
  EXPECT_EQ(sim::Topology::pcie3_pairs(4).bus_count(), 2);
}

// --- Cluster network tier ----------------------------------------------------

TEST(TopologyClusterTest, LinkClassCrossesNetworkByNodeNotByFlag) {
  const sim::Topology topo = sim::Topology::cluster(2, 4);
  const auto host = sim::Endpoint::host();
  using LC = sim::LinkClass;
  // Same node: exactly the single-node classes, network tier invisible.
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(4), sim::Endpoint::dev(5)),
            LC::PeerSameBus);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(2),
                            /*host_staged=*/true),
            LC::HostStaged);
  // Cross-node device pairs are network-staged regardless of the staging
  // flag — the route is inherently D2H + NIC hop + H2D.
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(4)),
            LC::NetworkStaged);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(4),
                            /*host_staged=*/true),
            LC::NetworkStaged);
  // Host endpoints live in the head node's RAM: transfers touching a remote
  // device cross the network in the matching direction.
  EXPECT_EQ(topo.link_class(host, sim::Endpoint::dev(7)), LC::NetworkRecv);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(7), host), LC::NetworkSend);
  EXPECT_EQ(topo.link_class(host, sim::Endpoint::dev(3)), LC::HostToDevice);
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(3), host), LC::DeviceToHost);
}

TEST(TopologyClusterTest, NetworkSecondsChargesLatencyPlusBandwidth) {
  const sim::Topology topo =
      sim::Topology::cluster(2, 4, /*network_gbps=*/5.0,
                             /*network_latency_us=*/30.0);
  // Same node (and the head-node host): free of network cost.
  EXPECT_EQ(topo.network_seconds(0, 3, 1 << 20), 0.0);
  EXPECT_EQ(topo.network_seconds(-1, 2, 1 << 20), 0.0);
  // Cross-node: latency + bytes / bandwidth, both directions equal.
  const double t = topo.network_seconds(0, 4, 1 << 20);
  EXPECT_NEAR(t, 30e-6 + (1 << 20) / 5.0e9, 1e-9);
  EXPECT_EQ(topo.network_seconds(4, 0, 1 << 20), t);
  // Host -> remote device crosses too (host is on node 0).
  EXPECT_EQ(topo.network_seconds(-1, 4, 1 << 20), t);
}

TEST(TopologyClusterTest, SingleGpuNodesStillFormANetwork) {
  const sim::Topology topo = sim::Topology::cluster(4, 1);
  EXPECT_EQ(topo.cluster_nodes(), 4);
  EXPECT_EQ(topo.cluster_node_of(2), 2);
  EXPECT_FALSE(topo.peer_enabled(0, 1)); // every pair crosses the network
  EXPECT_EQ(topo.link_class(sim::Endpoint::dev(0), sim::Endpoint::dev(1)),
            sim::LinkClass::NetworkStaged);
  EXPECT_GT(topo.network_seconds(0, 1, 1), 0.0);
}

TEST(TopologyClusterTest, NicResourceIdentitySharedAcrossDirectionsAndClasses) {
  const sim::Topology topo = sim::Topology::cluster(2, 4);
  const auto host = sim::Endpoint::host();
  // A device->device staged route and a device->host send from the same node
  // contend on the SAME egress NIC (resource identity by node index).
  const auto staged = topo.link_use(sim::Endpoint::dev(5),
                                    sim::Endpoint::dev(1));
  const auto send = topo.link_use(sim::Endpoint::dev(6), host);
  EXPECT_EQ(staged.nic_send_node, 1);
  EXPECT_EQ(send.nic_send_node, 1);
  EXPECT_EQ(staged.nic_recv_node, 0);
  EXPECT_EQ(send.nic_recv_node, 0);
  // The reverse direction uses the other node's send NIC: the NICs are
  // full-duplex, so send and recv are independent resources.
  const auto recv = topo.link_use(host, sim::Endpoint::dev(6));
  EXPECT_EQ(recv.nic_send_node, 0);
  EXPECT_EQ(recv.nic_recv_node, 1);
  // Staged routes also hold the PCIe legs at both ends.
  EXPECT_EQ(staged.downlink_bus, topo.bus_of(5));
  EXPECT_EQ(staged.uplink_bus, topo.bus_of(1));
  // Same-node transfers never touch a NIC.
  const auto local = topo.link_use(sim::Endpoint::dev(0),
                                   sim::Endpoint::dev(2));
  EXPECT_EQ(local.nic_send_node, -1);
  EXPECT_EQ(local.nic_recv_node, -1);
}

TEST(TopologyClusterTest, NetworkClassesRankBelowSingleNodePaths) {
  using LC = sim::LinkClass;
  // The planner's tie-break prefers any single-node path over a network
  // crossing; the appended enum order encodes that.
  EXPECT_LT(sim::Topology::link_rank(LC::HostStaged),
            sim::Topology::link_rank(LC::NetworkSend));
  EXPECT_LT(sim::Topology::link_rank(LC::NetworkSend),
            sim::Topology::link_rank(LC::NetworkRecv));
  EXPECT_LT(sim::Topology::link_rank(LC::NetworkRecv),
            sim::Topology::link_rank(LC::NetworkStaged));
  EXPECT_TRUE(sim::Topology::crosses_network(LC::NetworkSend));
  EXPECT_TRUE(sim::Topology::crosses_network(LC::NetworkRecv));
  EXPECT_TRUE(sim::Topology::crosses_network(LC::NetworkStaged));
  EXPECT_FALSE(sim::Topology::crosses_network(LC::HostStaged));
  EXPECT_FALSE(sim::Topology::crosses_network(LC::PeerSameBus));
}

} // namespace
