// Topology: bus layout, peer routing and transfer arithmetic (§5: two PCIe-3
// buses, each connecting a pair of GPUs).
#include <gtest/gtest.h>

#include "sim/topology.hpp"

namespace {

TEST(TopologyTest, PairsShareBuses) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_EQ(topo.bus_of(0), 0);
  EXPECT_EQ(topo.bus_of(1), 0);
  EXPECT_EQ(topo.bus_of(2), 1);
  EXPECT_EQ(topo.bus_of(3), 1);
  EXPECT_THROW(topo.bus_of(4), std::out_of_range);
}

TEST(TopologyTest, PeerEnabledBetweenAllDevices) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_TRUE(topo.peer_enabled(0, 3));
  EXPECT_FALSE(topo.peer_enabled(0, -1));
}

TEST(TopologyTest, BandwidthOrdering) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  const double same_bus = topo.bandwidth_gbps(sim::Endpoint::dev(0),
                                              sim::Endpoint::dev(1));
  const double cross_bus = topo.bandwidth_gbps(sim::Endpoint::dev(1),
                                               sim::Endpoint::dev(2));
  const double intra = topo.bandwidth_gbps(sim::Endpoint::dev(2),
                                           sim::Endpoint::dev(2));
  EXPECT_GT(same_bus, cross_bus);
  EXPECT_GT(intra, same_bus);
}

TEST(TopologyTest, CrossBusLatencyHigher) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(4);
  EXPECT_GT(topo.latency_us(sim::Endpoint::dev(0), sim::Endpoint::dev(2)),
            topo.latency_us(sim::Endpoint::dev(0), sim::Endpoint::dev(1)));
}

TEST(TopologyTest, TransferSecondsFormula) {
  const sim::Topology topo = sim::Topology::pcie3_pairs(2);
  const auto host = sim::Endpoint::host();
  const auto dev = sim::Endpoint::dev(0);
  const std::size_t bytes = 12ull << 30; // 12 GiB at 12 GB/s ~ 1.07 s
  const double t = topo.transfer_seconds(host, dev, bytes);
  EXPECT_NEAR(t, static_cast<double>(bytes) / 12e9 + 9e-6, 1e-3);
}

TEST(TopologyTest, RequiresAtLeastOneDevice) {
  EXPECT_THROW(sim::Topology(0, 1, 1, 1, 1, 1), std::invalid_argument);
}

} // namespace
