// Device memory accounting: capacity enforcement, OOM diagnostics, zeroed
// fresh allocations, TimingOnly accounting without backing.
#include <gtest/gtest.h>

#include "sim/memory.hpp"
#include "sim/node.hpp"
#include "sim/presets.hpp"

namespace {

TEST(MemoryTest, AllocateFreeAccounting) {
  sim::DeviceAllocator alloc(0, 1024, /*functional=*/true);
  sim::Buffer* a = alloc.allocate(256);
  sim::Buffer* b = alloc.allocate(512);
  EXPECT_EQ(alloc.used(), 768u);
  EXPECT_EQ(alloc.allocation_count(), 2u);
  alloc.free(a);
  EXPECT_EQ(alloc.used(), 512u);
  alloc.free(b);
  EXPECT_EQ(alloc.used(), 0u);
}

TEST(MemoryTest, OutOfMemoryThrowsWithDiagnostics) {
  sim::DeviceAllocator alloc(3, 1000, true);
  alloc.allocate(800);
  try {
    alloc.allocate(300);
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const sim::OutOfDeviceMemory& e) {
    EXPECT_EQ(e.device, 3);
    EXPECT_EQ(e.requested, 300u);
    EXPECT_EQ(e.used, 800u);
    EXPECT_EQ(e.capacity, 1000u);
    EXPECT_NE(std::string(e.what()).find("device 3"), std::string::npos);
  }
}

TEST(MemoryTest, FreedMemoryIsReusable) {
  sim::DeviceAllocator alloc(0, 1000, true);
  sim::Buffer* a = alloc.allocate(900);
  alloc.free(a);
  EXPECT_NO_THROW(alloc.allocate(900));
}

TEST(MemoryTest, ZeroSizeAllocationRejected) {
  sim::DeviceAllocator alloc(0, 1000, true);
  EXPECT_THROW(alloc.allocate(0), std::invalid_argument);
}

TEST(MemoryTest, ForeignFreeRejected) {
  sim::DeviceAllocator a(0, 1000, true);
  sim::DeviceAllocator b(1, 1000, true);
  sim::Buffer* buf = a.allocate(100);
  EXPECT_THROW(b.free(buf), std::invalid_argument);
  a.free(buf);
}

TEST(MemoryTest, FreshDeviceMemoryReadsAsZero) {
  sim::DeviceAllocator alloc(0, 1024, true);
  sim::Buffer* buf = alloc.allocate(64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(buf->data()[i], std::byte{0});
  }
}

TEST(MemoryTest, TimingOnlyHasNoBackingButCountsCapacity) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 1),
                 sim::ExecMode::TimingOnly);
  sim::Buffer* buf = node.malloc_device(0, 1 << 30);
  EXPECT_FALSE(buf->has_backing());
  EXPECT_EQ(node.device_mem_used(0), 1u << 30);
  // GTX 780 has 3 GiB; two more of these fit, a third does not.
  node.malloc_device(0, 1 << 30);
  node.malloc_device(0, 1 << 30);
  EXPECT_THROW(node.malloc_device(0, 1 << 30), sim::OutOfDeviceMemory);
}

TEST(MemoryTest, NodeCapacityMatchesSpec) {
  sim::Node node(sim::homogeneous_node(sim::gtx980(), 2));
  EXPECT_EQ(node.device_mem_capacity(0), 4ull << 30);
  EXPECT_EQ(node.device_mem_used(1), 0u);
}

} // namespace
