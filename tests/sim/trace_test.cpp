// Timeline tracing: the observability feature used to diagnose scheduling
// (DESIGN.md §7) must record processed commands with correct kinds, ordering
// and durations.
#include <gtest/gtest.h>

#include "sim/node.hpp"
#include "sim/presets.hpp"

namespace {

TEST(TraceTest, RecordsKernelsAndCopiesInSimulatedOrder) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2));
  node.enable_trace(true);
  sim::Buffer* buf = node.malloc_device(0, 1024);
  std::vector<std::byte> host(1024);
  node.memcpy_h2d(node.default_stream(0), buf, 0, host.data(), 1024);
  sim::LaunchStats st;
  st.blocks = 8;
  st.label = "traced_kernel";
  node.launch(node.default_stream(0), st, [] {});
  node.synchronize();

  const auto& trace = node.trace();
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, 'C');
  EXPECT_EQ(trace[1].kind, 'K');
  EXPECT_EQ(trace[1].label, "traced_kernel");
  EXPECT_GE(trace[1].start, trace[0].end); // same stream: ordered
  EXPECT_GT(trace[0].end, trace[0].start);
  EXPECT_EQ(trace[0].device, 0);
}

TEST(TraceTest, DisabledByDefaultAndClearable) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 1));
  node.host_func(node.default_stream(0), [] {});
  node.synchronize();
  EXPECT_TRUE(node.trace().empty());

  node.enable_trace(true);
  node.host_func(node.default_stream(0), [] {});
  node.synchronize();
  EXPECT_EQ(node.trace().size(), 1u);
  EXPECT_EQ(node.trace()[0].kind, 'H');
  node.clear_trace();
  EXPECT_TRUE(node.trace().empty());
}

TEST(TraceTest, CopyLabelsNameEndpointsAndBytes) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 2));
  node.enable_trace(true);
  sim::Buffer* a = node.malloc_device(0, 256);
  sim::Buffer* b = node.malloc_device(1, 256);
  node.memcpy_p2p(node.default_stream(1), b, 0, a, 0, 256);
  node.synchronize();
  ASSERT_EQ(node.trace().size(), 1u);
  EXPECT_EQ(node.trace()[0].label, "0->1 256B");
}

} // namespace
