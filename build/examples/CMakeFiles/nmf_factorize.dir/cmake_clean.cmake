file(REMOVE_RECURSE
  "CMakeFiles/nmf_factorize.dir/nmf_factorize.cpp.o"
  "CMakeFiles/nmf_factorize.dir/nmf_factorize.cpp.o.d"
  "nmf_factorize"
  "nmf_factorize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmf_factorize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
