# Empty dependencies file for nmf_factorize.
# This may be replaced when dependencies are built.
