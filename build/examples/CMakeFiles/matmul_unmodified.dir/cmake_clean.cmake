file(REMOVE_RECURSE
  "CMakeFiles/matmul_unmodified.dir/matmul_unmodified.cpp.o"
  "CMakeFiles/matmul_unmodified.dir/matmul_unmodified.cpp.o.d"
  "matmul_unmodified"
  "matmul_unmodified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_unmodified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
