# Empty compiler generated dependencies file for matmul_unmodified.
# This may be replaced when dependencies are built.
