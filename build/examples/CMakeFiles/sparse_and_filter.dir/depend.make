# Empty dependencies file for sparse_and_filter.
# This may be replaced when dependencies are built.
