file(REMOVE_RECURSE
  "CMakeFiles/sparse_and_filter.dir/sparse_and_filter.cpp.o"
  "CMakeFiles/sparse_and_filter.dir/sparse_and_filter.cpp.o.d"
  "sparse_and_filter"
  "sparse_and_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_and_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
