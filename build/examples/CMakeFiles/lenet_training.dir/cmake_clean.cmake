file(REMOVE_RECURSE
  "CMakeFiles/lenet_training.dir/lenet_training.cpp.o"
  "CMakeFiles/lenet_training.dir/lenet_training.cpp.o.d"
  "lenet_training"
  "lenet_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lenet_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
