# Empty dependencies file for lenet_training.
# This may be replaced when dependencies are built.
