file(REMOVE_RECURSE
  "../bench/fig08_histogram_aggregators"
  "../bench/fig08_histogram_aggregators.pdb"
  "CMakeFiles/fig08_histogram_aggregators.dir/fig08_histogram_aggregators.cpp.o"
  "CMakeFiles/fig08_histogram_aggregators.dir/fig08_histogram_aggregators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_histogram_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
