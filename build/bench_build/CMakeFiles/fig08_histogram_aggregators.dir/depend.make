# Empty dependencies file for fig08_histogram_aggregators.
# This may be replaced when dependencies are built.
