file(REMOVE_RECURSE
  "../bench/cluster_extension"
  "../bench/cluster_extension.pdb"
  "CMakeFiles/cluster_extension.dir/cluster_extension.cpp.o"
  "CMakeFiles/cluster_extension.dir/cluster_extension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
