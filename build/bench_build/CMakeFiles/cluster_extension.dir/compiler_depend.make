# Empty compiler generated dependencies file for cluster_extension.
# This may be replaced when dependencies are built.
