# Empty dependencies file for fig06_framework_scaling.
# This may be replaced when dependencies are built.
