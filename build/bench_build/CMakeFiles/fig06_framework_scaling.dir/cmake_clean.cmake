file(REMOVE_RECURSE
  "../bench/fig06_framework_scaling"
  "../bench/fig06_framework_scaling.pdb"
  "CMakeFiles/fig06_framework_scaling.dir/fig06_framework_scaling.cpp.o"
  "CMakeFiles/fig06_framework_scaling.dir/fig06_framework_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_framework_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
