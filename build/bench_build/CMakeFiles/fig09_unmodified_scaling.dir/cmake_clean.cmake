file(REMOVE_RECURSE
  "../bench/fig09_unmodified_scaling"
  "../bench/fig09_unmodified_scaling.pdb"
  "CMakeFiles/fig09_unmodified_scaling.dir/fig09_unmodified_scaling.cpp.o"
  "CMakeFiles/fig09_unmodified_scaling.dir/fig09_unmodified_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_unmodified_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
