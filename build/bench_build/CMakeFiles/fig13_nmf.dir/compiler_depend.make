# Empty compiler generated dependencies file for fig13_nmf.
# This may be replaced when dependencies are built.
