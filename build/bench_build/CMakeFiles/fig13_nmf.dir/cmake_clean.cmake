file(REMOVE_RECURSE
  "../bench/fig13_nmf"
  "../bench/fig13_nmf.pdb"
  "CMakeFiles/fig13_nmf.dir/fig13_nmf.cpp.o"
  "CMakeFiles/fig13_nmf.dir/fig13_nmf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_nmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
