file(REMOVE_RECURSE
  "../bench/fig07_gol_ilp"
  "../bench/fig07_gol_ilp.pdb"
  "CMakeFiles/fig07_gol_ilp.dir/fig07_gol_ilp.cpp.o"
  "CMakeFiles/fig07_gol_ilp.dir/fig07_gol_ilp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_gol_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
