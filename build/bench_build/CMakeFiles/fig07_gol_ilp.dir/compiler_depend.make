# Empty compiler generated dependencies file for fig07_gol_ilp.
# This may be replaced when dependencies are built.
