file(REMOVE_RECURSE
  "../bench/fig11_deep_learning"
  "../bench/fig11_deep_learning.pdb"
  "CMakeFiles/fig11_deep_learning.dir/fig11_deep_learning.cpp.o"
  "CMakeFiles/fig11_deep_learning.dir/fig11_deep_learning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_deep_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
