# Empty compiler generated dependencies file for fig11_deep_learning.
# This may be replaced when dependencies are built.
