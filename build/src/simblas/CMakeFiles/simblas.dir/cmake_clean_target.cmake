file(REMOVE_RECURSE
  "libsimblas.a"
)
