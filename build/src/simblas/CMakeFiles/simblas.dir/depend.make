# Empty dependencies file for simblas.
# This may be replaced when dependencies are built.
