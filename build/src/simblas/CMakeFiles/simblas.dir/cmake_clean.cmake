file(REMOVE_RECURSE
  "CMakeFiles/simblas.dir/simblas.cpp.o"
  "CMakeFiles/simblas.dir/simblas.cpp.o.d"
  "libsimblas.a"
  "libsimblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
