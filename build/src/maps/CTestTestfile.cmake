# CMake generated Testfile for 
# Source directory: /root/repo/src/maps
# Build directory: /root/repo/build/src/maps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
