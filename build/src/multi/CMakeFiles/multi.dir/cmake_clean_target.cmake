file(REMOVE_RECURSE
  "libmulti.a"
)
