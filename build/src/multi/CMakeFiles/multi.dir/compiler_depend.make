# Empty compiler generated dependencies file for multi.
# This may be replaced when dependencies are built.
