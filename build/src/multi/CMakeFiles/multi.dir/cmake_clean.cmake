file(REMOVE_RECURSE
  "CMakeFiles/multi.dir/datum.cpp.o"
  "CMakeFiles/multi.dir/datum.cpp.o.d"
  "CMakeFiles/multi.dir/interval_set.cpp.o"
  "CMakeFiles/multi.dir/interval_set.cpp.o.d"
  "CMakeFiles/multi.dir/invoker.cpp.o"
  "CMakeFiles/multi.dir/invoker.cpp.o.d"
  "CMakeFiles/multi.dir/location_monitor.cpp.o"
  "CMakeFiles/multi.dir/location_monitor.cpp.o.d"
  "CMakeFiles/multi.dir/memory_analyzer.cpp.o"
  "CMakeFiles/multi.dir/memory_analyzer.cpp.o.d"
  "CMakeFiles/multi.dir/scheduler.cpp.o"
  "CMakeFiles/multi.dir/scheduler.cpp.o.d"
  "CMakeFiles/multi.dir/segmenter.cpp.o"
  "CMakeFiles/multi.dir/segmenter.cpp.o.d"
  "CMakeFiles/multi.dir/task_cost.cpp.o"
  "CMakeFiles/multi.dir/task_cost.cpp.o.d"
  "libmulti.a"
  "libmulti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
