
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multi/datum.cpp" "src/multi/CMakeFiles/multi.dir/datum.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/datum.cpp.o.d"
  "/root/repo/src/multi/interval_set.cpp" "src/multi/CMakeFiles/multi.dir/interval_set.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/interval_set.cpp.o.d"
  "/root/repo/src/multi/invoker.cpp" "src/multi/CMakeFiles/multi.dir/invoker.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/invoker.cpp.o.d"
  "/root/repo/src/multi/location_monitor.cpp" "src/multi/CMakeFiles/multi.dir/location_monitor.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/location_monitor.cpp.o.d"
  "/root/repo/src/multi/memory_analyzer.cpp" "src/multi/CMakeFiles/multi.dir/memory_analyzer.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/memory_analyzer.cpp.o.d"
  "/root/repo/src/multi/scheduler.cpp" "src/multi/CMakeFiles/multi.dir/scheduler.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/scheduler.cpp.o.d"
  "/root/repo/src/multi/segmenter.cpp" "src/multi/CMakeFiles/multi.dir/segmenter.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/segmenter.cpp.o.d"
  "/root/repo/src/multi/task_cost.cpp" "src/multi/CMakeFiles/multi.dir/task_cost.cpp.o" "gcc" "src/multi/CMakeFiles/multi.dir/task_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
