file(REMOVE_RECURSE
  "CMakeFiles/nn.dir/dataset.cpp.o"
  "CMakeFiles/nn.dir/dataset.cpp.o.d"
  "CMakeFiles/nn.dir/layers.cpp.o"
  "CMakeFiles/nn.dir/layers.cpp.o.d"
  "CMakeFiles/nn.dir/lenet.cpp.o"
  "CMakeFiles/nn.dir/lenet.cpp.o.d"
  "CMakeFiles/nn.dir/trainer.cpp.o"
  "CMakeFiles/nn.dir/trainer.cpp.o.d"
  "libnn.a"
  "libnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
