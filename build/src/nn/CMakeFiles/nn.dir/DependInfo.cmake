
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/lenet.cpp" "src/nn/CMakeFiles/nn.dir/lenet.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/lenet.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multi/CMakeFiles/multi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
