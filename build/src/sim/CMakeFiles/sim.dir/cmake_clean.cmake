file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/cost_model.cpp.o"
  "CMakeFiles/sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/sim.dir/memory.cpp.o"
  "CMakeFiles/sim.dir/memory.cpp.o.d"
  "CMakeFiles/sim.dir/node.cpp.o"
  "CMakeFiles/sim.dir/node.cpp.o.d"
  "CMakeFiles/sim.dir/presets.cpp.o"
  "CMakeFiles/sim.dir/presets.cpp.o.d"
  "CMakeFiles/sim.dir/topology.cpp.o"
  "CMakeFiles/sim.dir/topology.cpp.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
