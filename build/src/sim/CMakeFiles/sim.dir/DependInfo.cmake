
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/sim/CMakeFiles/sim.dir/presets.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/presets.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
