# Empty dependencies file for simcub.
# This may be replaced when dependencies are built.
