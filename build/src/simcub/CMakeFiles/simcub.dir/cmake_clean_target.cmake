file(REMOVE_RECURSE
  "libsimcub.a"
)
