file(REMOVE_RECURSE
  "CMakeFiles/simcub.dir/simcub.cpp.o"
  "CMakeFiles/simcub.dir/simcub.cpp.o.d"
  "libsimcub.a"
  "libsimcub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
