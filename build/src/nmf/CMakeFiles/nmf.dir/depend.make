# Empty dependencies file for nmf.
# This may be replaced when dependencies are built.
