file(REMOVE_RECURSE
  "libnmf.a"
)
