file(REMOVE_RECURSE
  "CMakeFiles/nmf.dir/nmf.cpp.o"
  "CMakeFiles/nmf.dir/nmf.cpp.o.d"
  "libnmf.a"
  "libnmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
