file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/game_of_life.cpp.o"
  "CMakeFiles/apps.dir/game_of_life.cpp.o.d"
  "CMakeFiles/apps.dir/histogram.cpp.o"
  "CMakeFiles/apps.dir/histogram.cpp.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
