file(REMOVE_RECURSE
  "CMakeFiles/nmf_test.dir/nmf_test.cpp.o"
  "CMakeFiles/nmf_test.dir/nmf_test.cpp.o.d"
  "nmf_test"
  "nmf_test.pdb"
  "nmf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
