# Empty dependencies file for apps_shape_test.
# This may be replaced when dependencies are built.
