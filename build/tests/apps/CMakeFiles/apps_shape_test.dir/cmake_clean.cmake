file(REMOVE_RECURSE
  "CMakeFiles/apps_shape_test.dir/shape_test.cpp.o"
  "CMakeFiles/apps_shape_test.dir/shape_test.cpp.o.d"
  "apps_shape_test"
  "apps_shape_test.pdb"
  "apps_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
