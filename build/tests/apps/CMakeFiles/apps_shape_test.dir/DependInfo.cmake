
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/shape_test.cpp" "tests/apps/CMakeFiles/apps_shape_test.dir/shape_test.cpp.o" "gcc" "tests/apps/CMakeFiles/apps_shape_test.dir/shape_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multi/CMakeFiles/multi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/simblas/CMakeFiles/simblas.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build/src/nmf/CMakeFiles/nmf.dir/DependInfo.cmake"
  "/root/repo/build/src/simcub/CMakeFiles/simcub.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
