file(REMOVE_RECURSE
  "CMakeFiles/sim_node_test.dir/node_test.cpp.o"
  "CMakeFiles/sim_node_test.dir/node_test.cpp.o.d"
  "sim_node_test"
  "sim_node_test.pdb"
  "sim_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
