# CMake generated Testfile for 
# Source directory: /root/repo/tests/multi
# Build directory: /root/repo/build/tests/multi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/multi/multi_interval_set_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_segmenter_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_patterns_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_location_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_memory_analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_scheduler_edge_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_task_cost_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_invoker_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_datum_test[1]_include.cmake")
include("/root/repo/build/tests/multi/multi_property_test[1]_include.cmake")
