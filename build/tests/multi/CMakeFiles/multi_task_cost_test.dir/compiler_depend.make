# Empty compiler generated dependencies file for multi_task_cost_test.
# This may be replaced when dependencies are built.
