file(REMOVE_RECURSE
  "CMakeFiles/multi_task_cost_test.dir/task_cost_test.cpp.o"
  "CMakeFiles/multi_task_cost_test.dir/task_cost_test.cpp.o.d"
  "multi_task_cost_test"
  "multi_task_cost_test.pdb"
  "multi_task_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_task_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
