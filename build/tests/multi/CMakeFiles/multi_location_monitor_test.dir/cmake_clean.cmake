file(REMOVE_RECURSE
  "CMakeFiles/multi_location_monitor_test.dir/location_monitor_test.cpp.o"
  "CMakeFiles/multi_location_monitor_test.dir/location_monitor_test.cpp.o.d"
  "multi_location_monitor_test"
  "multi_location_monitor_test.pdb"
  "multi_location_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_location_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
