# Empty compiler generated dependencies file for multi_location_monitor_test.
# This may be replaced when dependencies are built.
