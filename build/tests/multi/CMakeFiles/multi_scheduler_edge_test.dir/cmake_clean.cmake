file(REMOVE_RECURSE
  "CMakeFiles/multi_scheduler_edge_test.dir/scheduler_edge_test.cpp.o"
  "CMakeFiles/multi_scheduler_edge_test.dir/scheduler_edge_test.cpp.o.d"
  "multi_scheduler_edge_test"
  "multi_scheduler_edge_test.pdb"
  "multi_scheduler_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_scheduler_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
