# Empty dependencies file for multi_segmenter_test.
# This may be replaced when dependencies are built.
