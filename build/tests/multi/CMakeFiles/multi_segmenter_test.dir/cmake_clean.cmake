file(REMOVE_RECURSE
  "CMakeFiles/multi_segmenter_test.dir/segmenter_test.cpp.o"
  "CMakeFiles/multi_segmenter_test.dir/segmenter_test.cpp.o.d"
  "multi_segmenter_test"
  "multi_segmenter_test.pdb"
  "multi_segmenter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_segmenter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
