file(REMOVE_RECURSE
  "CMakeFiles/multi_interval_set_test.dir/interval_set_test.cpp.o"
  "CMakeFiles/multi_interval_set_test.dir/interval_set_test.cpp.o.d"
  "multi_interval_set_test"
  "multi_interval_set_test.pdb"
  "multi_interval_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_interval_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
