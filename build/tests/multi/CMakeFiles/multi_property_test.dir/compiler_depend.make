# Empty compiler generated dependencies file for multi_property_test.
# This may be replaced when dependencies are built.
