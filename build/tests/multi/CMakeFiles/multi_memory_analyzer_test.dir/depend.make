# Empty dependencies file for multi_memory_analyzer_test.
# This may be replaced when dependencies are built.
