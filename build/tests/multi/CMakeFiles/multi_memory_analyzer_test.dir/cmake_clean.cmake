file(REMOVE_RECURSE
  "CMakeFiles/multi_memory_analyzer_test.dir/memory_analyzer_test.cpp.o"
  "CMakeFiles/multi_memory_analyzer_test.dir/memory_analyzer_test.cpp.o.d"
  "multi_memory_analyzer_test"
  "multi_memory_analyzer_test.pdb"
  "multi_memory_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_memory_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
