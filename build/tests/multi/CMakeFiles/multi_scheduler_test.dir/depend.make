# Empty dependencies file for multi_scheduler_test.
# This may be replaced when dependencies are built.
