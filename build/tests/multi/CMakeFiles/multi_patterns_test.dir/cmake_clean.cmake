file(REMOVE_RECURSE
  "CMakeFiles/multi_patterns_test.dir/patterns_test.cpp.o"
  "CMakeFiles/multi_patterns_test.dir/patterns_test.cpp.o.d"
  "multi_patterns_test"
  "multi_patterns_test.pdb"
  "multi_patterns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
