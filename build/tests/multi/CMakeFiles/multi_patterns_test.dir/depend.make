# Empty dependencies file for multi_patterns_test.
# This may be replaced when dependencies are built.
