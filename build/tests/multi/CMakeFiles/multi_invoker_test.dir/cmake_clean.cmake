file(REMOVE_RECURSE
  "CMakeFiles/multi_invoker_test.dir/invoker_test.cpp.o"
  "CMakeFiles/multi_invoker_test.dir/invoker_test.cpp.o.d"
  "multi_invoker_test"
  "multi_invoker_test.pdb"
  "multi_invoker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_invoker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
