# Empty compiler generated dependencies file for multi_invoker_test.
# This may be replaced when dependencies are built.
