file(REMOVE_RECURSE
  "CMakeFiles/multi_datum_test.dir/datum_test.cpp.o"
  "CMakeFiles/multi_datum_test.dir/datum_test.cpp.o.d"
  "multi_datum_test"
  "multi_datum_test.pdb"
  "multi_datum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_datum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
