# Empty dependencies file for multi_datum_test.
# This may be replaced when dependencies are built.
