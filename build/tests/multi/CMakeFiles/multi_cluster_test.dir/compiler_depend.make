# Empty compiler generated dependencies file for multi_cluster_test.
# This may be replaced when dependencies are built.
