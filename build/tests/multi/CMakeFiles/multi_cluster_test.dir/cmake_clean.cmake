file(REMOVE_RECURSE
  "CMakeFiles/multi_cluster_test.dir/cluster_test.cpp.o"
  "CMakeFiles/multi_cluster_test.dir/cluster_test.cpp.o.d"
  "multi_cluster_test"
  "multi_cluster_test.pdb"
  "multi_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
