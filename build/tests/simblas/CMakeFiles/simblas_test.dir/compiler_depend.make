# Empty compiler generated dependencies file for simblas_test.
# This may be replaced when dependencies are built.
