file(REMOVE_RECURSE
  "CMakeFiles/simblas_test.dir/simblas_test.cpp.o"
  "CMakeFiles/simblas_test.dir/simblas_test.cpp.o.d"
  "simblas_test"
  "simblas_test.pdb"
  "simblas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simblas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
