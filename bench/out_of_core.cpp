// Out-of-core execution: simulated cost of running working sets ~4x larger
// than the per-device memory budget (DESIGN.md §5.16, EXPERIMENTS.md
// §"Out-of-core execution").
//
// Runs two evaluation workloads at 4 GPUs, each in three configurations:
//   - in_core: unlimited budget (the legacy scheduler, the price of fitting),
//   - naive: budget = working set / 4 with streamed-pass prefetch disabled —
//     every window serializes evict -> refill -> kernel -> drain,
//   - prefetch: the same budget with the double-buffered window pipeline,
//     refilling window p+1 while window p's kernel runs and p-1 drains.
// Workloads:
//   - Game of Life on a wide world (32768x2048): two 256 MB ping-pong
//     buffers stream through 32 MB budgets, every iteration spilling and
//     refilling the full working set,
//   - a tall unmodified-GEMM chain (16K x 2K operands): the small B operand
//     stays resident as the persistent set while the tall A/C/D stripes
//     stream, mirroring the paper's out-of-core motivation (Fig 9 shapes
//     pushed past device memory).
// Naive and prefetch move exactly the same bytes in the same passes
// (asserted in --smoke) — the pipeline changes the timeline only. Writes
// BENCH_out_of_core.json (override with --out <path>).
//
// --smoke trims the iteration counts and asserts the prefetch pipeline beats
// the naive streamer by >= 1.2x on both workloads; wired as a `perf_smoke`
// ctest label next to sched_overhead, transfer_plan, overlap, exec_wallclock
// and cluster.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/game_of_life.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

struct Run {
  double sim_ms = 0; // simulated time for the measured region
  SpillStats s;
};

Run capture(Scheduler& sched, double sim_ms) {
  Run r;
  r.sim_ms = sim_ms;
  r.s = sched.stats().spill;
  return r;
}

/// Budget policy of the pressured configurations: a quarter of the per-slot
/// working set, i.e. the workload is 4x too big for the "device".
constexpr std::size_t kPressure = 4;

Run run_gol(std::size_t budget, bool prefetch, int iterations, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  if (budget != 0) {
    sched.set_device_memory_budget(budget);
  }
  sched.set_spill_prefetch_enabled(prefetch);

  std::vector<int> dummy(1);
  // Wide world: 128 KB rows, 512 rows per device, 128 MB per-slot working
  // set across the two ping-pong buffers.
  Matrix<int> a(32768, 2048, "A"), b(32768, 2048, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  const double ms =
      apps::gol::run(sched, a, b, iterations, apps::gol::Scheme::Maps);
  return capture(sched, ms);
}

std::size_t gol_budget(int gpus) {
  return 2ull * 32768 * (2048 / gpus) * sizeof(int) / kPressure;
}

Run run_gemm_chain(std::size_t budget, bool prefetch, int chain, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  if (budget != 0) {
    sched.set_device_memory_budget(budget);
  }
  sched.set_spill_prefetch_enabled(prefetch);

  std::vector<float> dummy(1);
  // Tall stripes (16384 x 2048 floats, 128 MB each) through a square 16 MB
  // B that the whole-requirement keeps resident: B is the persistent set,
  // A/C/D stream through the window double buffers.
  const int m = 16384, k = 2048, n = 2048;
  Matrix<float> a(k, m, "A"), b(n, k, "B"), c(n, m, "C"), d(n, m, "D");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  c.Bind(dummy.data());
  d.Bind(dummy.data());
  for (int i = 0; i < chain; ++i) {
    simblas::Gemm(sched, i == 0 ? a : c, b, i % 2 == 0 ? c : d);
  }
  sched.WaitAll();
  return capture(sched, node.now_ms());
}

std::size_t gemm_budget(int gpus) {
  // Three tall stripes split across the devices plus the replicated B.
  const std::size_t stripe = 2048ull * 16384 * sizeof(float);
  return (3 * stripe / gpus + 2048ull * 2048 * sizeof(float)) / kPressure;
}

void print_triple(const char* workload, const Run& in_core, const Run& naive,
                  const Run& prefetch) {
  std::printf("\n%s\n", workload);
  std::printf("  %-10s %12s %12s %10s %10s %10s %10s\n", "config", "sim ms",
              "spill MB", "refill MB", "passes", "streamed", "evictions");
  const auto row = [](const char* name, const Run& r) {
    std::printf("  %-10s %12.3f %12.1f %10.1f %10llu %10llu %10llu\n", name,
                r.sim_ms, r.s.bytes_spilled / 1048576.0,
                r.s.bytes_refilled / 1048576.0,
                static_cast<unsigned long long>(r.s.pass_count),
                static_cast<unsigned long long>(r.s.streamed_tasks),
                static_cast<unsigned long long>(r.s.evictions));
  };
  row("in_core", in_core);
  row("naive", naive);
  row("prefetch", prefetch);
  std::printf("  prefetch speedup over naive: %.3fx\n",
              naive.sim_ms / prefetch.sim_ms);
  std::printf("  streaming overhead vs in-core: %.3fx\n",
              prefetch.sim_ms / in_core.sim_ms);
}

void json_run(std::FILE* f, const char* key, const Run& r) {
  std::fprintf(
      f,
      "      \"%s\": {\"sim_ms\": %.6f, \"bytes_spilled\": %llu, "
      "\"bytes_refilled\": %llu, \"spill_copy_bytes\": %llu, "
      "\"spill_copies_issued\": %u, \"pass_count\": %llu, "
      "\"streamed_tasks\": %llu, \"evictions\": %llu, \"refills\": %llu}",
      key, r.sim_ms, static_cast<unsigned long long>(r.s.bytes_spilled),
      static_cast<unsigned long long>(r.s.bytes_refilled),
      static_cast<unsigned long long>(r.s.transfers.bytes_total()),
      r.s.transfers.copies_issued,
      static_cast<unsigned long long>(r.s.pass_count),
      static_cast<unsigned long long>(r.s.streamed_tasks),
      static_cast<unsigned long long>(r.s.evictions),
      static_cast<unsigned long long>(r.s.refills));
}

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
  }
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_out_of_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int gol_iters = smoke ? 2 : 8;
  const int chain = smoke ? 2 : 8;
  const int gpus = 4;

  bench::print_setup_header(
      "Out-of-core execution: streamed passes at 4x memory pressure");

  struct Workload {
    const char* name;
    std::size_t budget;
    Run in_core, naive, prefetch;
  } workloads[] = {
      // The simulator is deterministic: one run per configuration is exact.
      {"gol_wide", gol_budget(gpus), run_gol(0, true, gol_iters, gpus),
       run_gol(gol_budget(gpus), false, gol_iters, gpus),
       run_gol(gol_budget(gpus), true, gol_iters, gpus)},
      {"gemm_chain", gemm_budget(gpus), run_gemm_chain(0, true, chain, gpus),
       run_gemm_chain(gemm_budget(gpus), false, chain, gpus),
       run_gemm_chain(gemm_budget(gpus), true, chain, gpus)},
  };
  for (const Workload& w : workloads) {
    print_triple(w.name, w.in_core, w.naive, w.prefetch);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"out_of_core\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"device\": \"%s\",\n", sim::gtx780().name.c_str());
  std::fprintf(f, "  \"gpus\": %d,\n  \"pressure\": %d,\n  \"workloads\": {\n",
               gpus, static_cast<int>(kPressure));
  for (std::size_t i = 0; i < std::size(workloads); ++i) {
    const Workload& w = workloads[i];
    std::fprintf(f, "    \"%s\": {\n      \"budget_bytes\": %llu,\n", w.name,
                 static_cast<unsigned long long>(w.budget));
    json_run(f, "in_core", w.in_core);
    std::fprintf(f, ",\n");
    json_run(f, "naive", w.naive);
    std::fprintf(f, ",\n");
    json_run(f, "prefetch", w.prefetch);
    std::fprintf(f, ",\n      \"prefetch_speedup\": %.4f\n    }%s\n",
                 w.naive.sim_ms / w.prefetch.sim_ms,
                 i + 1 < std::size(workloads) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    bool ok = true;
    for (const Workload& w : workloads) {
      ok &= check(w.prefetch.sim_ms * 1.2 <= w.naive.sim_ms,
                  "prefetch pipeline should beat the naive streamer by 1.2x");
      ok &= check(w.prefetch.s.streamed_tasks > 0,
                  "the budget should force streamed passes");
      ok &= check(w.prefetch.s.bytes_spilled == w.naive.s.bytes_spilled &&
                      w.prefetch.s.bytes_refilled == w.naive.s.bytes_refilled &&
                      w.prefetch.s.pass_count == w.naive.s.pass_count,
                  "prefetch must not change residency traffic or pass counts");
      ok &= check(w.prefetch.s.transfers.bytes_total() ==
                      w.prefetch.s.bytes_spilled + w.prefetch.s.bytes_refilled,
                  "spill transfer ledger must balance write-backs + refills");
      ok &= check(w.in_core.s.transfers.bytes_total() == 0 &&
                      w.in_core.s.streamed_tasks == 0 &&
                      w.in_core.s.evictions == 0,
                  "the unlimited budget must not spill at all");
    }
    return ok ? 0 : 1;
  }
  return 0;
}
