// Figure 9 + Table 4: matrix multiplication via unmodified GPU routines,
// MAPS-Multi vs CUBLAS-XT (paper §5.4).
//
// A chain of 1,000 multiplications of two 8K matrices. Over MAPS-Multi, the
// CUBLAS-style routine runs with resident device buffers: after the first
// upload, no transfers occur. CUBLAS-XT's host-based API re-stages
// everything per call, destroying chained-kernel performance. Table 4's
// single-GPU column shows CUBLAS over MAPS-Multi within 0.2-1.3% of native
// CUBLAS while CUBLAS-XT is ~4-5x slower.
#include <vector>

#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

constexpr std::size_t kN = 8192;
constexpr int kChain = 1000;

/// Average per-multiplication time of the chain over MAPS-Multi.
double maps_chain_ms(const sim::DeviceSpec& spec, int gpus) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<float> dummy(1);
  Matrix<float> b(kN, kN, "B"), c1(kN, kN, "C1"), c2(kN, kN, "C2");
  b.Bind(dummy.data());
  c1.Bind(dummy.data());
  c2.Bind(dummy.data());
  simblas::Gemm(sched, c1, b, c2); // first call pays the uploads
  sched.WaitAll();
  const double t0 = node.now_ms();
  for (int i = 0; i < kChain / 2; ++i) {
    simblas::Gemm(sched, c2, b, c1);
    simblas::Gemm(sched, c1, b, c2);
  }
  sched.WaitAll();
  return (node.now_ms() - t0) / kChain;
}

/// Average per-multiplication time of the chain with the XT-style handle.
double xt_chain_ms(const sim::DeviceSpec& spec, int gpus) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  std::vector<int> devices;
  for (int d = 0; d < gpus; ++d) {
    devices.push_back(d);
  }
  simblas::XtHandle xt(node, devices);
  std::vector<float> a(1), b(1), c(1); // TimingOnly: contents unused
  xt.sgemm(kN, kN, kN, 1.0f, a.data(), b.data(), 0.0f, c.data()); // warm-up
  xt.synchronize();
  const double t0 = node.now_ms();
  // 1/10th of the chain is representative (the XT path has no cross-call
  // state); scale the count back up in the average.
  constexpr int kXtCalls = kChain / 10;
  for (int i = 0; i < kXtCalls; ++i) {
    xt.sgemm(kN, kN, kN, 1.0f, a.data(), b.data(), 0.0f, c.data());
  }
  xt.synchronize();
  return (node.now_ms() - t0) / kXtCalls;
}

/// Native "CUBLAS": the same tuned kernel invoked directly on one device
/// with resident buffers and no framework (Table 4 column 2).
double native_chain_ms(const sim::DeviceSpec& spec) {
  sim::Node node(sim::homogeneous_node(spec, 1), sim::ExecMode::TimingOnly);
  sim::Buffer* b = node.malloc_device(0, kN * kN * 4);
  sim::Buffer* c1 = node.malloc_device(0, kN * kN * 4);
  sim::Buffer* c2 = node.malloc_device(0, kN * kN * 4);
  (void)b;
  (void)c1;
  (void)c2;
  const auto s = node.default_stream(0);
  node.synchronize();
  const double t0 = node.now_ms();
  for (int i = 0; i < kChain; ++i) {
    simblas::sgemm(node, 0, s, kN, kN, kN, 1.0f, nullptr, nullptr, 0.0f,
                   nullptr);
  }
  node.synchronize();
  return (node.now_ms() - t0) / kChain;
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header("Figure 9 + Table 4: chained 8K SGEMM, "
                            "MAPS-Multi (unmodified CUBLAS) vs CUBLAS-XT");

  bench::ScalingTable table;
  struct T4Row {
    std::string device;
    double native, maps, xt;
  };
  std::vector<T4Row> t4;
  for (const auto& spec : sim::paper_device_models()) {
    for (int g = 1; g <= bench::kMaxGpus; ++g) {
      const double m = maps_chain_ms(spec, g);
      const double x = xt_chain_ms(spec, g);
      table.set("CUBLAS-over-MAPS/" + spec.name, g, m);
      table.set("CUBLAS-XT/" + spec.name, g, x);
      bench::register_sim_benchmark(
          "fig09/maps/" + spec.name + "/gpus:" + std::to_string(g), m);
      bench::register_sim_benchmark(
          "fig09/xt/" + spec.name + "/gpus:" + std::to_string(g), x);
    }
    t4.push_back(T4Row{spec.name, native_chain_ms(spec),
                       table.get("CUBLAS-over-MAPS/" + spec.name, 1),
                       table.get("CUBLAS-XT/" + spec.name, 1)});
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  table.print(
      "Figure 9 reproduction: avg ms per multiplication (speedup vs 1 GPU)");

  std::printf("\nTable 4 reproduction: single-GPU avg ms per multiplication\n");
  std::printf("  %-14s %10s %18s %12s %12s\n", "device", "CUBLAS",
              "CUBLAS-over-MAPS", "overhead", "CUBLAS-XT");
  for (const auto& r : t4) {
    std::printf("  %-14s %9.2f %18.2f %11.2f%% %11.2f\n", r.device.c_str(),
                r.native, r.maps, 100.0 * (r.maps - r.native) / r.native,
                r.xt);
  }
  std::printf(
      "\nPaper reference (Table 4): CUBLAS 365.21/338.65/245.31 ms; over\n"
      "MAPS-Multi +0.2-1.3%%; CUBLAS-XT 1393.26/1830.82/1017.64 ms. Fig 9:\n"
      "MAPS-Multi scaling surpasses CUBLAS-XT on all three platforms.\n");
  return rc;
}
