// Transfer planner: simulated end-to-end effect of topology-aware routing
// (DESIGN.md §5 "Transfer routing", EXPERIMENTS.md §"Transfer planning").
//
// Runs the two transfer-bound evaluation workloads at 4 GPUs with the
// planner enabled vs disabled and reports *simulated* milliseconds plus the
// byte-category breakdown from SchedulerStats::transfers:
//   - the Fig 9 unmodified-GEMM chain, whose Block2DTransposed inputs
//     all-gather every previous output to every device, and
//   - the Fig 13 NMF multiplicative-update loop (gathers, aggregations and
//     replicated factors).
// Planner-off keeps the Segment Location Monitor's sources verbatim, which
// is exactly the pre-planner scheduler; planner-on routes the same ops over
// the cheapest links with in-pair fan-out. Writes BENCH_transfer_plan.json
// (override with --out <path>).
//
// --smoke trims the iteration counts and asserts the planner wins on both
// workloads; wired as a `perf_smoke` ctest label next to sched_overhead.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "nmf/nmf.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

struct Run {
  double sim_ms = 0; // simulated time for the measured region
  TransferStats t;
};

Run run_gemm_chain(bool planner_on, int chain, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_transfer_planner_enabled(planner_on);

  std::vector<float> dummy(1);
  Matrix<float> b(8192, 8192, "B"), c1(8192, 8192, "C1"), c2(8192, 8192, "C2");
  b.Bind(dummy.data());
  c1.Bind(dummy.data());
  c2.Bind(dummy.data());
  // Transfer-bound variant of the Fig 9 chain: the transposed (all-gathered)
  // operand is the *previous output*, so every link broadcasts the freshly
  // written device stripes to all GPUs — the one-to-many pattern the
  // planner's fan-out trees target. Warmup outside the measured region
  // distributes B and runs the first link.
  sched.AnalyzeCall(Work{c2.height(), 1}, Block2D<float>(b),
                    Block2DTransposed<float>(c1),
                    StructuredInjective<float, 2>(c2));
  sched.AnalyzeCall(Work{c1.height(), 1}, Block2D<float>(b),
                    Block2DTransposed<float>(c2),
                    StructuredInjective<float, 2>(c1));
  simblas::Gemm(sched, b, c1, c2);
  sched.WaitAll();
  sched.reset_stats();

  const double t0 = node.now_ms();
  for (int i = 0; i < chain / 2; ++i) {
    simblas::Gemm(sched, b, c2, c1);
    simblas::Gemm(sched, b, c1, c2);
  }
  sched.WaitAll();

  Run r;
  r.sim_ms = node.now_ms() - t0;
  r.t = sched.stats().transfers;
  return r;
}

Run run_nmf(bool planner_on, int iterations, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_transfer_planner_enabled(planner_on);

  std::vector<float> v(1), w, h; // TimingOnly: backing never touched
  const nmf::Shape shape{};      // the paper's 16Kx4K, k=128
  const nmf::Result res = nmf::run_maps(sched, v, w, h, shape, iterations);

  Run r;
  r.sim_ms = res.sim_ms;
  r.t = sched.stats().transfers;
  return r;
}

void print_pair(const char* workload, const Run& off, const Run& on) {
  std::printf("\n%s\n", workload);
  std::printf("  %-10s %12s %10s %10s %10s %10s %10s %8s %8s\n", "planner",
              "sim ms", "h2d MB", "d2h MB", "p2p= MB", "p2px MB", "staged MB",
              "issued", "fanout");
  const auto row = [](const char* name, const Run& r) {
    const auto mb = [](std::uint64_t b) { return b / 1048576.0; };
    std::printf("  %-10s %12.3f %10.1f %10.1f %10.1f %10.1f %10.1f %8llu "
                "%8u\n",
                name, r.sim_ms, mb(r.t.bytes_h2d), mb(r.t.bytes_d2h),
                mb(r.t.bytes_p2p_same_bus), mb(r.t.bytes_p2p_cross_bus),
                mb(r.t.bytes_host_staged),
                static_cast<unsigned long long>(r.t.copies_issued),
                r.t.max_fanout_depth);
  };
  row("off", off);
  row("on", on);
  std::printf("  simulated speedup: %.3fx\n", off.sim_ms / on.sim_ms);
}

void json_run(std::FILE* f, const char* key, const Run& r) {
  std::fprintf(
      f,
      "      \"%s\": {\"sim_ms\": %.6f, \"bytes_h2d\": %llu, "
      "\"bytes_d2h\": %llu, \"bytes_p2p_same_bus\": %llu, "
      "\"bytes_p2p_cross_bus\": %llu, \"bytes_host_staged\": %llu, "
      "\"copies_planned\": %u, \"copies_issued\": %u, "
      "\"copies_rerouted\": %u, \"copies_coalesced\": %u, "
      "\"max_fanout_depth\": %u}",
      key, r.sim_ms, static_cast<unsigned long long>(r.t.bytes_h2d),
      static_cast<unsigned long long>(r.t.bytes_d2h),
      static_cast<unsigned long long>(r.t.bytes_p2p_same_bus),
      static_cast<unsigned long long>(r.t.bytes_p2p_cross_bus),
      static_cast<unsigned long long>(r.t.bytes_host_staged),
      r.t.copies_planned, r.t.copies_issued, r.t.copies_rerouted,
      r.t.copies_coalesced, r.t.max_fanout_depth);
}

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
  }
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_transfer_plan.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int chain = smoke ? 4 : 20;
  const int nmf_iters = smoke ? 10 : 40;
  const int gpus = 4;

  bench::print_setup_header(
      "Transfer planning: topology-aware routing on vs off (simulated time)");

  struct Workload {
    const char* name;
    Run off, on;
  } workloads[] = {
      // The simulator is deterministic: one run per configuration is exact.
      {"gemm_chain", run_gemm_chain(false, chain, gpus),
       run_gemm_chain(true, chain, gpus)},
      {"nmf", run_nmf(false, nmf_iters, gpus), run_nmf(true, nmf_iters, gpus)},
  };
  for (const Workload& w : workloads) {
    print_pair(w.name, w.off, w.on);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"transfer_plan\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"device\": \"%s\",\n", sim::gtx780().name.c_str());
  std::fprintf(f, "  \"gpus\": %d,\n  \"workloads\": {\n", gpus);
  for (std::size_t i = 0; i < std::size(workloads); ++i) {
    const Workload& w = workloads[i];
    std::fprintf(f, "    \"%s\": {\n", w.name);
    json_run(f, "planner_off", w.off);
    std::fprintf(f, ",\n");
    json_run(f, "planner_on", w.on);
    std::fprintf(f, ",\n      \"simulated_speedup\": %.4f\n    }%s\n",
                 w.off.sim_ms / w.on.sim_ms,
                 i + 1 < std::size(workloads) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    bool ok = true;
    for (const Workload& w : workloads) {
      ok &= check(w.on.sim_ms < w.off.sim_ms,
                  "planner-on simulated time should beat planner-off");
      ok &= check(w.on.t.copies_rerouted > 0,
                  "planner should reroute at least one copy");
      ok &= check(w.on.t.max_fanout_depth >= 2,
                  "expected replica forwarding (fan-out depth >= 2)");
    }
    return ok ? 0 : 1;
  }
  return 0;
}
