// Figure 6: framework scaling over multiple GPUs (paper §5.1).
//
// Three applications, 1-4 GPUs on each of the three device models:
//  * Game of Life (MAPS-Multi kernel with automatic ILP) — requires two-line
//    boundary exchanges per iteration; paper: ~3.68x average on 4 GPUs.
//  * Histogram (MAPS-Multi, device-level aggregators) — no inter-GPU
//    communication; paper: up to ~3.94x.
//  * SGEMM (unmodified CUBLAS-style routine, §4.6) — no inter-GPU
//    communication; paper: up to ~3.93x.
#include <memory>
#include <vector>

#include "apps/game_of_life.hpp"
#include "apps/histogram.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

constexpr std::size_t kSize = 8192;
constexpr int kIterations = 100;

double gol_ms_per_iter(const sim::DeviceSpec& spec, int gpus) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<int> dummy(1);
  Matrix<int> a(kSize, kSize, "A"), b(kSize, kSize, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  return apps::gol::run(sched, a, b, kIterations, apps::gol::Scheme::MapsIlp) /
         kIterations;
}

double histogram_ms_per_iter(const sim::DeviceSpec& spec, int gpus) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<int> dummy(1);
  Matrix<int> img(kSize, kSize, "image");
  Vector<int> hist(apps::histogram::kBins, "hist");
  img.Bind(dummy.data());
  hist.Bind(dummy.data());
  return apps::histogram::run(sched, img, hist, kIterations,
                              apps::histogram::Scheme::Maps) /
         kIterations;
}

double sgemm_ms_per_iter(const sim::DeviceSpec& spec, int gpus) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<float> dummy(1);
  Matrix<float> b(kSize, kSize, "B"), c1(kSize, kSize, "C1"),
      c2(kSize, kSize, "C2");
  b.Bind(dummy.data());
  c1.Bind(dummy.data());
  c2.Bind(dummy.data());
  // Chained multiplications with resident buffers (as in §5.4).
  simblas::Gemm(sched, c1, b, c2); // warm-up: uploads B and C1
  sched.WaitAll();
  const double t0 = node.now_ms();
  for (int i = 0; i < kIterations / 2; ++i) {
    simblas::Gemm(sched, c2, b, c1);
    simblas::Gemm(sched, c1, b, c2);
  }
  sched.WaitAll();
  return (node.now_ms() - t0) / kIterations;
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header(
      "Figure 6: Game of Life / Histogram / SGEMM scaling, 1-4 GPUs");

  bench::ScalingTable table;
  for (const auto& spec : sim::paper_device_models()) {
    for (int g = 1; g <= bench::kMaxGpus; ++g) {
      const double gol = gol_ms_per_iter(spec, g);
      const double hist = histogram_ms_per_iter(spec, g);
      const double gemm = sgemm_ms_per_iter(spec, g);
      table.set("GameOfLife/" + spec.name, g, gol);
      table.set("Histogram/" + spec.name, g, hist);
      table.set("SGEMM/" + spec.name, g, gemm);
      bench::register_sim_benchmark(
          "fig06/gol/" + spec.name + "/gpus:" + std::to_string(g), gol);
      bench::register_sim_benchmark(
          "fig06/hist/" + spec.name + "/gpus:" + std::to_string(g), hist);
      bench::register_sim_benchmark(
          "fig06/sgemm/" + spec.name + "/gpus:" + std::to_string(g), gemm);
    }
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  table.print("Figure 6 reproduction: time per iteration (speedup vs 1 GPU)");
  std::printf("\nPaper reference: GoL ~3.68x avg, histogram up to ~3.94x, "
              "SGEMM up to ~3.93x on 4 GPUs;\n"
              "consistent across all three platforms.\n");
  return rc;
}
