// Ablations of the framework's design choices (DESIGN.md §5).
//
//  A. Direct peer-to-peer boundary exchanges vs host-staged exchanges
//     (the §6.2 argument against NMF-mGPU's MPI path), on the Game of Life.
//  B. ILP sweep: elements-per-thread from 1x1 to 4x4 on the Game of Life
//     (extends Fig 7's single 4x2 data point; §4.5.1).
//  C. Device-side ReduceScatter vs host-gather aggregation of duplicated
//     reductive outputs (the framework extension used by the hybrid
//     deep-learning trainer).
#include <vector>

#include "apps/game_of_life.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"

namespace {

using namespace maps::multi;

double gol_ms(int gpus, bool host_staged) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_force_host_staged(host_staged);
  std::vector<int> dummy(1);
  Matrix<int> a(8192, 8192, "A"), b(8192, 8192, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  return apps::gol::run(sched, a, b, 100, apps::gol::Scheme::MapsIlp) / 100;
}

template <int ILPX, int ILPY>
double gol_ilp_ms() {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 1),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<int> dummy(1);
  Matrix<int> a(8192, 8192, "A"), b(8192, 8192, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  using Win = Window2D<int, 1, maps::WRAP, ILPX, ILPY>;
  using Out = StructuredInjective<int, 2, ILPX, ILPY>;
  sched.AnalyzeCall(Win(a), Out(b));
  sched.AnalyzeCall(Win(b), Out(a));
  sched.WaitAll();
  const double t0 = node.now_ms();
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      sched.Invoke(apps::gol::maps_cost_hints(),
                   apps::gol::MapsTick<ILPX, ILPY>{}, Win(a), Out(b));
    } else {
      sched.Invoke(apps::gol::maps_cost_hints(),
                   apps::gol::MapsTick<ILPX, ILPY>{}, Win(b), Out(a));
    }
  }
  sched.WaitAll();
  return (node.now_ms() - t0) / 100;
}

/// Duplicated-partial aggregation, either on the host (Gather) or on the
/// devices (ReduceScatter); returns ms per aggregation.
double aggregate_ms(bool reduce_scatter, std::size_t elems) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), 4),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<float> host(1);
  Vector<float> in(elems, "in"), acc(elems, "acc");
  in.Bind(host.data());
  acc.Bind(host.data());
  auto routine = [](RoutineArgs& a) {
    sim::LaunchStats st;
    st.label = "produce_partial";
    st.blocks = 64;
    a.node->launch(a.stream, st, nullptr);
    return true;
  };
  sched.InvokeUnmodified(routine, nullptr, Work{elems},
                         Block2D<float>(static_cast<Datum&>(in)),
                         SumReduced<float>(acc));
  sched.WaitAll();
  const double t0 = node.now_ms();
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    sched.InvokeUnmodified(routine, nullptr, Work{elems},
                           Block2D<float>(static_cast<Datum&>(in)),
                           SumReduced<float>(acc));
    if (reduce_scatter) {
      sched.ReduceScatter(acc, Work{elems});
      sched.WaitAll();
    } else {
      sched.Gather(acc);
    }
  }
  return (node.now_ms() - t0) / reps;
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header("Ablations: P2P exchanges, ILP depth, "
                            "device-side aggregation (GTX 780)");

  // A. P2P vs host-staged exchanges.
  struct ARow {
    int gpus;
    double p2p, staged;
  };
  std::vector<ARow> a_rows;
  for (int g : {2, 4}) {
    a_rows.push_back(ARow{g, gol_ms(g, false), gol_ms(g, true)});
    bench::register_sim_benchmark(
        "ablation/exchange/p2p/gpus:" + std::to_string(g), a_rows.back().p2p);
    bench::register_sim_benchmark(
        "ablation/exchange/host_staged/gpus:" + std::to_string(g),
        a_rows.back().staged);
  }

  // B. ILP sweep.
  struct BRow {
    const char* ilp;
    double ms;
  };
  std::vector<BRow> b_rows = {
      {"1x1", gol_ilp_ms<1, 1>()}, {"2x1", gol_ilp_ms<2, 1>()},
      {"2x2", gol_ilp_ms<2, 2>()}, {"4x2", gol_ilp_ms<4, 2>()},
      {"4x4", gol_ilp_ms<4, 4>()},
  };
  for (const auto& r : b_rows) {
    bench::register_sim_benchmark(std::string("ablation/ilp/") + r.ilp, r.ms);
  }

  // C. Aggregation path.
  struct CRow {
    std::size_t elems;
    double gather, rs;
  };
  std::vector<CRow> c_rows;
  for (std::size_t elems : {1u << 16, 1u << 20, 1u << 22}) {
    c_rows.push_back(CRow{elems, aggregate_ms(false, elems),
                          aggregate_ms(true, elems)});
    bench::register_sim_benchmark(
        "ablation/aggregate/host_gather/elems:" + std::to_string(elems),
        c_rows.back().gather);
    bench::register_sim_benchmark(
        "ablation/aggregate/reduce_scatter/elems:" + std::to_string(elems),
        c_rows.back().rs);
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  std::printf("\nA. Game of Life (8K^2) boundary exchanges, ms/iteration:\n");
  std::printf("  %6s %12s %14s %10s\n", "GPUs", "direct P2P", "host-staged",
              "penalty");
  for (const auto& r : a_rows) {
    std::printf("  %6d %11.3f %14.3f %9.2fx\n", r.gpus, r.p2p, r.staged,
                r.staged / r.p2p);
  }

  std::printf("\nB. ILP depth sweep (single GPU, 8K^2 Game of Life):\n");
  for (const auto& r : b_rows) {
    std::printf("  ILP %-4s %8.3f ms/iter (%.2fx vs 1x1)\n", r.ilp, r.ms,
                b_rows[0].ms / r.ms);
  }

  std::printf("\nC. Aggregating 4 duplicated float partials, ms/op:\n");
  std::printf("  %10s %14s %16s\n", "elements", "host Gather",
              "ReduceScatter");
  for (const auto& r : c_rows) {
    std::printf("  %10zu %13.3f %16.3f\n", r.elems, r.gather, r.rs);
  }
  return rc;
}
