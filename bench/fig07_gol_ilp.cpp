// Figure 7: Game of Life single-GPU performance across implementation
// schemes (paper §5.2).
//
// An 8K^2 world, three schemes: naive (direct global reads), MAPS-Multi with
// shared-memory staging (no ILP), and MAPS-Multi with automatic ILP at
// 8 elements (4 columns x 2 rows) per thread. Paper: the naive version
// outperforms non-ILP MAPS by ~20-50% (shared-memory latency vs few integer
// ops); ILP yields ~2.42x over naive on all architectures.
#include <vector>

#include "apps/game_of_life.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace maps::multi;

double gol_ms(const sim::DeviceSpec& spec, apps::gol::Scheme scheme) {
  sim::Node node(sim::homogeneous_node(spec, 1), sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<int> dummy(1);
  Matrix<int> a(8192, 8192, "A"), b(8192, 8192, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  return apps::gol::run(sched, a, b, 100, scheme) / 100;
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header(
      "Figure 7: Game of Life single-GPU, naive vs MAPS vs MAPS+ILP (8K^2)");

  struct Row {
    std::string device;
    double naive, maps, ilp;
  };
  std::vector<Row> rows;
  for (const auto& spec : sim::paper_device_models()) {
    Row r;
    r.device = spec.name;
    r.naive = gol_ms(spec, apps::gol::Scheme::Naive);
    r.maps = gol_ms(spec, apps::gol::Scheme::Maps);
    r.ilp = gol_ms(spec, apps::gol::Scheme::MapsIlp);
    rows.push_back(r);
    bench::register_sim_benchmark("fig07/naive/" + spec.name, r.naive);
    bench::register_sim_benchmark("fig07/maps/" + spec.name, r.maps);
    bench::register_sim_benchmark("fig07/maps_ilp_4x2/" + spec.name, r.ilp);
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  std::printf("\nFigure 7 reproduction: ms per iteration (8K^2 world)\n");
  std::printf("  %-14s %10s %10s %12s %16s %16s\n", "device", "naive",
              "MAPS", "MAPS+ILP", "maps/naive", "naive/ilp");
  for (const auto& r : rows) {
    std::printf("  %-14s %9.3f %10.3f %12.3f %15.2fx %15.2fx\n",
                r.device.c_str(), r.naive, r.maps, r.ilp, r.maps / r.naive,
                r.naive / r.ilp);
  }
  std::printf("\nPaper reference: naive beats non-ILP MAPS by ~20-50%%; "
              "ILP is ~2.42x faster than naive on all architectures.\n");
  return rc;
}
