// Cluster scale-out: hierarchical transfer planning at 16-64 simulated GPUs
// (DESIGN.md §5.14, EXPERIMENTS.md §"Cluster scale-out").
//
// Runs the Game of Life and the chained SGEMM on 2-8 nodes of 8 GTX 780s
// under sim::Topology::cluster and reports, per configuration:
//   - GoL simulated time with hierarchical planning (planner on) vs flat
//     host-staged routing (planner off + forced host staging) — the paper's
//     node-boundary exchange is exactly where crossing the network once per
//     destination *node* instead of once per destination device pays;
//   - the communication-free SGEMM chain as the scaling control;
//   - planning-cost columns: host microseconds per built plan (wall-clock,
//     machine-dependent — excluded from the regression gate) and the
//     planner's candidates-scanned-per-routed-copy (deterministic — the
//     asymptotics gate lives on this counter, not on noisy timers).
//
// --smoke trims sizes/iterations and asserts (a) hierarchical planning beats
// flat routing on GoL at every multi-node size, (b) cross-node routes are
// actually planned, and (c) the per-copy candidate scan grows sub-linearly
// in device count from 16 to 64 devices (sub-quadratic total planning).
// Wired as a `perf_smoke` ctest label next to the other four benches.
// Writes BENCH_cluster.json (override with --out <path>).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/game_of_life.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

struct Run {
  double sim_ms = 0;          // simulated time for the measured region
  double plan_us_per_task = 0; // host us per built plan (noisy)
  double monitor_us_per_task = 0;
  double route_us_per_task = 0;
  double scans_per_copy = 0; // deterministic planner asymptotics
  std::uint64_t placement_reorders = 0;
  TransferStats t;
};

enum class Mode {
  Hier, // planner on, monolithic network reservations: the PR 8 baseline
  Flat, // planner off + forced host staging: every route bounces via hosts
  Pipe, // planner on + pipelined staged crossings + topology-aware placement
};

sim::Topology make_topo(int nodes, int gpus_per_node, Mode mode) {
  sim::Topology topo = sim::Topology::cluster(nodes, gpus_per_node);
  // Hier/Flat keep the PR 8 whole-duration reservation model so the Pipe
  // rows isolate exactly what the leg-pipelined crossings buy.
  topo.network_pipelining = mode == Mode::Pipe;
  return topo;
}

void configure(Scheduler& sched, Mode mode, std::size_t stripe_bytes,
               int placement_override = -1) {
  sched.set_transfer_planner_enabled(mode != Mode::Flat);
  sched.set_force_host_staged(mode == Mode::Flat);
  const bool placement =
      placement_override >= 0 ? placement_override != 0 : mode == Mode::Pipe;
  sched.set_placement_enabled(placement);
  if (mode == Mode::Pipe) {
    // Chunk at half the per-device partition stripe, capped at 2 MiB, so
    // every stripe-sized crossing splits into a >=2-deep pipeline (the
    // default 4 MiB chunk equals or exceeds the whole stripe at several of
    // these device counts, leaving nothing in flight to overlap) and the
    // full-size stripes pipeline several pieces deep. Much finer chunks pay
    // the per-piece software setup latency with no extra overlap to win.
    sched.set_copy_chunk_bytes(std::min<std::size_t>(
        2u << 20, std::max<std::size_t>(256u << 10, stripe_bytes / 2)));
  }
}

Run finish(sim::Node& node, Scheduler& sched, double t0_ms) {
  Run r;
  r.sim_ms = node.now_ms() - t0_ms;
  const SchedulerStats& st = sched.stats();
  const double tasks = static_cast<double>(std::max<std::uint64_t>(
      1, st.plans_built));
  r.plan_us_per_task = st.plan_time_us / tasks;
  r.monitor_us_per_task = st.monitor_plan_us / tasks;
  r.route_us_per_task = st.route_plan_us / tasks;
  r.placement_reorders = st.placement.reorders;
  r.t = st.transfers;
  if (r.t.copies_planned > 0) {
    r.scans_per_copy = static_cast<double>(r.t.candidates_scanned) /
                       static_cast<double>(r.t.copies_planned);
  }
  return r;
}

Run run_gol(int nodes, int gpus_per_node, std::size_t size, int iterations,
            Mode mode, std::vector<int> device_order = {},
            int placement_override = -1) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), nodes * gpus_per_node),
                 make_topo(nodes, gpus_per_node, mode),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node, std::move(device_order));
  const std::size_t stripe_bytes =
      size * sizeof(int) * (size / (nodes * gpus_per_node));
  configure(sched, mode, stripe_bytes, placement_override);
  std::vector<int> dummy(1);
  Matrix<int> a(size, size, "A"), b(size, size, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  // One warmup tick distributes the board; the measured region then exposes
  // the steady-state node-boundary exchange.
  apps::gol::run(sched, a, b, 2, apps::gol::Scheme::MapsIlp);
  // Placement settles on the FIRST halo task, so the reorder count lives in
  // the warmup region — grab it before the stats reset.
  const std::uint64_t warm_reorders = sched.stats().placement.reorders;
  sched.reset_stats();
  const double t0 = node.now_ms();
  apps::gol::run(sched, a, b, iterations, apps::gol::Scheme::MapsIlp);
  Run r = finish(node, sched, t0);
  r.placement_reorders += warm_reorders;
  r.sim_ms /= iterations;
  return r;
}

// `broadcast`: the transposed (all-gathered) operand is the previous link's
// output, so every link one-to-many distributes freshly written device
// stripes across the whole cluster — the pattern where crossing the network
// once per destination *node* (then fanning out in-node) beats flat routing
// by an order of magnitude. `control` keeps the all-gathered operand
// constant, so after the warmup distribution the chain is communication-free
// and shows pure compute scaling.
enum class Gemm { Broadcast, Control };

Run run_sgemm(int nodes, int gpus_per_node, std::size_t size, int chain,
              Mode mode, Gemm kind) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), nodes * gpus_per_node),
                 make_topo(nodes, gpus_per_node, mode),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  const std::size_t stripe_bytes =
      size * sizeof(float) * (size / (nodes * gpus_per_node));
  configure(sched, mode, stripe_bytes);
  std::vector<float> dummy(1);
  Matrix<float> b(size, size, "B"), c1(size, size, "C1"), c2(size, size, "C2");
  b.Bind(dummy.data());
  c1.Bind(dummy.data());
  c2.Bind(dummy.data());
  if (kind == Gemm::Broadcast) {
    sched.AnalyzeCall(Work{c2.height(), 1}, Block2D<float>(b),
                      Block2DTransposed<float>(c1),
                      StructuredInjective<float, 2>(c2));
    sched.AnalyzeCall(Work{c1.height(), 1}, Block2D<float>(b),
                      Block2DTransposed<float>(c2),
                      StructuredInjective<float, 2>(c1));
  }
  // Warmup in the measured orientation: distributes the all-gathered
  // operand(s) and runs the first link outside the measured region.
  if (kind == Gemm::Broadcast) {
    simblas::Gemm(sched, b, c1, c2);
  } else {
    simblas::Gemm(sched, c1, b, c2);
  }
  sched.WaitAll();
  sched.reset_stats();
  const double t0 = node.now_ms();
  for (int i = 0; i < chain / 2; ++i) {
    if (kind == Gemm::Broadcast) {
      simblas::Gemm(sched, b, c2, c1);
      simblas::Gemm(sched, b, c1, c2);
    } else {
      simblas::Gemm(sched, c2, b, c1);
      simblas::Gemm(sched, c1, b, c2);
    }
  }
  sched.WaitAll();
  Run r = finish(node, sched, t0);
  r.sim_ms /= chain;
  return r;
}

void json_run(std::FILE* f, const char* key, const Run& r, const char* tail) {
  std::fprintf(
      f,
      "        \"%s\": {\"sim_ms\": %.6f, \"bytes_h2d\": %llu, "
      "\"bytes_d2h\": %llu, \"bytes_p2p_same_bus\": %llu, "
      "\"bytes_p2p_cross_bus\": %llu, \"bytes_host_staged\": %llu, "
      "\"bytes_net_send\": %llu, \"bytes_net_recv\": %llu, "
      "\"bytes_net_staged\": %llu, \"copies_planned\": %u, "
      "\"copies_issued\": %u, \"copies_rerouted\": %u, "
      "\"staged_routes_planned\": %u, \"candidates_scanned\": %llu, "
      "\"scans_per_copy\": %.4f, \"max_pipeline_depth\": %u, "
      "\"bytes_chunked_network\": %llu, \"bytes_chunked_intranode\": %llu, "
      "\"plan_us_per_task\": %.3f, "
      "\"monitor_us_per_task\": %.3f, \"route_us_per_task\": %.3f}%s\n",
      key, r.sim_ms, static_cast<unsigned long long>(r.t.bytes_h2d),
      static_cast<unsigned long long>(r.t.bytes_d2h),
      static_cast<unsigned long long>(r.t.bytes_p2p_same_bus),
      static_cast<unsigned long long>(r.t.bytes_p2p_cross_bus),
      static_cast<unsigned long long>(r.t.bytes_host_staged),
      static_cast<unsigned long long>(r.t.bytes_net_send),
      static_cast<unsigned long long>(r.t.bytes_net_recv),
      static_cast<unsigned long long>(r.t.bytes_net_staged),
      r.t.copies_planned, r.t.copies_issued, r.t.copies_rerouted,
      r.t.staged_routes_planned,
      static_cast<unsigned long long>(r.t.candidates_scanned),
      r.scans_per_copy, r.t.max_pipeline_depth,
      static_cast<unsigned long long>(r.t.bytes_chunked_network),
      static_cast<unsigned long long>(r.t.bytes_chunked_intranode),
      r.plan_us_per_task, r.monitor_us_per_task,
      r.route_us_per_task, tail);
}

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
  }
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const std::size_t size = smoke ? 4096 : 8192;
  const int gol_iters = smoke ? 6 : 50;
  const int chain = smoke ? 4 : 20;

  bench::print_setup_header(
      "Cluster scale-out: hierarchical planning at 2-8 nodes of 8x GTX 780");

  struct Config {
    int nodes, gpus_per_node;
    Run gol_hier, gol_flat, gol_pipe, bcast_hier, bcast_flat, bcast_pipe,
        control;
  } configs[] = {{2, 8}, {4, 8}, {8, 8}};

  for (Config& c : configs) {
    // The simulator is deterministic: one run per configuration is exact.
    c.gol_hier = run_gol(c.nodes, c.gpus_per_node, size, gol_iters, Mode::Hier);
    c.gol_flat = run_gol(c.nodes, c.gpus_per_node, size, gol_iters, Mode::Flat);
    c.gol_pipe = run_gol(c.nodes, c.gpus_per_node, size, gol_iters, Mode::Pipe);
    c.bcast_hier = run_sgemm(c.nodes, c.gpus_per_node, size, chain, Mode::Hier,
                             Gemm::Broadcast);
    c.bcast_flat = run_sgemm(c.nodes, c.gpus_per_node, size, chain, Mode::Flat,
                             Gemm::Broadcast);
    c.bcast_pipe = run_sgemm(c.nodes, c.gpus_per_node, size, chain, Mode::Pipe,
                             Gemm::Broadcast);
    c.control = run_sgemm(c.nodes, c.gpus_per_node, size, chain, Mode::Hier,
                          Gemm::Control);
  }

  // Topology-aware placement A/B: the scheduler is handed a deliberately
  // interleaved device enumeration (segment i on node i%2), the worst case
  // for halo locality — every partition boundary crosses the network.
  // Placement restores the per-node grouping without touching results.
  std::vector<int> interleaved;
  for (int g = 0; g < 8; ++g) {
    for (int n = 0; n < 2; ++n) {
      interleaved.push_back(n * 8 + g);
    }
  }
  const Run demo_off = run_gol(2, 8, size, gol_iters, Mode::Pipe, interleaved,
                               /*placement_override=*/0);
  const Run demo_on = run_gol(2, 8, size, gol_iters, Mode::Pipe, interleaved,
                              /*placement_override=*/1);

  std::printf("\nGame of Life, per iteration (pipelined vs hierarchical vs "
              "flat host-staged):\n");
  std::printf("  %-8s %6s %12s %12s %12s %9s %9s %12s\n", "nodes", "GPUs",
              "pipe ms", "hier ms", "flat ms", "pipe/hier", "depth",
              "scans/copy");
  for (const Config& c : configs) {
    const Run& p = c.gol_pipe;
    std::printf("  %-8d %6d %12.3f %12.3f %12.3f %8.2fx %9u %12.2f\n",
                c.nodes, c.nodes * c.gpus_per_node, p.sim_ms,
                c.gol_hier.sim_ms, c.gol_flat.sim_ms,
                c.gol_hier.sim_ms / p.sim_ms, p.t.max_pipeline_depth,
                p.scans_per_copy);
  }
  std::printf("\nSGEMM broadcast chain, per link (one-to-many distribution "
              "of the previous output):\n");
  std::printf("  %-8s %6s %12s %12s %12s %9s %9s %10s\n", "nodes", "GPUs",
              "pipe ms", "hier ms", "flat ms", "pipe/hier", "depth",
              "net MB");
  for (const Config& c : configs) {
    const Run& p = c.bcast_pipe;
    const double net_mb =
        (p.t.bytes_net_send + p.t.bytes_net_recv + p.t.bytes_net_staged) /
        1048576.0;
    std::printf("  %-8d %6d %12.3f %12.3f %12.3f %8.2fx %9u %10.1f\n",
                c.nodes, c.nodes * c.gpus_per_node, p.sim_ms,
                c.bcast_hier.sim_ms, c.bcast_flat.sim_ms,
                c.bcast_hier.sim_ms / p.sim_ms, p.t.max_pipeline_depth,
                net_mb);
  }
  std::printf("\nPlacement A/B (2x8, interleaved device enumeration):\n");
  std::printf("  off %.3f ms  on %.3f ms  speedup %.2fx  reorders %llu\n",
              demo_off.sim_ms, demo_on.sim_ms,
              demo_off.sim_ms / demo_on.sim_ms,
              static_cast<unsigned long long>(demo_on.placement_reorders));
  std::printf("\nSGEMM control chain, per link (communication-free):\n");
  std::printf("  %-8s %6s %12s %10s\n", "nodes", "GPUs", "sim ms", "speedup");
  for (const Config& c : configs) {
    std::printf("  %-8d %6d %12.3f %9.2fx\n", c.nodes,
                c.nodes * c.gpus_per_node, c.control.sim_ms,
                configs[0].control.sim_ms / c.control.sim_ms);
  }

  // The asymptotics claims, on the GoL steady state (bounded copies per
  // task), 16 -> 64 devices (4x): the per-copy candidate scan must grow
  // sub-linearly (it is O(gpus-per-node + nodes), not O(devices)), and total
  // scans per built plan — copies/task x scan width, the dominant planning
  // term — must grow sub-quadratically. Both counters are deterministic, so
  // they are gated exactly; the wall-clock planning columns above are
  // informational.
  const double scan_16 = configs[0].gol_hier.scans_per_copy;
  const double scan_64 = configs[2].gol_hier.scans_per_copy;
  const double scan_ratio = scan_16 > 0 ? scan_64 / scan_16 : 0.0;
  const double total_16 =
      static_cast<double>(configs[0].gol_hier.t.candidates_scanned);
  const double total_64 =
      static_cast<double>(configs[2].gol_hier.t.candidates_scanned);
  const double total_ratio = total_16 > 0 ? total_64 / total_16 : 0.0;
  const double device_ratio =
      static_cast<double>(configs[2].nodes * configs[2].gpus_per_node) /
      static_cast<double>(configs[0].nodes * configs[0].gpus_per_node);
  std::printf("\nplanner scan growth 16->64 devices: %.2fx per copy, %.2fx "
              "total (device ratio %.0fx)\n",
              scan_ratio, total_ratio, device_ratio);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"cluster\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"device\": \"%s\",\n", sim::gtx780().name.c_str());
  std::fprintf(f, "  \"configs\": {\n");
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    const Config& c = configs[i];
    std::fprintf(f, "    \"%dx%d\": {\n      \"nodes\": %d, \"gpus\": %d,\n",
                 c.nodes, c.gpus_per_node, c.nodes,
                 c.nodes * c.gpus_per_node);
    std::fprintf(f, "      \"gol\": {\n");
    json_run(f, "pipe", c.gol_pipe, ",");
    json_run(f, "hier", c.gol_hier, ",");
    json_run(f, "flat", c.gol_flat, ",");
    std::fprintf(f, "        \"simulated_speedup\": %.4f,\n",
                 c.gol_flat.sim_ms / c.gol_hier.sim_ms);
    std::fprintf(f, "        \"pipelined_speedup\": %.4f\n      },\n",
                 c.gol_hier.sim_ms / c.gol_pipe.sim_ms);
    std::fprintf(f, "      \"sgemm_broadcast\": {\n");
    json_run(f, "pipe", c.bcast_pipe, ",");
    json_run(f, "hier", c.bcast_hier, ",");
    json_run(f, "flat", c.bcast_flat, ",");
    std::fprintf(f, "        \"simulated_speedup\": %.4f,\n",
                 c.bcast_flat.sim_ms / c.bcast_hier.sim_ms);
    std::fprintf(f, "        \"pipelined_speedup\": %.4f\n      },\n",
                 c.bcast_hier.sim_ms / c.bcast_pipe.sim_ms);
    std::fprintf(f, "      \"sgemm_control\": {\n");
    json_run(f, "hier", c.control, "");
    std::fprintf(f, "      }\n    }%s\n",
                 i + 1 < std::size(configs) ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"placement_demo\": {\"off_ms\": %.6f, \"on_ms\": %.6f, "
               "\"speedup\": %.4f, \"reorders\": %llu},\n",
               demo_off.sim_ms, demo_on.sim_ms,
               demo_off.sim_ms / demo_on.sim_ms,
               static_cast<unsigned long long>(demo_on.placement_reorders));
  std::fprintf(f,
               "  \"planning\": {\"scan_ratio_64v16\": %.4f, "
               "\"total_scan_ratio_64v16\": %.4f, \"device_ratio\": %.1f}\n}\n",
               scan_ratio, total_ratio, device_ratio);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (smoke) {
    bool ok = true;
    for (const Config& c : configs) {
      ok &= check(c.gol_hier.sim_ms < c.gol_flat.sim_ms,
                  "hierarchical planning should beat flat host-staged "
                  "routing on the GoL node-boundary exchange");
      ok &= check(c.gol_hier.t.staged_routes_planned > 0,
                  "multi-node GoL should plan cross-network routes");
      const std::uint64_t net = c.gol_hier.t.bytes_net_send +
                                c.gol_hier.t.bytes_net_recv +
                                c.gol_hier.t.bytes_net_staged;
      ok &= check(net > 0, "node-boundary exchange should cross the network");
      ok &= check(c.bcast_flat.sim_ms > 2.0 * c.bcast_hier.sim_ms,
                  "hierarchical planning should beat flat routing by >2x on "
                  "the cross-node one-to-many distribution");
      ok &= check(c.bcast_hier.t.bytes_net_send + c.bcast_hier.t.bytes_net_recv +
                          c.bcast_hier.t.bytes_net_staged <
                      c.bcast_flat.t.bytes_net_send +
                          c.bcast_flat.t.bytes_net_recv +
                          c.bcast_flat.t.bytes_net_staged,
                  "hierarchical fan-out should move fewer bytes over the "
                  "network than flat routing (one crossing per node)");
      ok &= check(c.bcast_pipe.sim_ms * 1.3 <= c.bcast_hier.sim_ms,
                  "pipelined crossings + placement should beat the PR 8 "
                  "hierarchical baseline by >=1.3x on the SGEMM broadcast "
                  "chain");
      ok &= check(c.gol_pipe.sim_ms < c.gol_hier.sim_ms,
                  "pipelined crossings should beat the hierarchical baseline "
                  "on the GoL halo exchange at every multi-node size");
      ok &= check(c.bcast_pipe.t.max_pipeline_depth > 1,
                  "chunked network routes should be in flight on the "
                  "broadcast chain");
      // Chunking is purely structural: the same rows move over the same
      // links, so byte totals are invariant under it. (Neither workload
      // triggers a placement reorder under the default ascending
      // enumeration, so the comparison isolates chunking.)
      ok &= check(c.bcast_pipe.t.bytes_total() == c.bcast_hier.t.bytes_total(),
                  "bytes_total must be invariant under chunked crossings "
                  "(sgemm)");
      ok &= check(c.gol_pipe.t.bytes_total() == c.gol_hier.t.bytes_total(),
                  "bytes_total must be invariant under chunked crossings "
                  "(gol)");
    }
    ok &= check(demo_on.sim_ms < demo_off.sim_ms,
                "topology-aware placement should beat the interleaved "
                "enumeration with placement off");
    ok &= check(demo_on.placement_reorders > 0,
                "the interleaved enumeration should trigger a placement "
                "reorder");
    ok &= check(scan_ratio > 0 && scan_ratio < device_ratio,
                "per-copy candidate scan must grow sub-linearly in device "
                "count");
    ok &= check(total_ratio > 0 && total_ratio < device_ratio * device_ratio,
                "total candidate scans per task must grow sub-quadratically "
                "in device count");
    return ok ? 0 : 1;
  }
  return 0;
}
