// Figure 13: NMF performance, MAPS-Multi vs NMF-mGPU (paper §6.2).
//
// Factorizing a 16K x 4K matrix with k = 128 on 1-4 GPUs of each device
// model. Paper: MAPS-Multi yields higher throughput and better scalability
// than NMF-mGPU on all device types (4x GTX 980 reach ~3.17x); the baseline
// is Kepler-tuned and exchanges data through the host over MPI/IPC, while
// MAPS-Multi uses direct peer-to-peer transfers.
#include <vector>

#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "nmf/nmf.hpp"

namespace {

constexpr int kIterations = 10;

double maps_ms(const sim::DeviceSpec& spec, int gpus) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  maps::multi::Scheduler sched(node);
  std::vector<float> v(1), w, h; // TimingOnly: backing never touched
  return nmf::run_maps(sched, v, w, h, nmf::Shape{}, kIterations).sim_ms /
         kIterations;
}

double baseline_ms(const sim::DeviceSpec& spec, int gpus) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  std::vector<float> v(1), w, h;
  return nmf::run_mgpu_baseline(node, v, w, h, nmf::Shape{}, kIterations,
                                gpus)
             .sim_ms /
         kIterations;
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header(
      "Figure 13: NMF of a 16K x 4K matrix (k=128), MAPS-Multi vs NMF-mGPU");

  bench::ScalingTable table;
  for (const auto& spec : sim::paper_device_models()) {
    for (int g = 1; g <= bench::kMaxGpus; ++g) {
      const double m = maps_ms(spec, g);
      const double b = baseline_ms(spec, g);
      table.set("MAPS-Multi/" + spec.name, g, m);
      table.set("NMF-mGPU/" + spec.name, g, b);
      bench::register_sim_benchmark(
          "fig13/maps/" + spec.name + "/gpus:" + std::to_string(g), m);
      bench::register_sim_benchmark(
          "fig13/nmf-mgpu/" + spec.name + "/gpus:" + std::to_string(g), b);
    }
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  table.print("Figure 13 reproduction: ms per NMF iteration "
              "(speedup vs 1 GPU)");
  std::printf(
      "\nPaper reference: MAPS-Multi has higher throughput and better\n"
      "scalability than NMF-mGPU on all device types (~3.17x on 4x GTX 980);\n"
      "the baseline's MPI exchanges pass through the host, MAPS-Multi uses\n"
      "direct peer-to-peer transfers. NMF-mGPU's kernels are Kepler-tuned\n"
      "(~15,000 lines vs a single 870-line MAPS-Multi file).\n");
  return rc;
}
