// Cluster extension (paper §8): scaling MAPS-Multi beyond one node.
//
// The paper's future-work section notes that extending the paradigm to
// clusters must contend with network latencies orders of magnitude above
// PCIe. This bench runs the Game of Life and the chained SGEMM on 4-16 GPUs
// arranged as 1-4 nodes of 4 GTX 780s: the communication-free SGEMM keeps
// scaling across nodes, while the stencil's node-boundary exchanges (staged
// through hosts + network) flatten its curve — quantifying why the paper
// calls for topology-aware scheduling.
#include <vector>

#include "apps/game_of_life.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

double gol_ms(int nodes, int gpus_per_node) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), nodes * gpus_per_node),
                 sim::Topology::cluster(nodes, gpus_per_node),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<int> dummy(1);
  Matrix<int> a(8192, 8192, "A"), b(8192, 8192, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  return apps::gol::run(sched, a, b, 100, apps::gol::Scheme::MapsIlp) / 100;
}

double sgemm_ms(int nodes, int gpus_per_node) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), nodes * gpus_per_node),
                 sim::Topology::cluster(nodes, gpus_per_node),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<float> dummy(1);
  Matrix<float> b(8192, 8192, "B"), c1(8192, 8192, "C1"), c2(8192, 8192, "C2");
  b.Bind(dummy.data());
  c1.Bind(dummy.data());
  c2.Bind(dummy.data());
  simblas::Gemm(sched, c1, b, c2);
  sched.WaitAll();
  const double t0 = node.now_ms();
  for (int i = 0; i < 20; ++i) {
    simblas::Gemm(sched, c2, b, c1);
    simblas::Gemm(sched, c1, b, c2);
  }
  sched.WaitAll();
  return (node.now_ms() - t0) / 40;
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header(
      "Cluster extension (paper §8): 1-4 nodes of 4x GTX 780");

  struct Config {
    int nodes, gpus;
  } configs[] = {{1, 4}, {2, 4}, {3, 4}, {4, 4}};

  std::vector<double> gol, gemm;
  for (const auto& c : configs) {
    gol.push_back(gol_ms(c.nodes, c.gpus));
    gemm.push_back(sgemm_ms(c.nodes, c.gpus));
    bench::register_sim_benchmark(
        "cluster/gol/nodes:" + std::to_string(c.nodes), gol.back());
    bench::register_sim_benchmark(
        "cluster/sgemm/nodes:" + std::to_string(c.nodes), gemm.back());
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  std::printf("\nCluster scaling (speedup vs 1 node = 4 GPUs):\n");
  std::printf("  %-8s %10s %22s %22s\n", "nodes", "GPUs", "GameOfLife",
              "SGEMM chain");
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    std::printf("  %-8d %10d %14.3fms(%4.2fx) %14.3fms(%4.2fx)\n",
                configs[i].nodes, configs[i].nodes * configs[i].gpus, gol[i],
                gol[0] / gol[i], gemm[i], gemm[0] / gemm[i]);
  }
  std::printf("\nThe communication-free SGEMM chain keeps scaling across "
              "nodes; the stencil's\nnode-boundary exchanges (host + network "
              "staged) flatten its curve — the §8\nmotivation for "
              "topology-aware scheduling research.\n");
  return rc;
}
