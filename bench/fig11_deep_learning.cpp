// Figure 11: deep learning performance (paper §6.1).
//
// LeNet trained on 28x28 digit batches of 2048 images, 1-4 GPUs of each
// device model. Compared: MAPS-Multi with the hybrid data/model approach,
// MAPS-Multi with pure data parallelism, the torch-like baseline (single-GPU
// weight updates + unnecessary per-iteration device-to-host copies), and the
// caffe-like single-GPU configuration. Paper (4x GTX 780): hybrid ~2.79x,
// data-parallel ~3.12x, Torch ~2.07x (hybrid) / ~2.3x (data-parallel);
// single-GPU throughput is similar across frameworks (same cuDNN kernels).
#include <vector>

#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "nn/trainer.hpp"

namespace {

constexpr std::size_t kBatch = 2048;
constexpr int kIterations = 20;

double throughput(const sim::DeviceSpec& spec, int gpus,
                  nn::Strategy strategy) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  maps::multi::Scheduler sched(node);
  nn::LeNetConfig cfg; // the paper's 28x28 LeNet
  // TimingOnly: dataset holds shapes only; 1 batch of backing suffices.
  nn::SyntheticDigits data(kBatch + 1, cfg.image, cfg.classes, 5);
  nn::LeNetParams params(cfg);
  nn::Trainer trainer(sched, params, data, kBatch, strategy);
  trainer.train(2); // warm-up: allocations, first uploads
  return trainer.train(kIterations).images_per_second;
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header(
      "Figure 11: LeNet training throughput (batch 2048), 1-4 GPUs");

  struct Series {
    const char* name;
    nn::Strategy strategy;
  } series[] = {
      {"MAPS-hybrid", nn::Strategy::Hybrid},
      {"MAPS-data-parallel", nn::Strategy::DataParallel},
      {"torch-like", nn::Strategy::TorchLike},
  };

  bench::ScalingTable table; // stores 1/throughput so speedups read right
  std::map<std::string, std::vector<double>> tput;
  for (const auto& spec : sim::paper_device_models()) {
    for (const auto& s : series) {
      for (int g = 1; g <= bench::kMaxGpus; ++g) {
        const double ips = throughput(spec, g, s.strategy);
        tput[std::string(s.name) + "/" + spec.name].push_back(ips);
        table.set(std::string(s.name) + "/" + spec.name, g, 1e6 / ips);
        bench::register_sim_benchmark(std::string("fig11/") + s.name + "/" +
                                          spec.name +
                                          "/gpus:" + std::to_string(g),
                                      1e6 / ips);
      }
    }
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  std::printf("\nFigure 11 reproduction: training throughput (images/s) and "
              "speedup vs 1 GPU\n");
  std::printf("  %-34s %14s %14s %14s %14s\n", "series", "1 GPU", "2 GPUs",
              "3 GPUs", "4 GPUs");
  for (const auto& [name, v] : tput) {
    std::printf("  %-34s", name.c_str());
    for (int g = 0; g < bench::kMaxGpus; ++g) {
      std::printf(" %7.0f(%4.2fx)", v[static_cast<std::size_t>(g)],
                  v[static_cast<std::size_t>(g)] / v[0]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper reference (4x GTX 780): MAPS hybrid ~2.79x, MAPS "
      "data-parallel ~3.12x,\nTorch ~2.07x (hybrid net) / ~2.3x "
      "(data-parallel net); single-GPU throughput\nis similar across "
      "frameworks (all use the same cuDNN v2 routines).\n");
  return rc;
}
