// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench binary reproduces one table or figure of the paper's
// evaluation (§5-§6): it reruns the experiment in the simulator at the
// paper's nominal sizes (TimingOnly mode), registers the measurements with
// google-benchmark (manual time = simulated time), and prints a
// paper-comparison summary. EXPERIMENTS.md records the paper-vs-measured
// discussion; DESIGN.md §4 is the experiment index.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/node.hpp"
#include "sim/presets.hpp"

namespace bench {

inline constexpr int kMaxGpus = 4;

/// Prints the experimental-setup header (the paper's Table 3).
inline void print_setup_header(const char* experiment) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("Simulated setup (paper Table 3): nodes of 4 GPUs, PCIe-3 "
              "pairs\n");
  for (const auto& spec : sim::paper_device_models()) {
    std::printf("  %-12s (%s)  %2d SMs x %3d cores @ %.2f GHz, %4.0f GiB/s, "
                "%zu GiB\n",
                spec.name.c_str(), sim::to_string(spec.arch), spec.sm_count,
                spec.cores_per_sm, spec.clock_ghz, spec.mem_bandwidth_gbps,
                spec.global_mem_bytes >> 30);
  }
  std::printf("==============================================================="
              "=\n");
}

/// Collected measurement rows: (series name -> per-GPU-count milliseconds).
class ScalingTable {
public:
  void set(const std::string& series, int gpus, double ms) {
    rows_[series].resize(kMaxGpus, 0.0);
    rows_[series][static_cast<std::size_t>(gpus - 1)] = ms;
  }
  double get(const std::string& series, int gpus) const {
    return rows_.at(series)[static_cast<std::size_t>(gpus - 1)];
  }
  bool has(const std::string& series) const { return rows_.contains(series); }

  /// Prints "time (speedup)" per GPU count, paper-figure style.
  void print(const char* title, const char* unit = "ms") const {
    std::printf("\n%s\n", title);
    std::printf("  %-34s %14s %14s %14s %14s\n", "series", "1 GPU", "2 GPUs",
                "3 GPUs", "4 GPUs");
    for (const auto& [name, v] : rows_) {
      std::printf("  %-34s", name.c_str());
      for (int g = 0; g < kMaxGpus; ++g) {
        if (v[static_cast<std::size_t>(g)] <= 0) {
          std::printf(" %14s", "-");
          continue;
        }
        const double speedup = v[0] / v[static_cast<std::size_t>(g)];
        std::printf(" %8.3f%s(%4.2fx)", v[static_cast<std::size_t>(g)], unit,
                    speedup);
      }
      std::printf("\n");
    }
  }

  const std::map<std::string, std::vector<double>>& rows() const {
    return rows_;
  }

private:
  std::map<std::string, std::vector<double>> rows_;
};

/// Registers one precomputed simulated measurement as a google-benchmark
/// entry reporting manual time.
inline void register_sim_benchmark(const std::string& name, double sim_ms) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [sim_ms](benchmark::State& state) {
                                 for (auto _ : state) {
                                   state.SetIterationTime(sim_ms * 1e-3);
                                 }
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

inline int run_registered_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace bench
