// Wall-clock throughput of the parallel functional execution backend
// (DESIGN.md §5.12, EXPERIMENTS.md §"Wall-clock execution").
//
// Unlike the fig* benches this measures *host wall-clock*, not simulated
// time: Functional-mode runs execute every kernel body on the CPU, and that
// host cost — not sim fidelity — bounds the fuzz matrices and the test
// suite. Three workloads (Game of Life stencil, Reductive-Static histogram,
// chained GEMM via the unmodified-routine path) run at 1/2/4/native exec
// threads plus the sequential legacy backend, asserting the results stay
// bit-identical (FNV-1a digest over the gathered outputs) and the simulated
// clock identical while only wall-clock changes. Writes
// BENCH_exec_wallclock.json (override with --out <path>).
//
// --smoke runs trimmed sizes and asserts bit-identity, sim-identity and —
// only on hosts with >= 4 hardware threads — a >= 1.2x wall-clock speedup at
// 4 exec threads on the sweep-dominated workloads; wired as the
// `perf_smoke` ctest label.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/game_of_life.hpp"
#include "apps/histogram.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

constexpr int kGpus = 4;

struct Run {
  double wall_ms = 0;
  double sim_ms = 0;
  std::uint64_t digest = 0; ///< FNV-1a over the gathered output bytes
  std::uint64_t chunks = 0; ///< pool jobs executed (chunks + deferred bodies)
};

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
  return h;
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Sizes {
  std::size_t gol_n, hist_n, gemm_n;
  int gol_iters, hist_iters, gemm_chain;
};

Run run_gol(unsigned exec_threads, const Sizes& sz) {
  const std::size_t W = sz.gol_n, H = sz.gol_n;
  std::mt19937 rng(1234);
  std::vector<int> a(W * H), b(W * H, 0);
  for (auto& v : a) {
    v = static_cast<int>(rng() & 1u);
  }
  sim::Node node(sim::homogeneous_node(sim::titan_black(), kGpus));
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  Matrix<int> A(W, H, "A"), B(W, H, "B");
  A.Bind(a.data());
  B.Bind(b.data());

  const auto t0 = std::chrono::steady_clock::now();
  apps::gol::run(sched, A, B, sz.gol_iters, apps::gol::Scheme::Maps);
  sched.WaitAll();

  Run r;
  r.wall_ms = wall_ms_since(t0);
  r.sim_ms = node.now_ms();
  const std::vector<int>& out = sz.gol_iters % 2 == 0 ? a : b;
  r.digest = fnv1a(out.data(), out.size() * sizeof(int));
  r.chunks = sched.stats().exec.chunks_executed;
  return r;
}

Run run_histogram(unsigned exec_threads, const Sizes& sz) {
  const std::size_t W = sz.hist_n, H = sz.hist_n;
  std::mt19937 rng(5678);
  std::vector<int> image(W * H);
  for (auto& v : image) {
    v = static_cast<int>(rng() % 100000);
  }
  std::vector<int> hist(apps::histogram::kBins, 0);
  sim::Node node(sim::homogeneous_node(sim::titan_black(), kGpus));
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  Matrix<int> Image(W, H, "image");
  Vector<int> Hist(apps::histogram::kBins, "hist");
  Image.Bind(image.data());
  Hist.Bind(hist.data());

  const auto t0 = std::chrono::steady_clock::now();
  apps::histogram::run(sched, Image, Hist, sz.hist_iters,
                       apps::histogram::Scheme::Maps);
  sched.WaitAll();

  Run r;
  r.wall_ms = wall_ms_since(t0);
  r.sim_ms = node.now_ms();
  r.digest = fnv1a(hist.data(), hist.size() * sizeof(int));
  r.chunks = sched.stats().exec.chunks_executed;
  return r;
}

Run run_gemm_chain(unsigned exec_threads, const Sizes& sz) {
  const std::size_t n = sz.gemm_n;
  std::mt19937 rng(91);
  std::uniform_real_distribution<float> dist(-0.05f, 0.05f);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0f);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
  }
  b[0] += 1.0f; // keep the chain numerically tame
  sim::Node node(sim::homogeneous_node(sim::titan_black(), kGpus));
  Scheduler sched(node);
  sched.set_exec_threads(exec_threads);
  Matrix<float> A(n, n, "A"), B(n, n, "B"), C(n, n, "C");
  A.Bind(a.data());
  B.Bind(b.data());
  C.Bind(c.data());

  const auto t0 = std::chrono::steady_clock::now();
  simblas::Gemm(sched, A, B, C);
  for (int i = 1; i < sz.gemm_chain; i += 2) {
    simblas::Gemm(sched, C, B, A);
    simblas::Gemm(sched, A, B, C);
  }
  sched.WaitAll();
  sched.Gather(C);

  Run r;
  r.wall_ms = wall_ms_since(t0);
  r.sim_ms = node.now_ms();
  r.digest = fnv1a(c.data(), c.size() * sizeof(float));
  r.chunks = sched.stats().exec.chunks_executed;
  return r;
}

/// Best-of-`reps` wall clock (standard minimum-of-N protocol); digest and
/// sim_ms must agree across repetitions or the config itself is broken.
template <typename F>
Run best_of(int reps, unsigned exec_threads, const Sizes& sz, F&& f) {
  Run best = f(exec_threads, sz);
  for (int i = 1; i < reps; ++i) {
    Run r = f(exec_threads, sz);
    if (r.digest != best.digest || r.sim_ms != best.sim_ms) {
      std::fprintf(stderr,
                   "FATAL: repetition disagrees with itself at %u threads\n",
                   exec_threads);
      std::exit(1);
    }
    if (r.wall_ms < best.wall_ms) {
      best = r;
    }
  }
  return best;
}

struct Workload {
  const char* name;
  Run (*fn)(unsigned, const Sizes&);
};

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
  }
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_exec_wallclock.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const Sizes sz = smoke ? Sizes{384, 768, 192, 4, 2, 4}
                         : Sizes{768, 1536, 320, 6, 3, 6};
  const int reps = smoke ? 2 : 3;
  const unsigned native = std::max(1u, std::thread::hardware_concurrency());

  bench::print_setup_header(
      "Functional execution backend: host wall-clock vs exec threads");
  std::printf("host threads available: %u\n", native);

  // Fixed thread counts land in the JSON (digests, sim times and chunk
  // counts are machine-independent there); the native row is print-only.
  const unsigned fixed[] = {0, 1, 2, 4};
  const Workload workloads[] = {
      {"game_of_life", run_gol},
      {"histogram", run_histogram},
      {"gemm_chain", run_gemm_chain},
  };

  struct Row {
    Run fixed_runs[4];
    Run native_run;
  };
  Row rows[std::size(workloads)];

  for (std::size_t w = 0; w < std::size(workloads); ++w) {
    for (std::size_t t = 0; t < std::size(fixed); ++t) {
      rows[w].fixed_runs[t] = best_of(reps, fixed[t], sz, workloads[w].fn);
    }
    rows[w].native_run = best_of(reps, native, sz, workloads[w].fn);

    const Run& seq = rows[w].fixed_runs[0];
    std::printf("\n%s (sim %.3f ms)\n", workloads[w].name, seq.sim_ms);
    std::printf("  %-10s %12s %10s %10s %8s\n", "threads", "wall ms",
                "speedup", "chunks", "bits");
    const auto row = [&](const char* label, const Run& r) {
      std::printf("  %-10s %12.2f %9.2fx %10llu %8s\n", label, r.wall_ms,
                  seq.wall_ms / r.wall_ms,
                  static_cast<unsigned long long>(r.chunks),
                  r.digest == seq.digest ? "same" : "DIFFER");
    };
    row("seq", rows[w].fixed_runs[0]);
    row("1", rows[w].fixed_runs[1]);
    row("2", rows[w].fixed_runs[2]);
    row("4", rows[w].fixed_runs[3]);
    char native_label[24];
    std::snprintf(native_label, sizeof native_label, "native %u", native);
    row(native_label, rows[w].native_run);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"exec_wallclock\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"gpus\": %d,\n  \"workloads\": {\n", kGpus);
  for (std::size_t w = 0; w < std::size(workloads); ++w) {
    const Run& seq = rows[w].fixed_runs[0];
    std::fprintf(f, "    \"%s\": {\n", workloads[w].name);
    for (std::size_t t = 0; t < std::size(fixed); ++t) {
      const Run& r = rows[w].fixed_runs[t];
      std::fprintf(f,
                   "      \"t%u\": {\"digest\": \"%016llx\", \"sim_ms\": %.6f, "
                   "\"chunks_executed\": %llu, \"wall_ms\": %.3f, "
                   "\"wall_speedup\": %.3f},\n",
                   fixed[t], static_cast<unsigned long long>(r.digest),
                   r.sim_ms, static_cast<unsigned long long>(r.chunks),
                   r.wall_ms, seq.wall_ms / r.wall_ms);
    }
    std::fprintf(f, "      \"bit_identical\": %s,\n",
                 (rows[w].fixed_runs[1].digest == seq.digest &&
                  rows[w].fixed_runs[2].digest == seq.digest &&
                  rows[w].fixed_runs[3].digest == seq.digest &&
                  rows[w].native_run.digest == seq.digest)
                     ? "true"
                     : "false");
    std::fprintf(f, "      \"sim_identical\": %s\n    }%s\n",
                 (rows[w].fixed_runs[1].sim_ms == seq.sim_ms &&
                  rows[w].fixed_runs[2].sim_ms == seq.sim_ms &&
                  rows[w].fixed_runs[3].sim_ms == seq.sim_ms &&
                  rows[w].native_run.sim_ms == seq.sim_ms)
                     ? "true"
                     : "false",
                 w + 1 < std::size(workloads) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    bool ok = true;
    for (std::size_t w = 0; w < std::size(workloads); ++w) {
      const Run& seq = rows[w].fixed_runs[0];
      for (const Run& r : rows[w].fixed_runs) {
        ok &= check(r.digest == seq.digest, "results not bit-identical");
        ok &= check(r.sim_ms == seq.sim_ms, "simulated time differs");
      }
      ok &= check(rows[w].native_run.digest == seq.digest,
                  "native-thread results not bit-identical");
      ok &= check(rows[w].fixed_runs[2].chunks > 0,
                  "2-thread run executed no pool jobs");
    }
    // The wall-clock claim needs real cores; single-core CI shards can only
    // check the determinism contract above.
    if (std::thread::hardware_concurrency() >= 4) {
      for (std::size_t w = 0; w + 1 < std::size(workloads); ++w) { // sweeps
        const Row& r = rows[w];
        ok &= check(r.fixed_runs[0].wall_ms >= 1.2 * r.fixed_runs[3].wall_ms,
                    "4-thread speedup below 1.2x on a >=4-core host");
      }
    }
    return ok ? 0 : 1;
  }
  return 0;
}
