// Figure 8: histogram multi-GPU performance — device-level aggregators
// (paper §5.3).
//
// 256-bin histogram of an 8K^2 image; naive (global atomics), CUB (tuned
// library) and MAPS-Multi, each on 1-4 GPUs of all three device models. The
// naive and CUB variants run over MAPS-Multi as unmodified routines, as in
// the paper. Paper: naive runs ~6.09/~6.41/~30.92 ms on one GPU (Maxwell's
// global atomics are the outlier); MAPS beats CUB on the GTX 780, CUB wins
// on the Titan Black and more so on the GTX 980.
#include <vector>

#include "apps/histogram.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace maps::multi;

double hist_ms(const sim::DeviceSpec& spec, int gpus,
               apps::histogram::Scheme scheme) {
  sim::Node node(sim::homogeneous_node(spec, gpus), sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  std::vector<int> dummy(1);
  Matrix<int> img(8192, 8192, "image");
  Vector<int> hist(apps::histogram::kBins, "hist");
  img.Bind(dummy.data());
  hist.Bind(dummy.data());
  return apps::histogram::run(sched, img, hist, 100, scheme) / 100;
}

const char* scheme_name(apps::histogram::Scheme s) {
  switch (s) {
  case apps::histogram::Scheme::Naive:
    return "naive";
  case apps::histogram::Scheme::Maps:
    return "MAPS";
  case apps::histogram::Scheme::Cub:
    return "CUB";
  }
  return "?";
}

} // namespace

int main(int argc, char** argv) {
  bench::print_setup_header(
      "Figure 8: 256-bin histogram of an 8K^2 image, naive vs CUB vs MAPS");

  bench::ScalingTable table;
  for (const auto& spec : sim::paper_device_models()) {
    for (auto scheme :
         {apps::histogram::Scheme::Naive, apps::histogram::Scheme::Cub,
          apps::histogram::Scheme::Maps}) {
      for (int g = 1; g <= bench::kMaxGpus; ++g) {
        const double ms = hist_ms(spec, g, scheme);
        table.set(std::string(scheme_name(scheme)) + "/" + spec.name, g, ms);
        bench::register_sim_benchmark("fig08/" +
                                          std::string(scheme_name(scheme)) +
                                          "/" + spec.name +
                                          "/gpus:" + std::to_string(g),
                                      ms);
      }
    }
  }

  const int rc = bench::run_registered_benchmarks(argc, argv);

  table.print("Figure 8 reproduction: ms per histogram (speedup vs 1 GPU)");
  std::printf(
      "\nPaper reference: naive ~6.09/~6.41/~30.92 ms on one GPU (global\n"
      "atomics; Maxwell penalized); MAPS faster than CUB on GTX 780, CUB\n"
      "faster on Titan Black and more so on GTX 980 — same order of\n"
      "magnitude everywhere.\n");
  return rc;
}
