// Compute-transfer overlap: simulated end-to-end effect of interior/boundary
// kernel splitting plus chunked copies (DESIGN.md §5.10, EXPERIMENTS.md
// §"Compute-transfer overlap").
//
// Runs three evaluation workloads at 4 GPUs with overlap enabled vs disabled
// and reports *simulated* milliseconds plus transfer stats and sub-kernel
// counts:
//   - Game of Life on a wide world (32768x2048): each 128 KB halo row makes
//     the inter-device exchange chain expensive enough that hiding it behind
//     the interior sub-kernel pays for the two extra boundary launches,
//   - the Fig 13 NMF multiplicative-update loop, whose large gathers are
//     chunked so downstream consumers and fan-out forwards pipeline, and
//   - the Fig 9 unmodified-GEMM chain (all-gathered previous outputs), where
//     chunking lets the planner's fan-out trees forward the first rows of a
//     stripe while the rest is still in flight.
// Overlap-off is the pre-splitting scheduler: one kernel per device gated on
// every inbound copy, copies coalesced without a size cap. Both modes move
// exactly the same bytes (asserted in --smoke). Writes BENCH_overlap.json
// (override with --out <path>).
//
// --smoke trims the iteration counts and asserts overlap wins on GoL and on
// at least one of NMF / GEMM; wired as a `perf_smoke` ctest label next to
// sched_overhead and transfer_plan.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/game_of_life.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "nmf/nmf.hpp"
#include "simblas/simblas.hpp"

namespace {

using namespace maps::multi;

struct Run {
  double sim_ms = 0; // simulated time for the measured region
  TransferStats t;
  std::uint64_t interior = 0; // interior sub-kernel launches
  std::uint64_t boundary = 0; // boundary-strip sub-kernel launches
};

Run capture(Scheduler& sched, double sim_ms) {
  Run r;
  r.sim_ms = sim_ms;
  r.t = sched.stats().transfers;
  r.interior = sched.stats().interior_subkernels;
  r.boundary = sched.stats().boundary_subkernels;
  return r;
}

Run run_gol(bool overlap_on, int iterations, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_overlap_enabled(overlap_on);

  std::vector<int> dummy(1);
  // Wide world: 128 KB halo rows, 2048 / 4 = 512 rows per device. The halo
  // exchange chain (~45 us cross-bus) dwarfs the two extra kernel launches,
  // so the default profitability gate accepts the split.
  Matrix<int> a(32768, 2048, "A"), b(32768, 2048, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  const double ms =
      apps::gol::run(sched, a, b, iterations, apps::gol::Scheme::MapsIlp);
  return capture(sched, ms);
}

Run run_nmf(bool overlap_on, int iterations, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_overlap_enabled(overlap_on);

  std::vector<float> v(1), w, h; // TimingOnly: backing never touched
  const nmf::Shape shape{};      // the paper's 16Kx4K, k=128
  const nmf::Result res = nmf::run_maps(sched, v, w, h, shape, iterations);
  return capture(sched, res.sim_ms);
}

Run run_gemm_chain(bool overlap_on, int chain, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::gtx780(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_overlap_enabled(overlap_on);

  std::vector<float> dummy(1);
  Matrix<float> b(8192, 8192, "B"), c1(8192, 8192, "C1"), c2(8192, 8192, "C2");
  b.Bind(dummy.data());
  c1.Bind(dummy.data());
  c2.Bind(dummy.data());
  // Same transfer-bound Fig 9 variant as the transfer_plan bench: the
  // all-gathered operand is the previous output, so every link re-broadcasts
  // fresh stripes. Warmup outside the measured region distributes B.
  sched.AnalyzeCall(Work{c2.height(), 1}, Block2D<float>(b),
                    Block2DTransposed<float>(c1),
                    StructuredInjective<float, 2>(c2));
  sched.AnalyzeCall(Work{c1.height(), 1}, Block2D<float>(b),
                    Block2DTransposed<float>(c2),
                    StructuredInjective<float, 2>(c1));
  simblas::Gemm(sched, b, c1, c2);
  sched.WaitAll();
  sched.reset_stats();

  const double t0 = node.now_ms();
  for (int i = 0; i < chain / 2; ++i) {
    simblas::Gemm(sched, b, c2, c1);
    simblas::Gemm(sched, b, c1, c2);
  }
  sched.WaitAll();
  return capture(sched, node.now_ms() - t0);
}

void print_pair(const char* workload, const Run& off, const Run& on) {
  std::printf("\n%s\n", workload);
  std::printf("  %-10s %12s %12s %10s %10s %10s %10s\n", "overlap", "sim ms",
              "total MB", "chunked", "issued", "interior", "boundary");
  const auto row = [](const char* name, const Run& r) {
    std::printf("  %-10s %12.3f %12.1f %10u %10u %10llu %10llu\n", name,
                r.sim_ms, r.t.bytes_total() / 1048576.0, r.t.copies_chunked,
                r.t.copies_issued, static_cast<unsigned long long>(r.interior),
                static_cast<unsigned long long>(r.boundary));
  };
  row("off", off);
  row("on", on);
  std::printf("  simulated speedup: %.3fx\n", off.sim_ms / on.sim_ms);
}

void json_run(std::FILE* f, const char* key, const Run& r) {
  std::fprintf(
      f,
      "      \"%s\": {\"sim_ms\": %.6f, \"bytes_total\": %llu, "
      "\"bytes_h2d\": %llu, \"bytes_d2h\": %llu, "
      "\"bytes_p2p_same_bus\": %llu, \"bytes_p2p_cross_bus\": %llu, "
      "\"copies_issued\": %u, \"copies_chunked\": %u, "
      "\"interior_subkernels\": %llu, \"boundary_subkernels\": %llu}",
      key, r.sim_ms, static_cast<unsigned long long>(r.t.bytes_total()),
      static_cast<unsigned long long>(r.t.bytes_h2d),
      static_cast<unsigned long long>(r.t.bytes_d2h),
      static_cast<unsigned long long>(r.t.bytes_p2p_same_bus),
      static_cast<unsigned long long>(r.t.bytes_p2p_cross_bus),
      r.t.copies_issued, r.t.copies_chunked,
      static_cast<unsigned long long>(r.interior),
      static_cast<unsigned long long>(r.boundary));
}

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
  }
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_overlap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int gol_iters = smoke ? 10 : 100;
  const int nmf_iters = smoke ? 10 : 40;
  const int chain = smoke ? 4 : 20;
  const int gpus = 4;

  bench::print_setup_header(
      "Compute-transfer overlap: kernel splitting + chunked copies on vs off");

  struct Workload {
    const char* name;
    Run off, on;
  } workloads[] = {
      // The simulator is deterministic: one run per configuration is exact.
      {"gol_wide", run_gol(false, gol_iters, gpus),
       run_gol(true, gol_iters, gpus)},
      {"nmf", run_nmf(false, nmf_iters, gpus), run_nmf(true, nmf_iters, gpus)},
      {"gemm_chain", run_gemm_chain(false, chain, gpus),
       run_gemm_chain(true, chain, gpus)},
  };
  for (const Workload& w : workloads) {
    print_pair(w.name, w.off, w.on);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"overlap\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"device\": \"%s\",\n", sim::gtx780().name.c_str());
  std::fprintf(f, "  \"gpus\": %d,\n  \"workloads\": {\n", gpus);
  for (std::size_t i = 0; i < std::size(workloads); ++i) {
    const Workload& w = workloads[i];
    std::fprintf(f, "    \"%s\": {\n", w.name);
    json_run(f, "overlap_off", w.off);
    std::fprintf(f, ",\n");
    json_run(f, "overlap_on", w.on);
    std::fprintf(f, ",\n      \"simulated_speedup\": %.4f\n    }%s\n",
                 w.off.sim_ms / w.on.sim_ms,
                 i + 1 < std::size(workloads) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    bool ok = true;
    const Workload& gol = workloads[0];
    ok &= check(gol.on.sim_ms < gol.off.sim_ms,
                "overlap-on should beat overlap-off on wide GoL");
    ok &= check(gol.on.interior > 0 && gol.on.boundary > 0,
                "GoL should split into interior and boundary sub-kernels");
    ok &= check(workloads[1].on.sim_ms < workloads[1].off.sim_ms ||
                    workloads[2].on.sim_ms < workloads[2].off.sim_ms,
                "overlap-on should beat overlap-off on NMF or the GEMM chain");
    for (const Workload& w : workloads) {
      ok &= check(w.on.t.bytes_total() == w.off.t.bytes_total(),
                  "overlap must not change the total bytes moved");
      ok &= check(w.off.interior == 0 && w.off.boundary == 0,
                  "overlap-off must not split kernels");
    }
    return ok ? 0 : 1;
  }
  return 0;
}
