#!/usr/bin/env python3
"""Compare freshly produced bench JSON against the committed BENCH_*.json.

The simulator is deterministic, so simulated quantities (sim_ms, byte
categories, copy/sub-kernel counts, cache hits) must reproduce the committed
reference almost exactly; a drift beyond the tolerance means the change under
test altered scheduler behaviour and the reference needs a deliberate
refresh. Wall-clock quantities (plan_us_per_task etc.) depend on the machine
running the bench and are skipped.

Usage:
  bench/compare_bench.py FRESH REF [FRESH REF ...] [--rel-tol 0.01]

Exit status: 0 all pairs match, 1 any mismatch, 2 usage/IO error.
"""

import argparse
import json
import re
import sys

# Host wall-clock measurements and their derivatives: machine-dependent,
# excluded from the regression gate.
NOISY_KEY = re.compile(
    r"^(plan_us_per_task|wall_us_per_task|plan_time_us|replay_time_us|"
    r"planning_speedup|wall_ms|wall_speedup|monitor_us_per_task|"
    r"route_us_per_task|plan_us_ratio)$"
)


def compare(fresh, ref, path, rel_tol, errors, missing):
    if isinstance(ref, dict):
        if not isinstance(fresh, dict):
            errors.append(f"{path}: expected object, got {type(fresh).__name__}")
            return
        for key in sorted(set(fresh) | set(ref)):
            sub = f"{path}.{key}" if path else key
            if key not in fresh:
                # A reference key the bench no longer emits. Collected
                # separately (not silently skipped, even for NOISY keys):
                # a disappeared key means the bench's JSON schema changed,
                # which must be a deliberate reference refresh.
                missing.append(sub)
            elif key not in ref:
                errors.append(f"{sub}: not in committed reference")
            elif NOISY_KEY.match(key):
                continue
            else:
                compare(fresh[key], ref[key], sub, rel_tol, errors, missing)
    elif isinstance(ref, bool) or isinstance(ref, str) or ref is None:
        if fresh != ref:
            errors.append(f"{path}: {fresh!r} != {ref!r}")
    elif isinstance(ref, int) and isinstance(fresh, int):
        # Deterministic counters (copies, sub-kernels, cache hits, bytes).
        if fresh != ref:
            errors.append(f"{path}: {fresh} != {ref} (counters must be exact)")
    elif isinstance(ref, (int, float)) and isinstance(fresh, (int, float)):
        denom = max(abs(ref), abs(fresh), 1e-12)
        rel = abs(fresh - ref) / denom
        if rel > rel_tol:
            errors.append(
                f"{path}: {fresh} vs {ref} (rel diff {rel:.4f} > {rel_tol})"
            )
    elif isinstance(ref, list):
        if not isinstance(fresh, list) or len(fresh) != len(ref):
            errors.append(f"{path}: list shape differs")
        else:
            for i, (a, b) in enumerate(zip(fresh, ref)):
                compare(a, b, f"{path}[{i}]", rel_tol, errors, missing)
    else:
        errors.append(f"{path}: type mismatch {type(fresh)} vs {type(ref)}")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", metavar="FRESH REF",
                    help="pairs of fresh and committed JSON files")
    ap.add_argument("--rel-tol", type=float, default=0.01,
                    help="relative tolerance for simulated floats")
    args = ap.parse_args(argv)
    if len(args.files) % 2 != 0:
        ap.error("expected FRESH REF pairs")

    failed = False
    for fresh_path, ref_path in zip(args.files[::2], args.files[1::2]):
        try:
            with open(fresh_path) as f:
                fresh = json.load(f)
            with open(ref_path) as f:
                ref = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        if fresh.get("mode") != ref.get("mode"):
            print(f"{fresh_path}: mode {fresh.get('mode')!r} does not match "
                  f"reference {ref.get('mode')!r}; run the bench without "
                  f"--smoke to compare against a full-mode reference",
                  file=sys.stderr)
            failed = True
            continue
        errors = []
        missing = []
        compare(fresh, ref, "", args.rel_tol, errors, missing)
        if errors or missing:
            failed = True
            print(f"MISMATCH {fresh_path} vs {ref_path}:")
            for e in errors:
                print(f"  {e}")
            if missing:
                print(f"  committed reference keys absent from the fresh "
                      f"output ({len(missing)}):")
                for key in missing:
                    print(f"    - {key}")
        else:
            print(f"ok: {fresh_path} matches {ref_path}")
    if failed:
        print("\nIf the change is intentional, regenerate the committed "
              "BENCH_*.json with the full-mode bench and commit it.",
              file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
