// Scheduler host-side overhead: steady-state task-plan caching (DESIGN.md
// §Scheduler, EXPERIMENTS.md §"Plan caching").
//
// Unlike the fig* benches, this one measures *host wall-clock* spent inside
// the Scheduler, not simulated GPU time: the per-Invoke cost of partitioning,
// boundary analysis and copy planning in a steady-state loop, with the plan
// cache enabled vs disabled. Two workloads: the Game of Life double-buffered
// loop (two alternating task shapes) and the NMF multiplicative-update loop
// (a longer mixed pipeline with aggregations). Writes BENCH_sched_overhead.json
// next to the working directory (override with --out <path>).
//
// --smoke runs 100 iterations (enough for the steady state to dominate the
// first few builds) and asserts the cache hits and wins; wired as the
// `perf_smoke` ctest label.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/game_of_life.hpp"
#include "bench/bench_common.hpp"
#include "multi/maps_multi.hpp"
#include "nmf/nmf.hpp"

namespace {

using namespace maps::multi;

struct Run {
  SchedulerStats stats;
  double sim_ms = 0;       // simulated time — must not depend on the cache
  double wall_us = 0;      // host wall-clock for the whole loop
  std::uint64_t tasks = 0; // Invokes issued
  std::size_t live_intervals = 0;

  // Host-side planning cost per task: time spent building or replaying
  // plans, the quantity the cache is meant to shrink.
  double plan_us_per_task() const {
    return tasks == 0 ? 0
                      : (stats.plan_time_us + stats.replay_time_us) /
                            static_cast<double>(tasks);
  }
};

double wall_us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Run run_gol(bool cache_on, int iterations, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::titan_black(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_plan_cache_enabled(cache_on);

  std::vector<int> dummy(1);
  Matrix<int> a(2048, 2048, "A"), b(2048, 2048, "B");
  a.Bind(dummy.data());
  b.Bind(dummy.data());
  using Tick = apps::gol::MapsTick<1, 1>;
  sched.AnalyzeCall(Tick::Win(a), Tick::Out(b));
  sched.AnalyzeCall(Tick::Win(b), Tick::Out(a));

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    if (i % 2 == 0) {
      sched.Invoke(Tick{}, Tick::Win(a), Tick::Out(b));
    } else {
      sched.Invoke(Tick{}, Tick::Win(b), Tick::Out(a));
    }
  }
  sched.WaitAll();

  Run r;
  r.wall_us = wall_us_since(t0);
  r.stats = sched.stats();
  r.sim_ms = node.now_ms();
  r.tasks = static_cast<std::uint64_t>(iterations);
  r.live_intervals = sched.live_dependency_intervals();
  return r;
}

Run run_nmf(bool cache_on, int iterations, int gpus) {
  sim::Node node(sim::homogeneous_node(sim::titan_black(), gpus),
                 sim::ExecMode::TimingOnly);
  Scheduler sched(node);
  sched.set_plan_cache_enabled(cache_on);

  std::vector<float> v(1), w, h; // TimingOnly: backing never touched
  nmf::Shape shape;
  shape.n = 4096; // trimmed from the paper's 16K: planning cost is
  shape.m = 1024; // size-independent, keep the bench quick
  const auto t0 = std::chrono::steady_clock::now();
  const nmf::Result res = nmf::run_maps(sched, v, w, h, shape, iterations);

  Run r;
  r.wall_us = wall_us_since(t0);
  r.stats = sched.stats();
  r.sim_ms = res.sim_ms;
  r.tasks = r.stats.plans_built + r.stats.cache_hits;
  r.live_intervals = sched.live_dependency_intervals();
  return r;
}

void print_pair(const char* workload, const Run& off, const Run& on) {
  std::printf("\n%s (%llu tasks)\n", workload,
              static_cast<unsigned long long>(off.tasks));
  std::printf("  %-12s %16s %16s %10s %10s %12s\n", "cache", "plan us/task",
              "wall us/task", "hits", "built", "live ivals");
  const auto row = [](const char* name, const Run& r) {
    std::printf("  %-12s %16.2f %16.2f %10llu %10llu %12zu\n", name,
                r.plan_us_per_task(),
                r.wall_us / static_cast<double>(r.tasks),
                static_cast<unsigned long long>(r.stats.cache_hits),
                static_cast<unsigned long long>(r.stats.plans_built),
                r.live_intervals);
  };
  row("off", off);
  row("on", on);
  std::printf("  planning speedup: %.2fx   (sim time %s: %.3f ms)\n",
              off.plan_us_per_task() / on.plan_us_per_task(),
              off.sim_ms == on.sim_ms ? "identical" : "MISMATCH",
              on.sim_ms);
}

void json_run(std::FILE* f, const char* key, const Run& r) {
  std::fprintf(
      f,
      "      \"%s\": {\"plan_us_per_task\": %.3f, \"wall_us_per_task\": %.3f, "
      "\"plan_time_us\": %.1f, \"replay_time_us\": %.1f, \"tasks\": %llu, "
      "\"plans_built\": %llu, \"cache_hits\": %llu, \"cache_misses\": %llu, "
      "\"live_dependency_intervals\": %zu, \"sim_ms\": %.6f}",
      key, r.plan_us_per_task(), r.wall_us / static_cast<double>(r.tasks),
      r.stats.plan_time_us, r.stats.replay_time_us,
      static_cast<unsigned long long>(r.tasks),
      static_cast<unsigned long long>(r.stats.plans_built),
      static_cast<unsigned long long>(r.stats.cache_hits),
      static_cast<unsigned long long>(r.stats.cache_misses), r.live_intervals,
      r.sim_ms);
}

struct Workload {
  const char* name;
  Run off, on;
};

// The loop body allocates nothing in steady state, but the process does:
// first-touch pages, allocator warmup and CPU noise inflate single runs by
// 2x or more. Repeat each configuration and keep the repetition with the
// lowest planning cost — the standard minimum-of-N wall-clock protocol.
// The off/on repetitions are interleaved so a noise burst (VM steal, CPU
// migration) lands on both configurations instead of poisoning every
// repetition of one of them.
template <typename F> Workload best_pair(const char* name, int reps, F&& run) {
  Workload w{name, run(false), run(true)};
  for (int r = 1; r < reps; ++r) {
    Run off = run(false);
    if (off.plan_us_per_task() < w.off.plan_us_per_task()) {
      w.off = off;
    }
    Run on = run(true);
    if (on.plan_us_per_task() < w.on.plan_us_per_task()) {
      w.on = on;
    }
  }
  return w;
}

bool check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
  }
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sched_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int gol_iters = smoke ? 100 : 1000;
  const int nmf_iters = smoke ? 25 : 250; // ~4 tasks per NMF iteration
  const int gpus = 4;

  bench::print_setup_header(
      "Scheduler overhead: steady-state plan caching (host wall-clock)");

  const int reps = smoke ? 2 : 5;
  Workload workloads[] = {
      best_pair("game_of_life", reps,
                [&](bool on) { return run_gol(on, gol_iters, gpus); }),
      best_pair("nmf", reps,
                [&](bool on) { return run_nmf(on, nmf_iters, gpus); }),
  };
  for (const Workload& w : workloads) {
    print_pair(w.name, w.off, w.on);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sched_overhead\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"gpus\": %d,\n  \"workloads\": {\n", gpus);
  for (std::size_t i = 0; i < std::size(workloads); ++i) {
    const Workload& w = workloads[i];
    std::fprintf(f, "    \"%s\": {\n", w.name);
    json_run(f, "cache_off", w.off);
    std::fprintf(f, ",\n");
    json_run(f, "cache_on", w.on);
    std::fprintf(f, ",\n      \"planning_speedup\": %.3f\n    }%s\n",
                 w.off.plan_us_per_task() / w.on.plan_us_per_task(),
                 i + 1 < std::size(workloads) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    bool ok = true;
    for (const Workload& w : workloads) {
      ok &= check(w.on.stats.cache_hits >= 5, "expected >= 5 cache hits");
      ok &= check(w.off.sim_ms == w.on.sim_ms,
                  "simulated time differs cache on vs off");
      ok &= check(w.off.plan_us_per_task() >= 1.5 * w.on.plan_us_per_task(),
                  "planning speedup below 1.5x");
      ok &= check(w.on.stats.uncacheable_tasks == 0,
                  "steady-state tasks should all be cacheable");
    }
    return ok ? 0 : 1;
  }
  return 0;
}
