// Non-negative Matrix Factorization (paper §6.2, Fig 12-13).
//
// Given V (n x m), find W (n x k), H (k x m) with V ~= W H, via the
// multiplicative update rules of Brunet et al. The MAPS-Multi implementation
// follows the paper's memory-oriented task breakdown (Fig 12): V-tilde, Aux
// and Acc are computed in independent row stripes so no device ever holds
// the full V; the only inter-GPU exchanges happen twice per iteration,
// around the H update (the W update is fully stripe-local given the
// replicated H).
//
// The baseline reproduces NMF-mGPU: hand-tuned Kepler kernels whose
// multi-GPU exchanges run over MPI, passing through the host with IPC
// latencies (the paper's diagnosis of its inferior scaling).
#pragma once

#include <cstddef>
#include <vector>

#include "multi/maps_multi.hpp"
#include "sim/node.hpp"

namespace nmf {

struct Result {
  double sim_ms = 0;       ///< Simulated time for the timed iterations.
  double iterations_per_s = 0;
  double final_error = 0;  ///< ||V - WH||_F / ||V||_F (Functional mode only).
};

/// Problem dimensions; the paper factorizes 16K x 4K with k = 128.
struct Shape {
  std::size_t n = 16384, m = 4096, k = 128;
};

/// Deterministic non-negative test matrix with planted structure.
std::vector<float> synthetic_v(const Shape& shape, unsigned seed = 3);

/// Relative Frobenius reconstruction error on the host.
double reconstruction_error(const std::vector<float>& v,
                            const std::vector<float>& w,
                            const std::vector<float>& h, const Shape& shape);

/// MAPS-Multi NMF (Fig 12 task graph). W and H are initialized internally
/// (seeded); on return (Functional mode) they hold the factorization.
Result run_maps(maps::multi::Scheduler& sched, std::vector<float>& v,
                std::vector<float>& w, std::vector<float>& h,
                const Shape& shape, int iterations);

/// NMF-mGPU-style baseline: same math, Kepler-tuned kernels, MPI/host-staged
/// exchanges, synchronous steps. Runs directly against the simulator.
Result run_mgpu_baseline(sim::Node& node, std::vector<float>& v,
                         std::vector<float>& w, std::vector<float>& h,
                         const Shape& shape, int iterations, int gpus);

} // namespace nmf
