#include "nmf/nmf.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace nmf {

using namespace maps::multi;

namespace {

constexpr float kEps = 1e-9f;

void random_fill(std::vector<float>& v, unsigned seed, float lo = 0.1f,
                 float hi = 1.0f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (auto& e : v) {
    e = dist(rng);
  }
}

/// Dense GEMM-shaped launch with tuned-library efficiency.
void gemm_launch(RoutineArgs& a, const char* label, double flops,
                 std::size_t bytes_read, std::size_t bytes_written,
                 double efficiency_scale, std::function<void()> body) {
  sim::LaunchStats st;
  st.label = label;
  st.blocks = std::max<std::uint64_t>(16, (bytes_read + bytes_written) / 8192);
  st.threads_per_block = 256;
  st.flops = static_cast<std::uint64_t>(flops);
  st.global_bytes_read = bytes_read;
  st.global_bytes_written = bytes_written;
  st.flop_efficiency =
      a.node->spec(a.sim_device).gemm_efficiency * efficiency_scale;
  a.node->launch(a.stream, st, std::move(body));
}

} // namespace

std::vector<float> synthetic_v(const Shape& shape, unsigned seed) {
  // Planted low-rank structure plus noise, so the factorization converges.
  const std::size_t r = std::max<std::size_t>(2, shape.k / 2);
  std::vector<float> a(shape.n * r), b(r * shape.m);
  random_fill(a, seed);
  random_fill(b, seed + 1);
  std::vector<float> v(shape.n * shape.m, 0.0f);
  for (std::size_t i = 0; i < shape.n; ++i) {
    for (std::size_t p = 0; p < r; ++p) {
      const float av = a[i * r + p];
      for (std::size_t j = 0; j < shape.m; ++j) {
        v[i * shape.m + j] += av * b[p * shape.m + j];
      }
    }
  }
  return v;
}

double reconstruction_error(const std::vector<float>& v,
                            const std::vector<float>& w,
                            const std::vector<float>& h, const Shape& s) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < s.n; ++i) {
    for (std::size_t j = 0; j < s.m; ++j) {
      double wh = 0;
      for (std::size_t p = 0; p < s.k; ++p) {
        wh += static_cast<double>(w[i * s.k + p]) * h[p * s.m + j];
      }
      const double d = v[i * s.m + j] - wh;
      num += d * d;
      den += static_cast<double>(v[i * s.m + j]) * v[i * s.m + j];
    }
  }
  return std::sqrt(num / std::max(den, 1e-30));
}

// ---------------------------------------------------------------------------
// MAPS-Multi implementation (Fig 12)
// ---------------------------------------------------------------------------

namespace {

struct MapsNmfState {
  Shape shape;
  // V-tilde = V / (W H), computed in stripes.
  std::vector<float> vtilde_host;
  std::vector<float> aux_host, acc_host;
};

/// T1/T3: V~_stripe = V_stripe / (W_stripe x H). Patterns: V Block2D, W
/// Block2D, H Block1D (replicated), V~ Structured Injective.
bool vtilde_routine(RoutineArgs& a, const Shape& s) {
  const std::size_t rows = a.container_segments[0].m_dimensions[0];
  if (rows == 0) {
    return true;
  }
  const float* v = a.parameters[0].as<float>();
  const float* w = a.parameters[1].as<float>();
  const float* h = a.parameters[2].as<float>();
  float* vt = a.parameters[3].as<float>();
  const std::size_t m = s.m, k = s.k;
  gemm_launch(a, "nmf::vtilde", 2.0 * static_cast<double>(rows * k * m),
              (rows * (k + m) + k * m) * 4, rows * m * 4, 1.0, [=] {
                for (std::size_t i = 0; i < rows; ++i) {
                  const float* wi = w + i * k;
                  float* vti = vt + i * m;
                  for (std::size_t j = 0; j < m; ++j) {
                    vti[j] = 0.0f;
                  }
                  for (std::size_t p = 0; p < k; ++p) {
                    const float wv = wi[p];
                    const float* hp = h + p * m;
                    for (std::size_t j = 0; j < m; ++j) {
                      vti[j] += wv * hp[j];
                    }
                  }
                  const float* vi = v + i * m;
                  for (std::size_t j = 0; j < m; ++j) {
                    vti[j] = vi[j] / std::max(vti[j], kEps);
                  }
                }
              });
  return true;
}

/// T2: Aux_partial = W_stripe^T x V~_stripe (k x m) and Acc_partial =
/// column sums of W_stripe (k) — the orange blocks of Fig 12, computed
/// independently per stripe and aggregated.
bool aux_routine(RoutineArgs& a, const Shape& s) {
  const std::size_t rows = a.container_segments[0].m_dimensions[0];
  if (rows == 0) {
    return true;
  }
  const float* w = a.parameters[0].as<float>();
  const float* vt = a.parameters[1].as<float>();
  float* aux = a.parameters[2].as<float>();
  float* acc = a.parameters[3].as<float>();
  const std::size_t m = s.m, k = s.k;
  gemm_launch(a, "nmf::aux", 2.0 * static_cast<double>(rows * k * m),
              rows * (k + m) * 4, (k * m + k) * 4, 1.0, [=] {
                for (std::size_t i = 0; i < rows; ++i) {
                  const float* wi = w + i * k;
                  const float* vti = vt + i * m;
                  for (std::size_t p = 0; p < k; ++p) {
                    const float wv = wi[p];
                    acc[p] += wv;
                    if (wv == 0.0f) {
                      continue;
                    }
                    float* auxp = aux + p * m;
                    for (std::size_t j = 0; j < m; ++j) {
                      auxp[j] += wv * vti[j];
                    }
                  }
                }
              });
  return true;
}

/// T4: stripe-local W update — W_ij *= (V~ H^T)_ij / rowsum(H)_j. Needs only
/// the replicated H: no inter-GPU exchange at all (§6.2).
bool wupdate_routine(RoutineArgs& a, const Shape& s) {
  const std::size_t rows = a.container_segments[0].m_dimensions[0];
  if (rows == 0) {
    return true;
  }
  const float* vt = a.parameters[0].as<float>();
  const float* h = a.parameters[1].as<float>();
  float* w = a.parameters[3].as<float>(); // in/out (parameters[2] aliases)
  const std::size_t m = s.m, k = s.k;
  gemm_launch(a, "nmf::wupdate", 2.0 * static_cast<double>(rows * k * m),
              (rows * (k + m) + k * m) * 4, rows * k * 4, 1.0, [=] {
                std::vector<float> hsum(k, 0.0f);
                for (std::size_t p = 0; p < k; ++p) {
                  const float* hp = h + p * m;
                  for (std::size_t j = 0; j < m; ++j) {
                    hsum[p] += hp[j];
                  }
                }
                for (std::size_t i = 0; i < rows; ++i) {
                  const float* vti = vt + i * m;
                  float* wi = w + i * k;
                  for (std::size_t p = 0; p < k; ++p) {
                    const float* hp = h + p * m;
                    float aux = 0.0f;
                    for (std::size_t j = 0; j < m; ++j) {
                      aux += vti[j] * hp[j];
                    }
                    wi[p] *= aux / std::max(hsum[p], kEps);
                  }
                }
              });
  return true;
}

} // namespace

Result run_maps(Scheduler& sched, std::vector<float>& v, std::vector<float>& w,
                std::vector<float>& h, const Shape& shape, int iterations) {
  const bool functional = sched.node().functional();
  w.assign(shape.n * shape.k, 0.0f);
  h.assign(shape.k * shape.m, 0.0f);
  random_fill(w, 101);
  random_fill(h, 102);

  MapsNmfState st;
  st.shape = shape;
  st.vtilde_host.resize(functional ? shape.n * shape.m : 1);
  st.aux_host.resize(shape.k * shape.m);
  st.acc_host.resize(shape.k);

  Matrix<float> V(shape.m, shape.n, "V"), Vt(shape.m, shape.n, "Vtilde");
  Matrix<float> W(shape.k, shape.n, "W");
  Vector<float> H(shape.k * shape.m, "H");
  Matrix<float> Aux(shape.m, shape.k, "Aux");
  Vector<float> Acc(shape.k, "Acc");
  V.Bind(v.data());
  Vt.Bind(st.vtilde_host.data());
  W.Bind(w.data());
  H.Bind(h.data());
  Aux.Bind(st.aux_host.data());
  Acc.Bind(st.acc_host.data());

  const Shape s = shape;
  auto vtilde = [s](RoutineArgs& a) { return vtilde_routine(a, s); };
  auto aux = [s](RoutineArgs& a) { return aux_routine(a, s); };
  auto wupd = [s](RoutineArgs& a) { return wupdate_routine(a, s); };

  // §4.2: forward-declare every task so allocations are sized once.
  sched.AnalyzeCall(Work{shape.n}, Block2D<float>(V), Block2D<float>(W),
                    Block1D<float>(H), StructuredInjective<float, 2>(Vt));
  sched.AnalyzeCall(Work{shape.n}, Block2D<float>(W),
                    Block2D<float>(static_cast<Datum&>(Vt)),
                    SumReduced<float>(Aux), SumReduced<float>(Acc));
  sched.AnalyzeCall(Work{shape.n}, Block2D<float>(static_cast<Datum&>(Vt)),
                    Block1D<float>(H), Block2D<float>(W),
                    StructuredInjective<float, 2>(W));

  sched.WaitAll();
  const double t0 = sched.node().now_ms();
  for (int it = 0; it < iterations; ++it) {
    // --- H update (Fig 12, left half) ---------------------------------------
    sched.InvokeUnmodified(vtilde, nullptr, Work{shape.n}, Block2D<float>(V),
                           Block2D<float>(W), Block1D<float>(H),
                           StructuredInjective<float, 2>(Vt));
    sched.InvokeUnmodified(aux, nullptr, Work{shape.n}, Block2D<float>(W),
                           Block2D<float>(static_cast<Datum&>(Vt)),
                           SumReduced<float>(Aux), SumReduced<float>(Acc));
    // Exchange #1: aggregate the stripe partials.
    sched.GatherAsync(Aux);
    sched.GatherAsync(Acc);
    sched.WaitAll();
    // Tiny host-side element-wise H update (k x m).
    sched.node().advance_host_us(
        10.0 + static_cast<double>(shape.k * shape.m) * 0.4e-3);
    if (functional) {
      for (std::size_t p = 0; p < shape.k; ++p) {
        for (std::size_t j = 0; j < shape.m; ++j) {
          h[p * shape.m + j] *= st.aux_host[p * shape.m + j] /
                                std::max(st.acc_host[p], kEps);
        }
      }
    }
    // Exchange #2: the updated H is re-broadcast on next use.
    sched.MarkHostModified(H);

    // --- W update (Fig 12, right half): fully stripe-local ------------------
    sched.InvokeUnmodified(vtilde, nullptr, Work{shape.n}, Block2D<float>(V),
                           Block2D<float>(W), Block1D<float>(H),
                           StructuredInjective<float, 2>(Vt));
    sched.InvokeUnmodified(wupd, nullptr, Work{shape.n},
                           Block2D<float>(static_cast<Datum&>(Vt)),
                           Block1D<float>(H), Block2D<float>(W),
                           StructuredInjective<float, 2>(W));
  }
  sched.Gather(W);
  sched.WaitAll();

  Result r;
  r.sim_ms = sched.node().now_ms() - t0;
  r.iterations_per_s = iterations / (r.sim_ms * 1e-3);
  if (functional) {
    r.final_error = reconstruction_error(v, w, h, shape);
  }
  return r;
}

// ---------------------------------------------------------------------------
// NMF-mGPU baseline
// ---------------------------------------------------------------------------

Result run_mgpu_baseline(sim::Node& node, std::vector<float>& v,
                         std::vector<float>& w, std::vector<float>& h,
                         const Shape& shape, int iterations, int gpus) {
  const bool functional = node.functional();
  w.assign(shape.n * shape.k, 0.0f);
  h.assign(shape.k * shape.m, 0.0f);
  random_fill(w, 101);
  random_fill(h, 102);

  // The baseline's kernels are hand-tuned for Kepler (§6.2: ILP, specialized
  // instructions); on other architectures they lose their edge.
  auto eff_scale = [&](int dev) {
    return node.spec(dev).arch == sim::Arch::Kepler ? 0.90 : 0.72;
  };
  // MPI + IPC software latency per message (the paper's diagnosis: exchanges
  // pass through the host).
  const double mpi_us = 120.0;

  const std::size_t n = shape.n, m = shape.m, k = shape.k;
  struct Dev {
    std::size_t row0 = 0, rows = 0;
    sim::Buffer *v = nullptr, *vt = nullptr, *w = nullptr, *h = nullptr;
    sim::Buffer *aux = nullptr, *acc = nullptr;
    sim::StreamId stream = 0;
  };
  std::vector<Dev> devs(static_cast<std::size_t>(gpus));
  for (int d = 0; d < gpus; ++d) {
    Dev& dv = devs[static_cast<std::size_t>(d)];
    dv.row0 = n * static_cast<std::size_t>(d) / static_cast<std::size_t>(gpus);
    const std::size_t row1 =
        n * static_cast<std::size_t>(d + 1) / static_cast<std::size_t>(gpus);
    dv.rows = row1 - dv.row0;
    dv.stream = node.default_stream(d);
    dv.v = node.malloc_device(d, std::max<std::size_t>(1, dv.rows * m) * 4);
    dv.vt = node.malloc_device(d, std::max<std::size_t>(1, dv.rows * m) * 4);
    dv.w = node.malloc_device(d, std::max<std::size_t>(1, dv.rows * k) * 4);
    dv.h = node.malloc_device(d, k * m * 4);
    dv.aux = node.malloc_device(d, k * m * 4);
    dv.acc = node.malloc_device(d, k * 4);
    node.memcpy_h2d(dv.stream, dv.v, 0, v.data() + dv.row0 * m,
                    dv.rows * m * 4);
    node.memcpy_h2d(dv.stream, dv.w, 0, w.data() + dv.row0 * k,
                    dv.rows * k * 4);
    node.memcpy_h2d(dv.stream, dv.h, 0, h.data(), k * m * 4);
  }
  node.synchronize();

  std::vector<float> aux_part(static_cast<std::size_t>(gpus) * k * m);
  std::vector<float> acc_part(static_cast<std::size_t>(gpus) * k);

  auto vtilde_kernel = [&](Dev& dv, int d) {
    sim::LaunchStats st;
    st.label = "nmfmgpu::vtilde";
    st.blocks = std::max<std::uint64_t>(16, dv.rows * m / 2048);
    st.flops = 2ull * dv.rows * k * m;
    st.global_bytes_read = (dv.rows * (k + m) + k * m) * 4;
    st.global_bytes_written = dv.rows * m * 4;
    st.flop_efficiency = node.spec(d).gemm_efficiency * eff_scale(d);
    const float* vv = dv.v->has_backing() ? dv.v->as<float>() : nullptr;
    const float* ww = dv.w->has_backing() ? dv.w->as<float>() : nullptr;
    const float* hh = dv.h->has_backing() ? dv.h->as<float>() : nullptr;
    float* vt = dv.vt->has_backing() ? dv.vt->as<float>() : nullptr;
    const std::size_t rows = dv.rows;
    node.launch(dv.stream, st, [=] {
      for (std::size_t i = 0; i < rows; ++i) {
        float* vti = vt + i * m;
        for (std::size_t j = 0; j < m; ++j) {
          vti[j] = 0.0f;
        }
        for (std::size_t p = 0; p < k; ++p) {
          const float wv = ww[i * k + p];
          const float* hp = hh + p * m;
          for (std::size_t j = 0; j < m; ++j) {
            vti[j] += wv * hp[j];
          }
        }
        for (std::size_t j = 0; j < m; ++j) {
          vti[j] = vv[i * m + j] / std::max(vti[j], kEps);
        }
      }
    });
  };

  node.synchronize();
  const double t0 = node.now_ms();
  for (int it = 0; it < iterations; ++it) {
    // --- H update ------------------------------------------------------------
    for (int d = 0; d < gpus; ++d) {
      vtilde_kernel(devs[static_cast<std::size_t>(d)], d);
    }
    for (int d = 0; d < gpus; ++d) {
      Dev& dv = devs[static_cast<std::size_t>(d)];
      sim::LaunchStats st;
      st.label = "nmfmgpu::aux";
      st.blocks = std::max<std::uint64_t>(16, dv.rows * m / 2048);
      st.flops = 2ull * dv.rows * k * m;
      st.global_bytes_read = dv.rows * (k + m) * 4;
      st.global_bytes_written = (k * m + k) * 4;
      st.flop_efficiency = node.spec(d).gemm_efficiency * eff_scale(d);
      float* aux = dv.aux->has_backing() ? dv.aux->as<float>() : nullptr;
      float* acc = dv.acc->has_backing() ? dv.acc->as<float>() : nullptr;
      const float* ww = dv.w->has_backing() ? dv.w->as<float>() : nullptr;
      const float* vt = dv.vt->has_backing() ? dv.vt->as<float>() : nullptr;
      const std::size_t rows = dv.rows;
      node.launch(dv.stream, st, [=] {
        std::fill(aux, aux + k * m, 0.0f);
        std::fill(acc, acc + k, 0.0f);
        for (std::size_t i = 0; i < rows; ++i) {
          for (std::size_t p = 0; p < k; ++p) {
            const float wv = ww[i * k + p];
            acc[p] += wv;
            if (wv == 0.0f) {
              continue;
            }
            for (std::size_t j = 0; j < m; ++j) {
              aux[p * m + j] += wv * vt[i * m + j];
            }
          }
        }
      });
      // MPI_Reduce of the partials: every message crosses the host with
      // software latency; the baseline synchronizes per step.
      node.advance_host_us(mpi_us);
      node.memcpy_d2h(dv.stream,
                      aux_part.data() + static_cast<std::size_t>(d) * k * m,
                      dv.aux, 0, k * m * 4);
      node.memcpy_d2h(dv.stream,
                      acc_part.data() + static_cast<std::size_t>(d) * k,
                      dv.acc, 0, k * 4);
      node.synchronize();
    }
    // Rank 0 combines and updates H on the host.
    node.advance_host_us(mpi_us +
                         static_cast<double>(k * m) * gpus * 0.15e-3);
    if (functional) {
      for (std::size_t p = 0; p < k; ++p) {
        double acc = 0;
        for (int d = 0; d < gpus; ++d) {
          acc += acc_part[static_cast<std::size_t>(d) * k + p];
        }
        for (std::size_t j = 0; j < m; ++j) {
          double aux = 0;
          for (int d = 0; d < gpus; ++d) {
            aux += aux_part[static_cast<std::size_t>(d) * k * m + p * m + j];
          }
          h[p * shape.m + j] *=
              static_cast<float>(aux / std::max(acc, 1e-12));
        }
      }
    }
    // MPI_Bcast of H: host-staged to every device, serialized by rank 0.
    for (int d = 0; d < gpus; ++d) {
      Dev& dv = devs[static_cast<std::size_t>(d)];
      node.advance_host_us(mpi_us);
      node.memcpy_h2d(dv.stream, dv.h, 0, h.data(), k * m * 4);
      node.synchronize();
    }

    // --- W update ------------------------------------------------------------
    for (int d = 0; d < gpus; ++d) {
      vtilde_kernel(devs[static_cast<std::size_t>(d)], d);
    }
    for (int d = 0; d < gpus; ++d) {
      Dev& dv = devs[static_cast<std::size_t>(d)];
      sim::LaunchStats st;
      st.label = "nmfmgpu::wupdate";
      st.blocks = std::max<std::uint64_t>(16, dv.rows * m / 2048);
      st.flops = 2ull * dv.rows * k * m;
      st.global_bytes_read = (dv.rows * (k + m) + k * m) * 4;
      st.global_bytes_written = dv.rows * k * 4;
      st.flop_efficiency = node.spec(d).gemm_efficiency * eff_scale(d);
      float* ww = dv.w->has_backing() ? dv.w->as<float>() : nullptr;
      const float* vt = dv.vt->has_backing() ? dv.vt->as<float>() : nullptr;
      const float* hh = dv.h->has_backing() ? dv.h->as<float>() : nullptr;
      const std::size_t rows = dv.rows;
      node.launch(dv.stream, st, [=] {
        std::vector<float> hsum(k, 0.0f);
        for (std::size_t p = 0; p < k; ++p) {
          for (std::size_t j = 0; j < m; ++j) {
            hsum[p] += hh[p * m + j];
          }
        }
        for (std::size_t i = 0; i < rows; ++i) {
          for (std::size_t p = 0; p < k; ++p) {
            float aux = 0.0f;
            for (std::size_t j = 0; j < m; ++j) {
              aux += vt[i * m + j] * hh[p * m + j];
            }
            ww[i * k + p] *= aux / std::max(hsum[p], kEps);
          }
        }
      });
    }
    node.synchronize(); // per-iteration barrier
  }
  // Read W back.
  for (int d = 0; d < gpus; ++d) {
    Dev& dv = devs[static_cast<std::size_t>(d)];
    node.memcpy_d2h(dv.stream, w.data() + dv.row0 * k, dv.w, 0,
                    dv.rows * k * 4);
  }
  node.synchronize();

  Result r;
  r.sim_ms = node.now_ms() - t0;
  r.iterations_per_s = iterations / (r.sim_ms * 1e-3);
  if (functional) {
    r.final_error = reconstruction_error(v, w, h, shape);
  }
  for (auto& dv : devs) {
    node.free_device(dv.v);
    node.free_device(dv.vt);
    node.free_device(dv.w);
    node.free_device(dv.h);
    node.free_device(dv.aux);
    node.free_device(dv.acc);
  }
  return r;
}

} // namespace nmf
