// Iteration macros mirroring the paper's device-level API (Fig 2b, Fig 4).
//
//   MAPS_FOREACH(iter, out)                — loop over the ILP elements of an
//                                            output container.
//   MAPS_FOREACH_ALIGNED(it, in, out_iter) — loop over the input elements
//                                            aligned with one output element
//                                            (e.g. a stencil neighborhood).
//
// In CUDA MAPS these expand to #pragma unroll loops over compile-time ILP
// extents; here they are ordinary range-for over lightweight iterators.
#pragma once

#define MAPS_FOREACH(iter, container)                                          \
  for (auto iter = (container).begin(); iter != (container).end(); ++iter)

#define MAPS_FOREACH_ALIGNED(iter, container, outer_iter)                      \
  for (auto iter = (container).aligned_begin(outer_iter);                      \
       iter != (container).aligned_end(outer_iter); ++iter)
