// Device-level fundamentals shared by all MAPS containers: grid geometry,
// boundary modes and the per-thread execution context.
//
// The "multiple device abstraction" of the paper (§4, Fig 1b) is realized by
// GridContext: kernels see a single virtual grid; each device executes a
// contiguous slice of its thread-blocks at an offset, so kernel code is
// identical on one GPU and on many.
#pragma once

#include <cstdint>

namespace maps {

struct Dim3 {
  unsigned x = 1, y = 1, z = 1;
  std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
};

/// Out-of-range handling for Window patterns (paper Fig 2: WRAP, NO_CHECKS).
enum class Boundary {
  Wrap,    ///< Toroidal wrap-around (Game of Life).
  Clamp,   ///< Clamp to the nearest valid element.
  Zero,    ///< Out-of-range reads produce T{}.
  NoChecks ///< Caller guarantees accesses stay in range (r=0 windows).
};

inline constexpr Boundary WRAP = Boundary::Wrap;
inline constexpr Boundary CLAMP = Boundary::Clamp;
inline constexpr Boundary ZERO = Boundary::Zero;
inline constexpr Boundary NO_CHECKS = Boundary::NoChecks;

/// The virtual multi-GPU grid as seen by one device.
struct GridContext {
  Dim3 grid_dim;  ///< Virtual (whole-task) grid dimensions, in blocks.
  Dim3 block_dim; ///< Threads per block.
  /// First virtual block row executed by this device (offsetting the
  /// thread-blocks in each device differently, §4).
  unsigned block_row_offset = 0;
  /// Number of virtual block rows executed by this device.
  unsigned block_rows = 0;
  int device = 0;
  int device_count = 1;
  /// Work (element) dimensions of the task, pre-ILP.
  unsigned work_width = 1, work_height = 1;
  /// Elements processed per thread (from the output container, §4.5.1).
  unsigned ilp_x = 1, ilp_y = 1;
};

/// Per-thread state during functional execution. The framework advances this
/// across blocks/threads; containers read it to resolve index-free accesses.
struct ThreadContext {
  const GridContext* grid = nullptr;
  Dim3 block;  ///< Virtual block index (global across devices).
  Dim3 thread; ///< Thread index within the block.

  /// Work-space coordinates of this thread's first ILP element.
  unsigned work_x0() const {
    return (block.x * grid->block_dim.x + thread.x) * grid->ilp_x;
  }
  unsigned work_y0() const {
    return (block.y * grid->block_dim.y + thread.y) * grid->ilp_y;
  }
};

} // namespace maps
