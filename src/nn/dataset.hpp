// Synthetic digit dataset — the reproduction's substitute for MNIST
// (DESIGN.md §2): the paper's throughput experiments need realistic tensor
// shapes (70,000 28x28 grayscale digits, batches of 2048), not real pixels.
//
// Each class is a fixed random blob pattern; samples are noisy, shifted
// instances of their class template, so a LeNet genuinely learns to
// classify them (convergence is asserted in tests).
#pragma once

#include <cstddef>
#include <vector>

namespace nn {

class SyntheticDigits {
public:
  SyntheticDigits(std::size_t count, std::size_t image_size = 28,
                  std::size_t classes = 10, unsigned seed = 17);

  std::size_t size() const { return labels_.size(); }
  std::size_t image_elems() const { return image_size_ * image_size_; }

  /// Pixel buffer of sample range [begin, begin+n), row-major.
  const float* images(std::size_t begin = 0) const {
    return pixels_.data() + begin * image_elems();
  }
  const int* labels(std::size_t begin = 0) const {
    return labels_.data() + begin;
  }

private:
  std::size_t image_size_;
  std::vector<float> pixels_;
  std::vector<int> labels_;
};

} // namespace nn
