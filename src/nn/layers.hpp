// CPU reference math for the deep-learning substrate (paper §6.1).
//
// These are the functional bodies of the simulated GPU routines: 4-D
// multi-convolution (each image convolved with several filters, Window(3D)
// input / Structured Injective output in the paper's classification),
// max-pooling, fully connected layers (Block(2D) x Block(2D-Transposed)) and
// softmax cross-entropy. All tensors are row-major with the batch dimension
// outermost; convolutions are "valid" (no padding), pooling is 2x2 stride 2,
// exactly the LeNet configuration of the paper's evaluation.
#pragma once

#include <cstddef>

namespace nn {

/// Convolution layer geometry (valid convolution, square kernels).
struct ConvShape {
  std::size_t in_c = 1, in_h = 0, in_w = 0;
  std::size_t out_c = 1, k = 5;
  std::size_t out_h() const { return in_h - k + 1; }
  std::size_t out_w() const { return in_w - k + 1; }
  std::size_t in_size() const { return in_c * in_h * in_w; }
  std::size_t out_size() const { return out_c * out_h() * out_w(); }
  std::size_t weight_count() const { return out_c * in_c * k * k; }
  /// FLOPs of one forward pass over `batch` images.
  double forward_flops(std::size_t batch) const {
    return 2.0 * static_cast<double>(batch) * static_cast<double>(out_c) *
           static_cast<double>(in_c) * static_cast<double>(k * k) *
           static_cast<double>(out_h() * out_w());
  }
};

/// y = conv(x, w) + b, optionally ReLU'd. w layout: [out_c][in_c][k][k].
void conv_forward(const float* x, const float* w, const float* b, float* y,
                  std::size_t batch, const ConvShape& s, bool relu);

/// dx = conv_backward_data(dy, w); pass dx = nullptr to skip (first layer).
/// If relu, dy is masked by (y > 0) first (y = stored post-activation).
void conv_backward_data(const float* dy, const float* y, const float* w,
                        float* dx, std::size_t batch, const ConvShape& s,
                        bool relu);

/// Accumulates filter/bias gradients: dw += x (*) dy, db += sum(dy).
void conv_backward_filter(const float* x, const float* dy, const float* y,
                          float* dw, float* db, std::size_t batch,
                          const ConvShape& s, bool relu);

/// 2x2 stride-2 max pooling over [batch][c][h][w] (h, w even).
void maxpool_forward(const float* x, float* y, std::size_t batch,
                     std::size_t c, std::size_t h, std::size_t w);
/// Routes dy back to the argmax positions (recomputed from x).
void maxpool_backward(const float* x, const float* dy, float* dx,
                      std::size_t batch, std::size_t c, std::size_t h,
                      std::size_t w);

/// y[batch][out] = x[batch][in] * W^T + b, W layout [out][in]; optional ReLU.
void fc_forward(const float* x, const float* w, const float* b, float* y,
                std::size_t batch, std::size_t in, std::size_t out, bool relu);
/// dx = dy W (nullptr to skip); dw += dy^T x; db += colsum(dy); masked by
/// (y > 0) when relu.
void fc_backward(const float* x, const float* y, const float* w,
                 const float* dy, float* dx, float* dw, float* db,
                 std::size_t batch, std::size_t in, std::size_t out,
                 bool relu);

/// Softmax + cross-entropy: writes dlogits = (softmax - onehot)/batch_total
/// and accumulates the summed loss into *loss_accum.
void softmax_xent(const float* logits, const int* labels, float* dlogits,
                  float* loss_accum, std::size_t batch,
                  std::size_t batch_total, std::size_t classes);

/// Counts correct argmax predictions.
std::size_t count_correct(const float* logits, const int* labels,
                          std::size_t batch, std::size_t classes);

/// SGD step: w -= lr * dw over n elements.
void sgd_step(float* w, const float* dw, std::size_t n, float lr);

} // namespace nn
