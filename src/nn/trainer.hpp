// Multi-GPU LeNet trainers over MAPS-Multi (paper §6.1, Fig 10-11).
//
// Four training strategies are compared in the paper's Fig 11:
//
//  * SingleGpu ("Caffe-like"): the whole network on one device (Caffe had no
//    multi-GPU support at the time).
//  * DataParallel (MAPS-Multi): each GPU trains on a batch slice; weights
//    are replicated inputs (Block 1D), weight gradients are duplicated
//    reductive outputs summed on gather, the host applies SGD and the next
//    iteration re-uploads the parameters — "exchanging partial derivatives
//    of all the parameters during the network update phase".
//  * Hybrid data/model parallel (Krizhevsky's "one weird trick"): the
//    convolutional part stays data-parallel, the first (large) fully
//    connected layer is partitioned by output neurons so its parameters
//    never leave the devices; activations and deltas are exchanged instead.
//    In MAPS-Multi this is "a single access pattern modification in the
//    fully connected layers" — Block(2D) weights become partition-aligned
//    and the layer inputs become replicated (Block 2D-Transposed).
//  * TorchLike baseline: data-parallel, but all weight updates run on a
//    single GPU and every iteration performs unnecessary device-to-host
//    copies and a blocking synchronization — the paper's diagnosis of
//    Torch's inferior ~2.07x scaling.
//
// Functional mode trains a real network (tests assert convergence);
// TimingOnly mode reproduces the Fig 11 throughput comparison at the paper's
// batch size of 2048.
#pragma once

#include <memory>

#include "multi/maps_multi.hpp"
#include "nn/dataset.hpp"
#include "nn/lenet.hpp"

namespace nn {

enum class Strategy { SingleGpu, DataParallel, Hybrid, TorchLike };

const char* to_string(Strategy s);

struct TrainResult {
  double sim_ms = 0;           ///< Simulated time for the trained iterations.
  double images_per_second = 0; ///< Throughput in simulated time (Fig 11).
  float final_loss = 0;        ///< Mean loss of the last iteration.
};

class Trainer {
public:
  /// `batch` images per iteration, split across the scheduler's devices.
  Trainer(maps::multi::Scheduler& sched, LeNetParams& params,
          const SyntheticDigits& data, std::size_t batch, Strategy strategy,
          float lr = 0.05f);
  ~Trainer();
  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// Runs `iterations` training steps; batches cycle through the dataset.
  TrainResult train(int iterations);

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

} // namespace nn
