#include "nn/dataset.hpp"

#include <algorithm>
#include <random>

namespace nn {

SyntheticDigits::SyntheticDigits(std::size_t count, std::size_t image_size,
                                 std::size_t classes, unsigned seed)
    : image_size_(image_size) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> noise(-0.1f, 0.1f);
  std::uniform_int_distribution<int> shift(-1, 1);

  // Class templates: each class lights one block of a 4x3 grid plus a
  // class-specific diagonal stroke — cleanly separable (like digit strokes)
  // yet still requiring spatial feature extraction under shift and noise.
  std::vector<std::vector<float>> templates(classes);
  const std::size_t cell = std::max<std::size_t>(3, image_size / 4);
  for (std::size_t c = 0; c < classes; ++c) {
    auto& t = templates[c];
    t.assign(image_elems(), 0.0f);
    const std::size_t gy = (c % 3) * cell + 1;
    const std::size_t gx = (c / 3) * (cell - 1) + 1;
    for (std::size_t dy = 0; dy < cell && gy + dy < image_size; ++dy) {
      for (std::size_t dx = 0; dx < cell && gx + dx < image_size; ++dx) {
        t[(gy + dy) * image_size + gx + dx] = 0.9f;
      }
    }
    // Diagonal stroke whose direction alternates by class parity.
    for (std::size_t d = 0; d < image_size; ++d) {
      const std::size_t x = (c % 2 == 0) ? d : image_size - 1 - d;
      t[d * image_size + x] = std::max(t[d * image_size + x], 0.7f);
    }
  }

  pixels_.resize(count * image_elems());
  labels_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto label = static_cast<int>(rng() % classes);
    labels_[i] = label;
    const auto& t = templates[static_cast<std::size_t>(label)];
    const int sy = shift(rng), sx = shift(rng);
    float* img = pixels_.data() + i * image_elems();
    for (std::size_t y = 0; y < image_size; ++y) {
      for (std::size_t x = 0; x < image_size; ++x) {
        const long ty = static_cast<long>(y) - sy;
        const long tx = static_cast<long>(x) - sx;
        float v = 0.0f;
        if (ty >= 0 && tx >= 0 && ty < static_cast<long>(image_size) &&
            tx < static_cast<long>(image_size)) {
          v = t[static_cast<std::size_t>(ty) * image_size +
                static_cast<std::size_t>(tx)];
        }
        img[y * image_size + x] = std::clamp(v + noise(rng), 0.0f, 1.0f);
      }
    }
  }
}

} // namespace nn
