#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace nn {

void conv_forward(const float* x, const float* w, const float* b, float* y,
                  std::size_t batch, const ConvShape& s, bool relu) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x + n * s.in_size();
    float* yn = y + n * s.out_size();
    for (std::size_t oc = 0; oc < s.out_c; ++oc) {
      float* yc = yn + oc * oh * ow;
      const float bias = b != nullptr ? b[oc] : 0.0f;
      for (std::size_t i = 0; i < oh * ow; ++i) {
        yc[i] = bias;
      }
      for (std::size_t ic = 0; ic < s.in_c; ++ic) {
        const float* xc = xn + ic * s.in_h * s.in_w;
        const float* wk = w + (oc * s.in_c + ic) * s.k * s.k;
        for (std::size_t ky = 0; ky < s.k; ++ky) {
          for (std::size_t kx = 0; kx < s.k; ++kx) {
            const float wv = wk[ky * s.k + kx];
            if (wv == 0.0f) {
              continue;
            }
            for (std::size_t y0 = 0; y0 < oh; ++y0) {
              const float* xrow = xc + (y0 + ky) * s.in_w + kx;
              float* yrow = yc + y0 * ow;
              for (std::size_t x0 = 0; x0 < ow; ++x0) {
                yrow[x0] += wv * xrow[x0];
              }
            }
          }
        }
      }
      if (relu) {
        for (std::size_t i = 0; i < oh * ow; ++i) {
          yc[i] = std::max(yc[i], 0.0f);
        }
      }
    }
  }
}

void conv_backward_data(const float* dy, const float* y, const float* w,
                        float* dx, std::size_t batch, const ConvShape& s,
                        bool relu) {
  if (dx == nullptr) {
    return;
  }
  const std::size_t oh = s.out_h(), ow = s.out_w();
  std::memset(dx, 0, batch * s.in_size() * sizeof(float));
  for (std::size_t n = 0; n < batch; ++n) {
    const float* dyn = dy + n * s.out_size();
    const float* yn = y + n * s.out_size();
    float* dxn = dx + n * s.in_size();
    for (std::size_t oc = 0; oc < s.out_c; ++oc) {
      const float* dyc = dyn + oc * oh * ow;
      const float* yc = yn + oc * oh * ow;
      for (std::size_t ic = 0; ic < s.in_c; ++ic) {
        float* dxc = dxn + ic * s.in_h * s.in_w;
        const float* wk = w + (oc * s.in_c + ic) * s.k * s.k;
        for (std::size_t y0 = 0; y0 < oh; ++y0) {
          for (std::size_t x0 = 0; x0 < ow; ++x0) {
            float g = dyc[y0 * ow + x0];
            if (relu && yc[y0 * ow + x0] <= 0.0f) {
              continue;
            }
            if (g == 0.0f) {
              continue;
            }
            for (std::size_t ky = 0; ky < s.k; ++ky) {
              float* dxrow = dxc + (y0 + ky) * s.in_w + x0;
              const float* wrow = wk + ky * s.k;
              for (std::size_t kx = 0; kx < s.k; ++kx) {
                dxrow[kx] += g * wrow[kx];
              }
            }
          }
        }
      }
    }
  }
}

void conv_backward_filter(const float* x, const float* dy, const float* y,
                          float* dw, float* db, std::size_t batch,
                          const ConvShape& s, bool relu) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x + n * s.in_size();
    const float* dyn = dy + n * s.out_size();
    const float* yn = y + n * s.out_size();
    for (std::size_t oc = 0; oc < s.out_c; ++oc) {
      const float* dyc = dyn + oc * oh * ow;
      const float* yc = yn + oc * oh * ow;
      for (std::size_t y0 = 0; y0 < oh; ++y0) {
        for (std::size_t x0 = 0; x0 < ow; ++x0) {
          float g = dyc[y0 * ow + x0];
          if (relu && yc[y0 * ow + x0] <= 0.0f) {
            continue;
          }
          if (g == 0.0f) {
            continue;
          }
          db[oc] += g;
          for (std::size_t ic = 0; ic < s.in_c; ++ic) {
            const float* xc = xn + ic * s.in_h * s.in_w;
            float* wk = dw + (oc * s.in_c + ic) * s.k * s.k;
            for (std::size_t ky = 0; ky < s.k; ++ky) {
              const float* xrow = xc + (y0 + ky) * s.in_w + x0;
              float* wrow = wk + ky * s.k;
              for (std::size_t kx = 0; kx < s.k; ++kx) {
                wrow[kx] += g * xrow[kx];
              }
            }
          }
        }
      }
    }
  }
}

void maxpool_forward(const float* x, float* y, std::size_t batch,
                     std::size_t c, std::size_t h, std::size_t w) {
  const std::size_t oh = h / 2, ow = w / 2;
  for (std::size_t n = 0; n < batch * c; ++n) {
    const float* xc = x + n * h * w;
    float* yc = y + n * oh * ow;
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const std::size_t base = 2 * i * w + 2 * j;
        yc[i * ow + j] =
            std::max(std::max(xc[base], xc[base + 1]),
                     std::max(xc[base + w], xc[base + w + 1]));
      }
    }
  }
}

void maxpool_backward(const float* x, const float* dy, float* dx,
                      std::size_t batch, std::size_t c, std::size_t h,
                      std::size_t w) {
  const std::size_t oh = h / 2, ow = w / 2;
  std::memset(dx, 0, batch * c * h * w * sizeof(float));
  for (std::size_t n = 0; n < batch * c; ++n) {
    const float* xc = x + n * h * w;
    const float* dyc = dy + n * oh * ow;
    float* dxc = dx + n * h * w;
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const std::size_t base = 2 * i * w + 2 * j;
        const std::size_t idx[4] = {base, base + 1, base + w, base + w + 1};
        std::size_t best = idx[0];
        for (int t = 1; t < 4; ++t) {
          if (xc[idx[t]] > xc[best]) {
            best = idx[t];
          }
        }
        dxc[best] += dyc[i * ow + j];
      }
    }
  }
}

void fc_forward(const float* x, const float* w, const float* b, float* y,
                std::size_t batch, std::size_t in, std::size_t out,
                bool relu) {
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x + n * in;
    float* yn = y + n * out;
    for (std::size_t o = 0; o < out; ++o) {
      float acc = b != nullptr ? b[o] : 0.0f;
      const float* wo = w + o * in;
      for (std::size_t i = 0; i < in; ++i) {
        acc += xn[i] * wo[i];
      }
      yn[o] = relu ? std::max(acc, 0.0f) : acc;
    }
  }
}

void fc_backward(const float* x, const float* y, const float* w,
                 const float* dy, float* dx, float* dw, float* db,
                 std::size_t batch, std::size_t in, std::size_t out,
                 bool relu) {
  if (dx != nullptr) {
    std::memset(dx, 0, batch * in * sizeof(float));
  }
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xn = x + n * in;
    const float* yn = y + n * out;
    const float* dyn = dy + n * out;
    float* dxn = dx != nullptr ? dx + n * in : nullptr;
    for (std::size_t o = 0; o < out; ++o) {
      float g = dyn[o];
      if (relu && yn[o] <= 0.0f) {
        continue;
      }
      if (g == 0.0f) {
        continue;
      }
      db[o] += g;
      const float* wo = w + o * in;
      float* dwo = dw + o * in;
      for (std::size_t i = 0; i < in; ++i) {
        dwo[i] += g * xn[i];
        if (dxn != nullptr) {
          dxn[i] += g * wo[i];
        }
      }
    }
  }
}

void softmax_xent(const float* logits, const int* labels, float* dlogits,
                  float* loss_accum, std::size_t batch,
                  std::size_t batch_total, std::size_t classes) {
  for (std::size_t n = 0; n < batch; ++n) {
    const float* ln = logits + n * classes;
    float* dn = dlogits + n * classes;
    float maxv = ln[0];
    for (std::size_t c = 1; c < classes; ++c) {
      maxv = std::max(maxv, ln[c]);
    }
    float sum = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      dn[c] = std::exp(ln[c] - maxv);
      sum += dn[c];
    }
    const auto label = static_cast<std::size_t>(labels[n]);
    for (std::size_t c = 0; c < classes; ++c) {
      const float p = dn[c] / sum;
      dn[c] = (p - (c == label ? 1.0f : 0.0f)) /
              static_cast<float>(batch_total);
      if (c == label) {
        *loss_accum += -std::log(std::max(p, 1e-12f));
      }
    }
  }
}

std::size_t count_correct(const float* logits, const int* labels,
                          std::size_t batch, std::size_t classes) {
  std::size_t correct = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    const float* ln = logits + n * classes;
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (ln[c] > ln[best]) {
        best = c;
      }
    }
    correct += best == static_cast<std::size_t>(labels[n]) ? 1 : 0;
  }
  return correct;
}

void sgd_step(float* w, const float* dw, std::size_t n, float lr) {
  for (std::size_t i = 0; i < n; ++i) {
    w[i] -= lr * dw[i];
  }
}

} // namespace nn
