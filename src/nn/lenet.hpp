// LeNet — the convolutional network of the paper's deep-learning evaluation
// (§6.1, Fig 10): conv(20@5x5) -> pool -> conv(50@5x5) -> pool ->
// fc(500, ReLU) -> fc(10) -> softmax, trained on 28x28 digit images with
// backpropagation.
#pragma once

#include <cstddef>
#include <random>
#include <vector>

#include "nn/layers.hpp"

namespace nn {

struct LeNetConfig {
  std::size_t image = 28;
  std::size_t conv1_filters = 20;
  std::size_t conv2_filters = 50;
  std::size_t fc1_units = 500;
  std::size_t classes = 10;
  std::size_t kernel = 5;

  ConvShape conv1() const {
    return ConvShape{1, image, image, conv1_filters, kernel};
  }
  ConvShape conv2() const {
    const std::size_t p1 = conv1().out_h() / 2;
    return ConvShape{conv1_filters, p1, p1, conv2_filters, kernel};
  }
  std::size_t fc1_inputs() const {
    const ConvShape c2 = conv2();
    return c2.out_c * (c2.out_h() / 2) * (c2.out_w() / 2);
  }
  /// Total trainable parameters (the data-parallel exchange volume, §6.1).
  std::size_t param_count() const;
  /// Training FLOPs per image (forward + backward, approx. 3x forward).
  double train_flops_per_image() const;
};

/// Host-resident parameters and gradients of one LeNet instance.
struct LeNetParams {
  explicit LeNetParams(const LeNetConfig& config, unsigned seed = 1);

  LeNetConfig cfg;
  std::vector<float> conv1_w, conv1_b, conv2_w, conv2_b;
  std::vector<float> fc1_w, fc1_b, fc2_w, fc2_b;

  std::vector<float> g_conv1_w, g_conv1_b, g_conv2_w, g_conv2_b;
  std::vector<float> g_fc1_w, g_fc1_b, g_fc2_w, g_fc2_b;

  void zero_grads();
  void sgd(float lr);
  std::size_t param_count() const { return cfg.param_count(); }
};

/// Intermediate activations for a batch (one device's share or the whole
/// batch for the CPU reference).
struct LeNetActivations {
  LeNetActivations(const LeNetConfig& config, std::size_t batch);
  std::size_t batch;
  std::vector<float> conv1, pool1, conv2, pool2, fc1, logits, dlogits;
  std::vector<float> d_fc1, d_pool2, d_conv2, d_pool1, d_conv1;
};

/// Full CPU training step (reference implementation used by tests and as
/// the functional body of the simulated kernels): returns summed loss.
float lenet_train_step(LeNetParams& params, LeNetActivations& acts,
                       const float* images, const int* labels,
                       std::size_t batch, std::size_t batch_total);

/// Forward-only pass; returns number of correct predictions.
std::size_t lenet_eval(const LeNetParams& params, const float* images,
                       const int* labels, std::size_t batch);

} // namespace nn
