#include "nn/trainer.hpp"

#include <cstring>
#include <stdexcept>

namespace nn {

using namespace maps::multi;

const char* to_string(Strategy s) {
  switch (s) {
  case Strategy::SingleGpu:
    return "single-gpu (caffe-like)";
  case Strategy::DataParallel:
    return "data-parallel (MAPS-Multi)";
  case Strategy::Hybrid:
    return "hybrid data/model (MAPS-Multi)";
  case Strategy::TorchLike:
    return "torch-like baseline";
  }
  return "?";
}

namespace {

/// Enqueues one simulated layer kernel with tuned-library costs (all
/// frameworks in Fig 11 use the same cuDNN v2 routines, hence the shared
/// cost model).
void layer_launch(RoutineArgs& a, const char* label, double flops,
                  std::size_t bytes_read, std::size_t bytes_written,
                  std::function<void()> body) {
  sim::LaunchStats st;
  st.label = label;
  st.blocks = std::max<std::uint64_t>(8, (bytes_read + bytes_written) / 8192);
  st.threads_per_block = 256;
  st.flops = static_cast<std::uint64_t>(flops);
  st.global_bytes_read = bytes_read;
  st.global_bytes_written = bytes_written;
  st.flop_efficiency = a.node->spec(a.sim_device).gemm_efficiency * 0.85;
  a.node->launch(a.stream, st, std::move(body));
}

float* buf(sim::Buffer* b) {
  return b != nullptr && b->has_backing() ? b->as<float>() : nullptr;
}

/// Per-device activation scratch, owned by the trainer — the
/// programmer-generated context object pattern of Fig 5.
struct DeviceScratch {
  bool allocated = false;
  sim::Buffer* conv1 = nullptr;
  sim::Buffer* pool1 = nullptr;
  sim::Buffer* conv2 = nullptr;
  sim::Buffer* pool2 = nullptr;
  sim::Buffer* fc1 = nullptr;
  sim::Buffer* logits = nullptr;
  sim::Buffer* dlogits = nullptr;
  sim::Buffer* d_fc1 = nullptr;
  sim::Buffer* d_pool2 = nullptr;
  sim::Buffer* d_conv2 = nullptr;
  sim::Buffer* d_pool1 = nullptr;
  sim::Buffer* d_conv1 = nullptr;
};

} // namespace

struct Trainer::Impl {
  Scheduler& sched;
  LeNetParams& params;
  const SyntheticDigits& data;
  std::size_t batch;
  Strategy strategy;
  float lr;
  LeNetConfig cfg;

  // --- Datums ---------------------------------------------------------------
  Matrix<float> images; // [batch][pixels]
  Vector<int> labels;
  // Parameters. In the hybrid strategy, fc1's weights/bias are Matrices
  // partitioned by output neuron — the paper's "single access pattern
  // modification in the fully connected layers" (§6.1); everywhere else
  // parameters are replicated vectors.
  Vector<float> w_c1w, w_c1b, w_c2w, w_c2b, w_f1w_v, w_f1b_v, w_f2w, w_f2b;
  Matrix<float> w_f1w_m, w_f1b_m;
  Vector<float> g_c1w, g_c1b, g_c2w, g_c2b, g_f1w, g_f1b, g_f2w, g_f2b;
  Vector<float> loss_d;
  // Hybrid intermediates (the exchanged activations/deltas of Fig 10). The
  // interface between the model-parallel FC part and the rest is the tiny
  // logits tensor, so the frequent exchanges stay small (§6.1).
  Matrix<float> pool2_out;  // [batch][fc1_in]
  Matrix<float> fc1_act;    // [fc1_units][batch] — model-parallel layout
  Matrix<float> logits_mp;  // [classes][batch] — summed partial logits
  Matrix<float> dlogits_mp; // [batch][classes]
  Matrix<float> g_f2w_mp;   // [fc1_units][classes] — neuron-partitioned
  Matrix<float> d_pool2_d;  // [batch][fc1_in]
  std::vector<float> d_pool2_host, pool2_host, fc1_act_host, logits_host,
      dlogits_host, g_f2w_mp_host;

  float loss_host = 0;
  std::vector<DeviceScratch> scratch;
  float last_loss = 0;

  Impl(Scheduler& s, LeNetParams& p, const SyntheticDigits& d,
       std::size_t batch_size, Strategy strat, float lr_in)
      : sched(s), params(p), data(d), batch(batch_size), strategy(strat),
        lr(lr_in), cfg(p.cfg),
        images(d.image_elems(), batch, "images"), labels(batch, "labels"),
        w_c1w(p.conv1_w.size(), "conv1_w"), w_c1b(p.conv1_b.size(), "conv1_b"),
        w_c2w(p.conv2_w.size(), "conv2_w"), w_c2b(p.conv2_b.size(), "conv2_b"),
        w_f1w_v(p.fc1_w.size(), "fc1_w"), w_f1b_v(p.fc1_b.size(), "fc1_b"),
        w_f2w(p.fc2_w.size(), "fc2_w"), w_f2b(p.fc2_b.size(), "fc2_b"),
        w_f1w_m(cfg.fc1_inputs(), cfg.fc1_units, "fc1_w_mp"),
        w_f1b_m(1, cfg.fc1_units, "fc1_b_mp"),
        g_c1w(p.g_conv1_w.size(), "g_conv1_w"),
        g_c1b(p.g_conv1_b.size(), "g_conv1_b"),
        g_c2w(p.g_conv2_w.size(), "g_conv2_w"),
        g_c2b(p.g_conv2_b.size(), "g_conv2_b"),
        g_f1w(p.g_fc1_w.size(), "g_fc1_w"), g_f1b(p.g_fc1_b.size(), "g_fc1_b"),
        g_f2w(p.g_fc2_w.size(), "g_fc2_w"), g_f2b(p.g_fc2_b.size(), "g_fc2_b"),
        loss_d(1, "loss"), pool2_out(cfg.fc1_inputs(), batch, "pool2_out"),
        fc1_act(batch, cfg.fc1_units, "fc1_act"),
        logits_mp(batch, cfg.classes, "logits_mp"),
        dlogits_mp(cfg.classes, batch, "dlogits_mp"),
        g_f2w_mp(cfg.classes, cfg.fc1_units, "g_fc2_w_mp"),
        d_pool2_d(cfg.fc1_inputs(), batch, "d_pool2") {
    w_c1w.Bind(p.conv1_w.data());
    w_c1b.Bind(p.conv1_b.data());
    w_c2w.Bind(p.conv2_w.data());
    w_c2b.Bind(p.conv2_b.data());
    w_f1w_v.Bind(p.fc1_w.data());
    w_f1w_m.Bind(p.fc1_w.data());
    w_f1b_v.Bind(p.fc1_b.data());
    w_f1b_m.Bind(p.fc1_b.data());
    w_f2w.Bind(p.fc2_w.data());
    w_f2b.Bind(p.fc2_b.data());
    g_c1w.Bind(p.g_conv1_w.data());
    g_c1b.Bind(p.g_conv1_b.data());
    g_c2w.Bind(p.g_conv2_w.data());
    g_c2b.Bind(p.g_conv2_b.data());
    g_f1w.Bind(p.g_fc1_w.data());
    g_f1b.Bind(p.g_fc1_b.data());
    g_f2w.Bind(p.g_fc2_w.data());
    g_f2b.Bind(p.g_fc2_b.data());
    loss_d.Bind(&loss_host);
    pool2_host.resize(batch * cfg.fc1_inputs());
    fc1_act_host.resize(batch * cfg.fc1_units);
    logits_host.resize(batch * cfg.classes);
    dlogits_host.resize(batch * cfg.classes);
    g_f2w_mp_host.resize(cfg.classes * cfg.fc1_units);
    d_pool2_host.resize(batch * cfg.fc1_inputs());
    pool2_out.Bind(pool2_host.data());
    fc1_act.Bind(fc1_act_host.data());
    logits_mp.Bind(logits_host.data());
    dlogits_mp.Bind(dlogits_host.data());
    g_f2w_mp.Bind(g_f2w_mp_host.data());
    d_pool2_d.Bind(d_pool2_host.data());
    scratch.resize(static_cast<std::size_t>(sched.slots()));
  }

  DeviceScratch& ensure_scratch(RoutineArgs& a, std::size_t b_local) {
    DeviceScratch& sc = scratch[static_cast<std::size_t>(a.device_idx)];
    if (sc.allocated) {
      return sc;
    }
    const ConvShape c1 = cfg.conv1(), c2 = cfg.conv2();
    auto alloc = [&](std::size_t elems) {
      return a.node->malloc_device(a.sim_device, elems * sizeof(float));
    };
    sc.conv1 = alloc(b_local * c1.out_size());
    sc.pool1 = alloc(b_local * c2.in_size());
    sc.conv2 = alloc(b_local * c2.out_size());
    sc.pool2 = alloc(b_local * cfg.fc1_inputs());
    sc.fc1 = alloc(b_local * cfg.fc1_units);
    sc.logits = alloc(b_local * cfg.classes);
    sc.dlogits = alloc(b_local * cfg.classes);
    sc.d_fc1 = alloc(b_local * cfg.fc1_units);
    sc.d_pool2 = alloc(b_local * cfg.fc1_inputs());
    sc.d_conv2 = alloc(b_local * c2.out_size());
    sc.d_pool1 = alloc(b_local * c2.in_size());
    sc.d_conv1 = alloc(b_local * c1.out_size());
    sc.allocated = true;
    return sc;
  }

  // ==========================================================================
  // Data-parallel (and torch-like) path: one fused fwd+bwd routine/iteration
  // ==========================================================================

  enum DpParam {
    kImages = 0, kLabels, kC1w, kC1b, kC2w, kC2b, kF1w, kF1b, kF2w, kF2b,
    kGc1w, kGc1b, kGc2w, kGc2b, kGf1w, kGf1b, kGf2w, kGf2b, kLoss,
  };

  bool dp_step(RoutineArgs& a) {
    const std::size_t b_local = a.container_segments[kImages].m_dimensions[0];
    if (b_local == 0) {
      return true;
    }
    DeviceScratch& sc = ensure_scratch(a, b_local);
    const ConvShape c1 = cfg.conv1(), c2 = cfg.conv2();
    const std::size_t f1_in = cfg.fc1_inputs(), f1 = cfg.fc1_units,
                      cls = cfg.classes;
    const std::size_t bt = batch;
    const LeNetConfig c = cfg;

    const float* x = a.parameters[kImages].as<float>();
    const int* lab = a.parameters[kLabels].as<int>();
    const float* c1w = a.parameters[kC1w].as<float>();
    const float* c1b = a.parameters[kC1b].as<float>();
    const float* c2w = a.parameters[kC2w].as<float>();
    const float* c2b = a.parameters[kC2b].as<float>();
    const float* f1w = a.parameters[kF1w].as<float>();
    const float* f1b = a.parameters[kF1b].as<float>();
    const float* f2w = a.parameters[kF2w].as<float>();
    const float* f2b = a.parameters[kF2b].as<float>();
    float* gc1w = a.parameters[kGc1w].as<float>();
    float* gc1b = a.parameters[kGc1b].as<float>();
    float* gc2w = a.parameters[kGc2w].as<float>();
    float* gc2b = a.parameters[kGc2b].as<float>();
    float* gf1w = a.parameters[kGf1w].as<float>();
    float* gf1b = a.parameters[kGf1b].as<float>();
    float* gf2w = a.parameters[kGf2w].as<float>();
    float* gf2b = a.parameters[kGf2b].as<float>();
    float* loss = a.parameters[kLoss].as<float>();

    // Forward.
    layer_launch(a, "conv1_fwd", c1.forward_flops(b_local),
                 b_local * c1.in_size() * 4, b_local * c1.out_size() * 4,
                 [=] { conv_forward(x, c1w, c1b, buf(sc.conv1), b_local,
                                    c.conv1(), true); });
    layer_launch(a, "pool1", static_cast<double>(b_local * c2.in_size()),
                 b_local * c1.out_size() * 4, b_local * c2.in_size() * 4,
                 [=] {
                   maxpool_forward(buf(sc.conv1), buf(sc.pool1), b_local,
                                   c.conv1().out_c, c.conv1().out_h(),
                                   c.conv1().out_w());
                 });
    layer_launch(a, "conv2_fwd", c2.forward_flops(b_local),
                 b_local * c2.in_size() * 4, b_local * c2.out_size() * 4,
                 [=] { conv_forward(buf(sc.pool1), c2w, c2b, buf(sc.conv2),
                                    b_local, c.conv2(), true); });
    layer_launch(a, "pool2", static_cast<double>(b_local * f1_in),
                 b_local * c2.out_size() * 4, b_local * f1_in * 4, [=] {
                   maxpool_forward(buf(sc.conv2), buf(sc.pool2), b_local,
                                   c.conv2().out_c, c.conv2().out_h(),
                                   c.conv2().out_w());
                 });
    layer_launch(a, "fc1_fwd", 2.0 * static_cast<double>(b_local * f1_in * f1),
                 (b_local * f1_in + f1 * f1_in) * 4, b_local * f1 * 4, [=] {
                   fc_forward(buf(sc.pool2), f1w, f1b, buf(sc.fc1), b_local,
                              f1_in, f1, true);
                 });
    layer_launch(a, "fc2_fwd", 2.0 * static_cast<double>(b_local * f1 * cls),
                 (b_local * f1 + cls * f1) * 4, b_local * cls * 4, [=] {
                   fc_forward(buf(sc.fc1), f2w, f2b, buf(sc.logits), b_local,
                              f1, cls, false);
                 });
    layer_launch(a, "softmax", static_cast<double>(b_local * cls * 8),
                 b_local * cls * 4, b_local * cls * 4, [=] {
                   softmax_xent(buf(sc.logits), lab, buf(sc.dlogits), loss,
                                b_local, bt, cls);
                 });
    // Backward.
    layer_launch(a, "fc2_bwd", 4.0 * static_cast<double>(b_local * f1 * cls),
                 (b_local * (f1 + cls) + cls * f1) * 4,
                 (b_local * f1 + cls * f1) * 4, [=] {
                   fc_backward(buf(sc.fc1), buf(sc.logits), f2w,
                               buf(sc.dlogits), buf(sc.d_fc1), gf2w, gf2b,
                               b_local, f1, cls, false);
                 });
    layer_launch(a, "fc1_bwd",
                 4.0 * static_cast<double>(b_local * f1_in * f1),
                 (b_local * (f1 + f1_in) + f1 * f1_in) * 4,
                 (b_local * f1_in + f1 * f1_in) * 4, [=] {
                   fc_backward(buf(sc.pool2), buf(sc.fc1), f1w, buf(sc.d_fc1),
                               buf(sc.d_pool2), gf1w, gf1b, b_local, f1_in,
                               f1, true);
                 });
    layer_launch(a, "pool2_bwd", static_cast<double>(b_local * f1_in),
                 b_local * f1_in * 4, b_local * c2.out_size() * 4, [=] {
                   maxpool_backward(buf(sc.conv2), buf(sc.d_pool2),
                                    buf(sc.d_conv2), b_local, c.conv2().out_c,
                                    c.conv2().out_h(), c.conv2().out_w());
                 });
    layer_launch(a, "conv2_bwd", 2.0 * c2.forward_flops(b_local),
                 b_local * (c2.in_size() + c2.out_size()) * 8,
                 b_local * c2.in_size() * 4, [=] {
                   conv_backward_filter(buf(sc.pool1), buf(sc.d_conv2),
                                        buf(sc.conv2), gc2w, gc2b, b_local,
                                        c.conv2(), true);
                   conv_backward_data(buf(sc.d_conv2), buf(sc.conv2), c2w,
                                      buf(sc.d_pool1), b_local, c.conv2(),
                                      true);
                 });
    layer_launch(a, "pool1_bwd", static_cast<double>(b_local * c2.in_size()),
                 b_local * c2.in_size() * 4, b_local * c1.out_size() * 4,
                 [=] {
                   maxpool_backward(buf(sc.conv1), buf(sc.d_pool1),
                                    buf(sc.d_conv1), b_local, c.conv1().out_c,
                                    c.conv1().out_h(), c.conv1().out_w());
                 });
    layer_launch(a, "conv1_bwd", c1.forward_flops(b_local),
                 b_local * (c1.in_size() + c1.out_size()) * 4,
                 c1.weight_count() * 4, [=] {
                   conv_backward_filter(x, buf(sc.d_conv1), buf(sc.conv1),
                                        gc1w, gc1b, b_local, c.conv1(), true);
                 });
    return true;
  }

  /// Single-device SGD update routine used by the torch-like baseline:
  /// all weight updates happen on GPU 0 (§6.1's diagnosis). One task per
  /// parameter tensor; parameters = { w (aligned in), g (replicated in),
  /// w (aligned out) }.
  bool gpu0_update(RoutineArgs& a) {
    const float step = lr;
    float* w = a.parameters[0].as<float>();
    const float* g = a.parameters[1].as<float>();
    const std::size_t n = a.container_segments[0].m_dimensions[0];
    sim::LaunchStats st;
    st.label = "sgd_update";
    st.blocks = std::max<std::uint64_t>(1, n / 256);
    st.flops = 2 * n;
    st.global_bytes_read = 2 * n * 4;
    st.global_bytes_written = n * 4;
    a.node->launch(a.stream, st, [w, g, n, step] {
      if (w != nullptr) {
        sgd_step(w, g, n, step);
      }
    });
    return true;
  }

  /// Issues the torch-like single-GPU update for one parameter vector.
  void gpu0_update_task(Vector<float>& w, Vector<float>& g) {
    auto update = [this](RoutineArgs& a) { return gpu0_update(a); };
    sched.InvokeUnmodified(update, nullptr,
                           Work{w.length(), 1, /*single_device=*/true},
                           Block2D<float>(static_cast<Datum&>(w)),
                           Block1D<float>(g),
                           StructuredInjective<float, 1>(w));
  }

  void dp_iteration(std::size_t offset, bool torch_like) {
    images.BindRaw(const_cast<float*>(data.images(offset)));
    labels.BindRaw(const_cast<int*>(data.labels(offset)));
    sched.MarkHostModified(images);
    sched.MarkHostModified(labels);
    loss_host = 0;

    auto routine = [this](RoutineArgs& a) { return dp_step(a); };
    sched.InvokeUnmodified(
        routine, nullptr, Work{batch}, Block2D<float>(images),
        Block2D<int>(static_cast<Datum&>(labels)), Block1D<float>(w_c1w),
        Block1D<float>(w_c1b), Block1D<float>(w_c2w), Block1D<float>(w_c2b),
        Block1D<float>(w_f1w_v), Block1D<float>(w_f1b_v),
        Block1D<float>(w_f2w), Block1D<float>(w_f2b), SumReduced<float>(g_c1w),
        SumReduced<float>(g_c1b), SumReduced<float>(g_c2w),
        SumReduced<float>(g_c2b), SumReduced<float>(g_f1w),
        SumReduced<float>(g_f1b), SumReduced<float>(g_f2w),
        SumReduced<float>(g_f2b), SumReduced<float>(loss_d));

    if (!torch_like) {
      // MAPS data-parallel: gather the summed gradients, update on the host,
      // re-upload parameters next iteration.
      for (Datum* g : {static_cast<Datum*>(&g_c1w), static_cast<Datum*>(&g_c1b),
                       static_cast<Datum*>(&g_c2w), static_cast<Datum*>(&g_c2b),
                       static_cast<Datum*>(&g_f1w), static_cast<Datum*>(&g_f1b),
                       static_cast<Datum*>(&g_f2w),
                       static_cast<Datum*>(&g_f2b)}) {
        sched.GatherAsync(*g);
      }
      sched.GatherAsync(loss_d);
      sched.WaitAll();
      // Host-side SGD (vectorized; cost modeled on the simulated clock).
      sched.node().advance_host_us(
          10.0 + static_cast<double>(params.param_count()) * 0.4e-3);
      params.sgd(lr);
      for (Datum* w : {static_cast<Datum*>(&w_c1w), static_cast<Datum*>(&w_c1b),
                       static_cast<Datum*>(&w_c2w), static_cast<Datum*>(&w_c2b),
                       static_cast<Datum*>(&w_f1w_v),
                       static_cast<Datum*>(&w_f1b_v),
                       static_cast<Datum*>(&w_f2w),
                       static_cast<Datum*>(&w_f2b)}) {
        sched.MarkHostModified(*w);
      }
    } else {
      // Torch-like: gradients pass through the host, the update runs on a
      // single GPU, parameters are broadcast from it, and every iteration
      // performs unnecessary device-to-host copies plus a blocking sync.

      for (Datum* g : {static_cast<Datum*>(&g_c1w), static_cast<Datum*>(&g_c1b),
                       static_cast<Datum*>(&g_c2w), static_cast<Datum*>(&g_c2b),
                       static_cast<Datum*>(&g_f1w), static_cast<Datum*>(&g_f1b),
                       static_cast<Datum*>(&g_f2w),
                       static_cast<Datum*>(&g_f2b)}) {
        sched.GatherAsync(*g);
      }
      sched.GatherAsync(loss_d);
      sched.WaitAll();
      gpu0_update_task(w_c1w, g_c1w);
      gpu0_update_task(w_c1b, g_c1b);
      gpu0_update_task(w_c2w, g_c2w);
      gpu0_update_task(w_c2b, g_c2b);
      gpu0_update_task(w_f1w_v, g_f1w);
      gpu0_update_task(w_f1b_v, g_f1b);
      gpu0_update_task(w_f2w, g_f2w);
      gpu0_update_task(w_f2b, g_f2b);
      // "Unnecessary device-to-host copies in each iteration": all updated
      // parameters are read back even though training never uses them on
      // the host (this also keeps the host mirror valid for evaluation).
      for (Datum* w : {static_cast<Datum*>(&w_c1w), static_cast<Datum*>(&w_c1b),
                       static_cast<Datum*>(&w_c2w), static_cast<Datum*>(&w_c2b),
                       static_cast<Datum*>(&w_f1w_v),
                       static_cast<Datum*>(&w_f1b_v),
                       static_cast<Datum*>(&w_f2w),
                       static_cast<Datum*>(&w_f2b)}) {
        sched.GatherAsync(*w);
      }
      sched.WaitAll();
      // The Lua layer's per-iteration bookkeeping is host time that nothing
      // overlaps (the loop is fully synchronous).
      sched.node().advance_host_us(1500.0);
    }
    last_loss = loss_host / static_cast<float>(batch);
  }

  // ==========================================================================
  // Hybrid data/model parallelism (§6.1, Fig 10)
  // ==========================================================================

  enum HyConv { hcImages = 0, hcLabelsUnused, hcC1w, hcC1b, hcC2w, hcC2b,
                hcPool2Out };

  bool hy_conv_fwd(RoutineArgs& a) {
    const std::size_t b_local = a.container_segments[hcImages].m_dimensions[0];
    if (b_local == 0) {
      return true;
    }
    DeviceScratch& sc = ensure_scratch(a, b_local);
    const ConvShape c1 = cfg.conv1(), c2 = cfg.conv2();
    const LeNetConfig c = cfg;
    const float* x = a.parameters[hcImages].as<float>();
    const float* c1w = a.parameters[hcC1w].as<float>();
    const float* c1b = a.parameters[hcC1b].as<float>();
    const float* c2w = a.parameters[hcC2w].as<float>();
    const float* c2b = a.parameters[hcC2b].as<float>();
    float* out = a.parameters[hcPool2Out].as<float>();

    layer_launch(a, "hy_conv_fwd",
                 c1.forward_flops(b_local) + c2.forward_flops(b_local),
                 b_local * (c1.in_size() + c2.in_size()) * 4,
                 b_local * (c1.out_size() + c2.out_size()) * 4, [=] {
                   conv_forward(x, c1w, c1b, buf(sc.conv1), b_local, c.conv1(),
                                true);
                   maxpool_forward(buf(sc.conv1), buf(sc.pool1), b_local,
                                   c.conv1().out_c, c.conv1().out_h(),
                                   c.conv1().out_w());
                   conv_forward(buf(sc.pool1), c2w, c2b, buf(sc.conv2),
                                b_local, c.conv2(), true);
                   if (out != nullptr) {
                     maxpool_forward(buf(sc.conv2), out, b_local,
                                     c.conv2().out_c, c.conv2().out_h(),
                                     c.conv2().out_w());
                   }
                 });
    return true;
  }

  enum HyFc1F { f1Pool2 = 0, f1W, f1B, f1Act };

  /// fc1 forward, partitioned by output neuron: each device computes its
  /// neuron slice for the WHOLE batch from the replicated pool2 activations.
  bool hy_fc1_fwd(RoutineArgs& a) {
    const std::size_t units = a.container_segments[f1W].m_dimensions[0];
    if (units == 0) {
      return true;
    }
    const std::size_t f1_in = cfg.fc1_inputs();
    const std::size_t b = batch;
    const float* pool2 = a.parameters[f1Pool2].as<float>();
    const float* w = a.parameters[f1W].as<float>(); // [units][f1_in] slice
    const float* bias = a.parameters[f1B].as<float>();
    float* act = a.parameters[f1Act].as<float>(); // [units][batch] slice

    layer_launch(a, "hy_fc1_fwd", 2.0 * static_cast<double>(b * f1_in * units),
                 (b * f1_in + units * f1_in) * 4, b * units * 4, [=] {
                   for (std::size_t j = 0; j < units; ++j) {
                     const float* wj = w + j * f1_in;
                     float* aj = act + j * b;
                     for (std::size_t n = 0; n < b; ++n) {
                       float acc = bias[j];
                       const float* xn = pool2 + n * f1_in;
                       for (std::size_t i = 0; i < f1_in; ++i) {
                         acc += wj[i] * xn[i];
                       }
                       aj[n] = std::max(acc, 0.0f);
                     }
                   }
                 });
    return true;
  }

  /// Partial logits, partitioned by fc1 neuron: each device contributes
  /// logits_partial[c][n] += W2[c, its neurons] * act[its neurons, n]. The
  /// tiny (classes x batch) interface is what crosses devices — not the
  /// hidden activations.
  enum HyLgt { lgAct = 0, lgW2, lgB2, lgOut };

  bool hy_logits_partial(RoutineArgs& a) {
    const std::size_t units = a.container_segments[lgAct].m_dimensions[0];
    if (units == 0) {
      return true;
    }
    const std::size_t unit0 = a.container_segments[lgAct].global_row_begin;
    const std::size_t b = batch, cls = cfg.classes, f1 = cfg.fc1_units;
    const float* act = a.parameters[lgAct].as<float>(); // [units][batch]
    const float* w2 = a.parameters[lgW2].as<float>();   // [cls][f1] full
    const float* b2 = a.parameters[lgB2].as<float>();
    float* out = a.parameters[lgOut].as<float>(); // [cls][batch] partial

    layer_launch(a, "hy_logits_partial",
                 2.0 * static_cast<double>(b * units * cls),
                 (b * units + cls * f1) * 4, b * cls * 4, [=] {
                   for (std::size_t c = 0; c < cls; ++c) {
                     float* oc = out + c * b;
                     if (unit0 == 0) {
                       for (std::size_t n = 0; n < b; ++n) {
                         oc[n] += b2[c]; // bias contributed exactly once
                       }
                     }
                     const float* wc = w2 + c * f1 + unit0;
                     for (std::size_t j = 0; j < units; ++j) {
                       const float wv = wc[j];
                       if (wv == 0.0f) {
                         continue;
                       }
                       const float* aj = act + j * b;
                       for (std::size_t n = 0; n < b; ++n) {
                         oc[n] += wv * aj[n];
                       }
                     }
                   }
                 });
    return true;
  }

  /// Softmax + loss, partitioned by batch, from the reduce-scattered logits.
  enum HySm { smLogits = 0, smLabels, smDl, smLoss };

  bool hy_softmax(RoutineArgs& a) {
    const std::size_t b_local = a.container_segments[smDl].m_dimensions[0];
    if (b_local == 0) {
      return true;
    }
    const std::size_t row0 = a.container_segments[smDl].global_row_begin;
    const std::size_t b = batch, cls = cfg.classes;
    const std::size_t bt = batch;
    const float* logits = a.parameters[smLogits].as<float>(); // [cls][batch]
    const int* lab = a.parameters[smLabels].as<int>();
    float* dl = a.parameters[smDl].as<float>(); // [b_local][cls]
    float* loss = a.parameters[smLoss].as<float>();

    layer_launch(a, "hy_softmax", static_cast<double>(b_local * cls * 8),
                 b_local * cls * 4, b_local * cls * 4, [=] {
                   std::vector<float> row(cls);
                   for (std::size_t n = 0; n < b_local; ++n) {
                     for (std::size_t c = 0; c < cls; ++c) {
                       row[c] = logits[c * b + row0 + n];
                     }
                     softmax_xent(row.data(), lab + n, dl + n * cls, loss, 1,
                                  bt, cls);
                   }
                 });
    return true;
  }

  /// fc1 backward with in-place on-device SGD plus the fc2 gradients, all
  /// partitioned by fc1 neuron; the conv deltas come out as duplicated
  /// partials for the reduce-scatter.
  enum HyFc1B { b1Dl = 0, b1Pool2, b1W2, b1W, b1B, b1WOut, b1BOut, b1Gw2,
                b1Gb2, b1DPool2, b1Act };

  bool hy_fc1_bwd(RoutineArgs& a) {
    const std::size_t units = a.container_segments[b1W].m_dimensions[0];
    if (units == 0) {
      return true;
    }
    const std::size_t unit0 = a.container_segments[b1W].global_row_begin;
    const std::size_t f1_in = cfg.fc1_inputs();
    const std::size_t b = batch, cls = cfg.classes, f1 = cfg.fc1_units;
    const float step = lr;
    const float* dl = a.parameters[b1Dl].as<float>();      // [batch][cls]
    const float* pool2 = a.parameters[b1Pool2].as<float>(); // [batch][f1_in]
    const float* w2 = a.parameters[b1W2].as<float>();       // [cls][f1]
    float* w = a.parameters[b1WOut].as<float>();    // [units][f1_in] slice
    float* bias = a.parameters[b1BOut].as<float>();
    float* gw2 = a.parameters[b1Gw2].as<float>();   // [units][cls] slice
    float* gb2 = a.parameters[b1Gb2].as<float>();   // duplicated partial
    float* dpool2 = a.parameters[b1DPool2].as<float>(); // duplicated partial
    const float* act = a.parameters[b1Act].as<float>(); // [units][batch]

    layer_launch(
        a, "hy_fc1_bwd", 8.0 * static_cast<double>(b * f1_in * units),
        (b * (f1_in + units + cls) + units * f1_in) * 4,
        (units * (f1_in + cls) + b * f1_in) * 4, [=] {
          // db2 is independent of the neuron partition: slot 0 computes it.
          if (unit0 == 0) {
            for (std::size_t n = 0; n < b; ++n) {
              for (std::size_t c = 0; c < cls; ++c) {
                gb2[c] += dl[n * cls + c];
              }
            }
          }
          std::vector<float> dfc1(b); // this neuron's delta for all samples
          for (std::size_t j = 0; j < units; ++j) {
            const float* aj = act + j * b;
            float* gw2j = gw2 + j * cls;
            // d_fc1[j, n] and dw2[:, j], masked by ReLU.
            for (std::size_t n = 0; n < b; ++n) {
              float g = 0.0f;
              const float* dn = dl + n * cls;
              for (std::size_t c = 0; c < cls; ++c) {
                gw2j[c] += dn[c] * aj[n];
                g += dn[c] * w2[c * f1 + unit0 + j];
              }
              dfc1[n] = aj[n] > 0.0f ? g : 0.0f;
            }
            // Conv deltas from the PRE-update weights.
            const float* wj = w + j * f1_in;
            for (std::size_t n = 0; n < b; ++n) {
              const float g = dfc1[n];
              if (g == 0.0f) {
                continue;
              }
              float* dp = dpool2 + n * f1_in;
              for (std::size_t i = 0; i < f1_in; ++i) {
                dp[i] += g * wj[i];
              }
            }
            // In-place SGD on this device's parameter slice.
            float* wjm = w + j * f1_in;
            float gb = 0.0f;
            for (std::size_t n = 0; n < b; ++n) {
              const float g = dfc1[n];
              if (g == 0.0f) {
                continue;
              }
              gb += g;
              const float* xn = pool2 + n * f1_in;
              for (std::size_t i = 0; i < f1_in; ++i) {
                wjm[i] -= step * g * xn[i];
              }
            }
            bias[j] -= step * gb;
          }
        });
    return true;
  }

  enum HyConvB { cbImages = 0, cbDPool2, cbC1w, cbC2w, cbGc1w, cbGc1b,
                 cbGc2w, cbGc2b };

  bool hy_conv_bwd(RoutineArgs& a) {
    const std::size_t b_local = a.container_segments[cbImages].m_dimensions[0];
    if (b_local == 0) {
      return true;
    }
    DeviceScratch& sc = scratch[static_cast<std::size_t>(a.device_idx)];
    const ConvShape c1 = cfg.conv1(), c2 = cfg.conv2();
    const LeNetConfig c = cfg;
    const float* x = a.parameters[cbImages].as<float>();
    const float* dpool2 = a.parameters[cbDPool2].as<float>();
    const float* c2w = a.parameters[cbC2w].as<float>();
    float* gc1w = a.parameters[cbGc1w].as<float>();
    float* gc1b = a.parameters[cbGc1b].as<float>();
    float* gc2w = a.parameters[cbGc2w].as<float>();
    float* gc2b = a.parameters[cbGc2b].as<float>();

    layer_launch(a, "hy_conv_bwd",
                 c1.forward_flops(b_local) + 2.0 * c2.forward_flops(b_local),
                 b_local * (c1.in_size() + c2.in_size() + c2.out_size()) * 8,
                 b_local * c2.in_size() * 4, [=] {
                   maxpool_backward(buf(sc.conv2), dpool2, buf(sc.d_conv2),
                                    b_local, c.conv2().out_c,
                                    c.conv2().out_h(), c.conv2().out_w());
                   conv_backward_filter(buf(sc.pool1), buf(sc.d_conv2),
                                        buf(sc.conv2), gc2w, gc2b, b_local,
                                        c.conv2(), true);
                   conv_backward_data(buf(sc.d_conv2), buf(sc.conv2), c2w,
                                      buf(sc.d_pool1), b_local, c.conv2(),
                                      true);
                   maxpool_backward(buf(sc.conv1), buf(sc.d_pool1),
                                    buf(sc.d_conv1), b_local, c.conv1().out_c,
                                    c.conv1().out_h(), c.conv1().out_w());
                   conv_backward_filter(x, buf(sc.d_conv1), buf(sc.conv1),
                                        gc1w, gc1b, b_local, c.conv1(), true);
                 });
    return true;
  }

  void hybrid_iteration(std::size_t offset) {
    images.BindRaw(const_cast<float*>(data.images(offset)));
    labels.BindRaw(const_cast<int*>(data.labels(offset)));
    sched.MarkHostModified(images);
    sched.MarkHostModified(labels);
    loss_host = 0;

    // T1: convolutional part, data-parallel (batch-aligned).
    auto conv_fwd = [this](RoutineArgs& a) { return hy_conv_fwd(a); };
    sched.InvokeUnmodified(conv_fwd, nullptr, Work{batch},
                           Block2D<float>(images),
                           Block2D<int>(static_cast<Datum&>(labels)),
                           Block1D<float>(w_c1w), Block1D<float>(w_c1b),
                           Block1D<float>(w_c2w), Block1D<float>(w_c2b),
                           StructuredInjective<float, 2>(pool2_out));

    // T2a: fc1 forward, model-parallel: the pool2 activations are exchanged
    // (replicated) instead of the fc1 parameters.
    auto fc1_fwd = [this](RoutineArgs& a) { return hy_fc1_fwd(a); };
    sched.InvokeUnmodified(fc1_fwd, nullptr, Work{cfg.fc1_units},
                           Block2DTransposed<float>(pool2_out),
                           Block2D<float>(w_f1w_m),
                           Block2D<float>(static_cast<Datum&>(w_f1b_m)),
                           StructuredInjective<float, 2>(fc1_act));

    // T2b: partial logits per neuron slice, reduce-scattered on the devices.
    auto lgt = [this](RoutineArgs& a) { return hy_logits_partial(a); };
    sched.InvokeUnmodified(lgt, nullptr, Work{cfg.fc1_units},
                           Block2D<float>(fc1_act), Block1D<float>(w_f2w),
                           Block1D<float>(w_f2b),
                           SumReduced<float>(logits_mp));
    sched.ReduceScatter(logits_mp, Work{cfg.classes});

    // T2c: softmax + loss, batch-partitioned, from the tiny logits.
    auto sm = [this](RoutineArgs& a) { return hy_softmax(a); };
    sched.InvokeUnmodified(sm, nullptr, Work{batch},
                           Block2DTransposed<float>(logits_mp),
                           Block2D<int>(static_cast<Datum&>(labels)),
                           StructuredInjective<float, 2>(dlogits_mp),
                           SumReduced<float>(loss_d));

    // T2d: fc1 backward + on-device fc1 SGD + fc2 gradients, model-parallel;
    // only the (classes x batch) dlogits cross devices.
    auto fc1_bwd = [this](RoutineArgs& a) { return hy_fc1_bwd(a); };
    sched.InvokeUnmodified(
        fc1_bwd, nullptr, Work{cfg.fc1_units},
        Block2DTransposed<float>(dlogits_mp),
        Block2DTransposed<float>(pool2_out), Block1D<float>(w_f2w),
        Block2D<float>(w_f1w_m), Block2D<float>(static_cast<Datum&>(w_f1b_m)),
        StructuredInjective<float, 2>(w_f1w_m),
        StructuredInjective<float, 2>(w_f1b_m),
        StructuredInjective<float, 2>(g_f2w_mp), SumReduced<float>(g_f2b),
        SumReduced<float>(d_pool2_d), Block2D<float>(fc1_act));

    // The duplicated conv deltas are aggregated ON the devices over the
    // peer-to-peer interconnect (the "more frequent, smaller exchanges" of
    // §6.1) — no host round trip and no synchronization.
    sched.ReduceScatter(d_pool2_d, Work{batch});

    // T3: conv backward, data-parallel again.
    auto conv_bwd = [this](RoutineArgs& a) { return hy_conv_bwd(a); };
    sched.InvokeUnmodified(
        conv_bwd, nullptr, Work{batch}, Block2D<float>(images),
        Block2D<float>(static_cast<Datum&>(d_pool2_d)),
        Block1D<float>(w_c1w), Block1D<float>(w_c2w), SumReduced<float>(g_c1w),
        SumReduced<float>(g_c1b), SumReduced<float>(g_c2w),
        SumReduced<float>(g_c2b));

    sched.GatherAsync(g_c1w);
    sched.GatherAsync(g_c1b);
    sched.GatherAsync(g_c2w);
    sched.GatherAsync(g_c2b);
    sched.GatherAsync(g_f2w_mp);
    sched.GatherAsync(g_f2b);
    sched.GatherAsync(loss_d);
    sched.WaitAll();

    // Host updates only the small conv + fc2 parameters; fc1 was already
    // updated on the devices. g_f2w_mp is neuron-major ([j][c]).
    sched.node().advance_host_us(
        10.0 + static_cast<double>(params.conv1_w.size() +
                                   params.conv2_w.size() +
                                   params.fc2_w.size()) *
                   0.4e-3);
    sgd_step(params.conv1_w.data(), params.g_conv1_w.data(),
             params.conv1_w.size(), lr);
    sgd_step(params.conv1_b.data(), params.g_conv1_b.data(),
             params.conv1_b.size(), lr);
    sgd_step(params.conv2_w.data(), params.g_conv2_w.data(),
             params.conv2_w.size(), lr);
    sgd_step(params.conv2_b.data(), params.g_conv2_b.data(),
             params.conv2_b.size(), lr);
    for (std::size_t j = 0; j < cfg.fc1_units; ++j) {
      for (std::size_t c = 0; c < cfg.classes; ++c) {
        params.fc2_w[c * cfg.fc1_units + j] -=
            lr * g_f2w_mp_host[j * cfg.classes + c];
      }
    }
    sgd_step(params.fc2_b.data(), params.g_fc2_b.data(), params.fc2_b.size(),
             lr);
    for (Datum* w :
         {static_cast<Datum*>(&w_c1w), static_cast<Datum*>(&w_c1b),
          static_cast<Datum*>(&w_c2w), static_cast<Datum*>(&w_c2b),
          static_cast<Datum*>(&w_f2w), static_cast<Datum*>(&w_f2b)}) {
      sched.MarkHostModified(*w);
    }
    last_loss = loss_host / static_cast<float>(batch);
  }

  /// AnalyzeCall every task of the chosen strategy before the first Invoke,
  /// as §4.2 requires, so per-device allocations are sized once to the
  /// bounding box of all uses.
  void analyze_all() {
    if (analyzed_) {
      return;
    }
    analyzed_ = true;
    if (strategy == Strategy::Hybrid) {
      sched.AnalyzeCall(Work{batch}, Block2D<float>(images),
                        Block2D<int>(static_cast<Datum&>(labels)),
                        Block1D<float>(w_c1w), Block1D<float>(w_c1b),
                        Block1D<float>(w_c2w), Block1D<float>(w_c2b),
                        StructuredInjective<float, 2>(pool2_out));
      sched.AnalyzeCall(Work{cfg.fc1_units}, Block2DTransposed<float>(pool2_out),
                        Block2D<float>(w_f1w_m),
                        Block2D<float>(static_cast<Datum&>(w_f1b_m)),
                        StructuredInjective<float, 2>(fc1_act));
      sched.AnalyzeCall(Work{cfg.fc1_units}, Block2D<float>(fc1_act),
                        Block1D<float>(w_f2w), Block1D<float>(w_f2b),
                        SumReduced<float>(logits_mp));
      sched.AnalyzeCall(Work{batch}, Block2DTransposed<float>(logits_mp),
                        Block2D<int>(static_cast<Datum&>(labels)),
                        StructuredInjective<float, 2>(dlogits_mp),
                        SumReduced<float>(loss_d));
      sched.AnalyzeCall(Work{cfg.fc1_units},
                        Block2DTransposed<float>(dlogits_mp),
                        Block2DTransposed<float>(pool2_out),
                        Block1D<float>(w_f2w), Block2D<float>(w_f1w_m),
                        Block2D<float>(static_cast<Datum&>(w_f1b_m)),
                        StructuredInjective<float, 2>(w_f1w_m),
                        StructuredInjective<float, 2>(w_f1b_m),
                        StructuredInjective<float, 2>(g_f2w_mp),
                        SumReduced<float>(g_f2b), SumReduced<float>(d_pool2_d),
                        Block2D<float>(fc1_act));
      sched.AnalyzeCall(Work{batch}, Block2D<float>(images),
                        Block2D<float>(static_cast<Datum&>(d_pool2_d)),
                        Block1D<float>(w_c1w), Block1D<float>(w_c2w),
                        SumReduced<float>(g_c1w), SumReduced<float>(g_c1b),
                        SumReduced<float>(g_c2w), SumReduced<float>(g_c2b));
      return;
    }
    sched.AnalyzeCall(
        Work{batch}, Block2D<float>(images),
        Block2D<int>(static_cast<Datum&>(labels)), Block1D<float>(w_c1w),
        Block1D<float>(w_c1b), Block1D<float>(w_c2w), Block1D<float>(w_c2b),
        Block1D<float>(w_f1w_v), Block1D<float>(w_f1b_v),
        Block1D<float>(w_f2w), Block1D<float>(w_f2b), SumReduced<float>(g_c1w),
        SumReduced<float>(g_c1b), SumReduced<float>(g_c2w),
        SumReduced<float>(g_c2b), SumReduced<float>(g_f1w),
        SumReduced<float>(g_f1b), SumReduced<float>(g_f2w),
        SumReduced<float>(g_f2b), SumReduced<float>(loss_d));
    if (strategy == Strategy::TorchLike) {
      auto analyze_update = [this](Vector<float>& w, Vector<float>& g) {
        sched.AnalyzeCall(Work{w.length(), 1, /*single_device=*/true},
                          Block2D<float>(static_cast<Datum&>(w)),
                          Block1D<float>(g),
                          StructuredInjective<float, 1>(w));
      };
      analyze_update(w_c1w, g_c1w);
      analyze_update(w_c1b, g_c1b);
      analyze_update(w_c2w, g_c2w);
      analyze_update(w_c2b, g_c2b);
      analyze_update(w_f1w_v, g_f1w);
      analyze_update(w_f1b_v, g_f1b);
      analyze_update(w_f2w, g_f2w);
      analyze_update(w_f2b, g_f2b);
    }
  }
  bool analyzed_ = false;

  TrainResult train(int iterations) {
    analyze_all();
    sched.WaitAll();
    const double t0 = sched.node().now_ms();
    for (int it = 0; it < iterations; ++it) {
      const std::size_t max_off = data.size() - batch;
      const std::size_t offset =
          max_off == 0 ? 0
                       : (static_cast<std::size_t>(it) * batch) % max_off;
      switch (strategy) {
      case Strategy::SingleGpu:
      case Strategy::DataParallel:
        dp_iteration(offset, false);
        break;
      case Strategy::TorchLike:
        dp_iteration(offset, true);
        break;
      case Strategy::Hybrid:
        hybrid_iteration(offset);
        break;
      }
    }
    sched.WaitAll();
    // Hybrid: bring the device-resident fc1 parameters back for evaluation.
    if (strategy == Strategy::Hybrid) {
      sched.Gather(w_f1w_m);
      sched.Gather(w_f1b_m);
    }
    TrainResult r;
    r.sim_ms = sched.node().now_ms() - t0;
    r.images_per_second = static_cast<double>(batch) *
                          static_cast<double>(iterations) / (r.sim_ms * 1e-3);
    r.final_loss = last_loss;
    return r;
  }
};

Trainer::Trainer(Scheduler& sched, LeNetParams& params,
                 const SyntheticDigits& data, std::size_t batch,
                 Strategy strategy, float lr)
    : impl_(std::make_unique<Impl>(sched, params, data, batch, strategy, lr)) {
  if (batch == 0 || batch > data.size()) {
    throw std::invalid_argument("Trainer: bad batch size");
  }
}

Trainer::~Trainer() = default;

TrainResult Trainer::train(int iterations) { return impl_->train(iterations); }

} // namespace nn
