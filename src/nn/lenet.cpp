#include "nn/lenet.hpp"

#include <cmath>

namespace nn {

std::size_t LeNetConfig::param_count() const {
  const ConvShape c1 = conv1(), c2 = conv2();
  return c1.weight_count() + c1.out_c + c2.weight_count() + c2.out_c +
         fc1_units * fc1_inputs() + fc1_units + classes * fc1_units + classes;
}

double LeNetConfig::train_flops_per_image() const {
  const ConvShape c1 = conv1(), c2 = conv2();
  const double fwd = c1.forward_flops(1) + c2.forward_flops(1) +
                     2.0 * static_cast<double>(fc1_units * fc1_inputs()) +
                     2.0 * static_cast<double>(classes * fc1_units);
  return 3.0 * fwd; // backward ~ 2x forward
}

namespace {
std::vector<float> init_weights(std::size_t n, std::size_t fan_in,
                                std::mt19937& rng) {
  std::normal_distribution<float> dist(
      0.0f, std::sqrt(2.0f / static_cast<float>(fan_in)));
  std::vector<float> w(n);
  for (auto& v : w) {
    v = dist(rng);
  }
  return w;
}
} // namespace

LeNetParams::LeNetParams(const LeNetConfig& config, unsigned seed)
    : cfg(config) {
  std::mt19937 rng(seed);
  const ConvShape c1 = cfg.conv1(), c2 = cfg.conv2();
  conv1_w = init_weights(c1.weight_count(), c1.in_c * c1.k * c1.k, rng);
  conv1_b.assign(c1.out_c, 0.0f);
  conv2_w = init_weights(c2.weight_count(), c2.in_c * c2.k * c2.k, rng);
  conv2_b.assign(c2.out_c, 0.0f);
  fc1_w = init_weights(cfg.fc1_units * cfg.fc1_inputs(), cfg.fc1_inputs(), rng);
  fc1_b.assign(cfg.fc1_units, 0.0f);
  fc2_w = init_weights(cfg.classes * cfg.fc1_units, cfg.fc1_units, rng);
  fc2_b.assign(cfg.classes, 0.0f);
  zero_grads();
}

void LeNetParams::zero_grads() {
  g_conv1_w.assign(conv1_w.size(), 0.0f);
  g_conv1_b.assign(conv1_b.size(), 0.0f);
  g_conv2_w.assign(conv2_w.size(), 0.0f);
  g_conv2_b.assign(conv2_b.size(), 0.0f);
  g_fc1_w.assign(fc1_w.size(), 0.0f);
  g_fc1_b.assign(fc1_b.size(), 0.0f);
  g_fc2_w.assign(fc2_w.size(), 0.0f);
  g_fc2_b.assign(fc2_b.size(), 0.0f);
}

void LeNetParams::sgd(float lr) {
  sgd_step(conv1_w.data(), g_conv1_w.data(), conv1_w.size(), lr);
  sgd_step(conv1_b.data(), g_conv1_b.data(), conv1_b.size(), lr);
  sgd_step(conv2_w.data(), g_conv2_w.data(), conv2_w.size(), lr);
  sgd_step(conv2_b.data(), g_conv2_b.data(), conv2_b.size(), lr);
  sgd_step(fc1_w.data(), g_fc1_w.data(), fc1_w.size(), lr);
  sgd_step(fc1_b.data(), g_fc1_b.data(), fc1_b.size(), lr);
  sgd_step(fc2_w.data(), g_fc2_w.data(), fc2_w.size(), lr);
  sgd_step(fc2_b.data(), g_fc2_b.data(), fc2_b.size(), lr);
}

LeNetActivations::LeNetActivations(const LeNetConfig& config,
                                   std::size_t batch_size)
    : batch(batch_size) {
  const ConvShape c1 = config.conv1(), c2 = config.conv2();
  conv1.resize(batch * c1.out_size());
  pool1.resize(batch * c2.in_size());
  conv2.resize(batch * c2.out_size());
  pool2.resize(batch * config.fc1_inputs());
  fc1.resize(batch * config.fc1_units);
  logits.resize(batch * config.classes);
  dlogits.resize(batch * config.classes);
  d_fc1.resize(batch * config.fc1_units);
  d_pool2.resize(batch * config.fc1_inputs());
  d_conv2.resize(batch * c2.out_size());
  d_pool1.resize(batch * c2.in_size());
  d_conv1.resize(batch * c1.out_size());
}

float lenet_train_step(LeNetParams& p, LeNetActivations& a,
                       const float* images, const int* labels,
                       std::size_t batch, std::size_t batch_total) {
  const LeNetConfig& cfg = p.cfg;
  const ConvShape c1 = cfg.conv1(), c2 = cfg.conv2();

  // Forward.
  conv_forward(images, p.conv1_w.data(), p.conv1_b.data(), a.conv1.data(),
               batch, c1, /*relu=*/true);
  maxpool_forward(a.conv1.data(), a.pool1.data(), batch, c1.out_c, c1.out_h(),
                  c1.out_w());
  conv_forward(a.pool1.data(), p.conv2_w.data(), p.conv2_b.data(),
               a.conv2.data(), batch, c2, /*relu=*/true);
  maxpool_forward(a.conv2.data(), a.pool2.data(), batch, c2.out_c, c2.out_h(),
                  c2.out_w());
  fc_forward(a.pool2.data(), p.fc1_w.data(), p.fc1_b.data(), a.fc1.data(),
             batch, cfg.fc1_inputs(), cfg.fc1_units, /*relu=*/true);
  fc_forward(a.fc1.data(), p.fc2_w.data(), p.fc2_b.data(), a.logits.data(),
             batch, cfg.fc1_units, cfg.classes, /*relu=*/false);

  // Loss.
  float loss = 0.0f;
  softmax_xent(a.logits.data(), labels, a.dlogits.data(), &loss, batch,
               batch_total, cfg.classes);

  // Backward.
  fc_backward(a.fc1.data(), a.logits.data(), p.fc2_w.data(), a.dlogits.data(),
              a.d_fc1.data(), p.g_fc2_w.data(), p.g_fc2_b.data(), batch,
              cfg.fc1_units, cfg.classes, /*relu=*/false);
  fc_backward(a.pool2.data(), a.fc1.data(), p.fc1_w.data(), a.d_fc1.data(),
              a.d_pool2.data(), p.g_fc1_w.data(), p.g_fc1_b.data(), batch,
              cfg.fc1_inputs(), cfg.fc1_units, /*relu=*/true);
  maxpool_backward(a.conv2.data(), a.d_pool2.data(), a.d_conv2.data(), batch,
                   c2.out_c, c2.out_h(), c2.out_w());
  conv_backward_filter(a.pool1.data(), a.d_conv2.data(), a.conv2.data(),
                       p.g_conv2_w.data(), p.g_conv2_b.data(), batch, c2,
                       /*relu=*/true);
  conv_backward_data(a.d_conv2.data(), a.conv2.data(), p.conv2_w.data(),
                     a.d_pool1.data(), batch, c2, /*relu=*/true);
  maxpool_backward(a.conv1.data(), a.d_pool1.data(), a.d_conv1.data(), batch,
                   c1.out_c, c1.out_h(), c1.out_w());
  conv_backward_filter(images, a.d_conv1.data(), a.conv1.data(),
                       p.g_conv1_w.data(), p.g_conv1_b.data(), batch, c1,
                       /*relu=*/true);
  return loss;
}

std::size_t lenet_eval(const LeNetParams& p, const float* images,
                       const int* labels, std::size_t batch) {
  LeNetActivations a(p.cfg, batch);
  const ConvShape c1 = p.cfg.conv1(), c2 = p.cfg.conv2();
  conv_forward(images, p.conv1_w.data(), p.conv1_b.data(), a.conv1.data(),
               batch, c1, true);
  maxpool_forward(a.conv1.data(), a.pool1.data(), batch, c1.out_c, c1.out_h(),
                  c1.out_w());
  conv_forward(a.pool1.data(), p.conv2_w.data(), p.conv2_b.data(),
               a.conv2.data(), batch, c2, true);
  maxpool_forward(a.conv2.data(), a.pool2.data(), batch, c2.out_c, c2.out_h(),
                  c2.out_w());
  fc_forward(a.pool2.data(), p.fc1_w.data(), p.fc1_b.data(), a.fc1.data(),
             batch, p.cfg.fc1_inputs(), p.cfg.fc1_units, true);
  fc_forward(a.fc1.data(), p.fc2_w.data(), p.fc2_b.data(), a.logits.data(),
             batch, p.cfg.fc1_units, p.cfg.classes, false);
  return count_correct(a.logits.data(), labels, batch, p.cfg.classes);
}

} // namespace nn
