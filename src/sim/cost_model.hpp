// Roofline-style cost model turning LaunchStats + DeviceSpec into simulated
// kernel time, and Topology into transfer time.
//
// A kernel's busy time is the maximum over its bottleneck candidates
// (compute, global-memory traffic, shared-memory traffic, atomics,
// per-thread instruction overhead), scaled up when the launch has too few
// blocks to fill the device, plus a fixed launch overhead. This reproduces
// the qualitative behaviours the paper's evaluation rests on: atomic-bound
// naive histograms (§5.3), shared-latency-bound non-ILP stencils vs
// instruction-overhead amortization with ILP (§5.2), and bandwidth/compute
// bounds for BLAS-style kernels (§5.4).
#pragma once

#include <cstddef>

#include "sim/arch.hpp"
#include "sim/launch_stats.hpp"
#include "sim/topology.hpp"

namespace sim {

/// Simulated execution time (seconds) of one kernel on one device.
double kernel_seconds(const DeviceSpec& spec, const LaunchStats& stats);

/// Simulated duration (seconds) of a single transfer. When `host_staged` is
/// true the transfer bounces through host RAM (two hops plus software
/// latency) — the behaviour of the CUBLAS-XT and MPI-based baselines.
double copy_seconds(const Topology& topo, Endpoint src, Endpoint dst,
                    std::size_t bytes, bool host_staged);

} // namespace sim
