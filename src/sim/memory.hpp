// Device memory management for the simulator.
//
// Each simulated device has a DeviceAllocator that tracks allocations against
// the device's global-memory capacity. In Functional mode every allocation is
// backed by real host heap memory so kernels can execute; in TimingOnly mode
// (paper-scale benchmarks) only the accounting exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace sim {

/// Thrown when a device allocation exceeds the remaining global memory.
class OutOfDeviceMemory : public std::runtime_error {
public:
  OutOfDeviceMemory(int device, std::size_t requested, std::size_t used,
                    std::size_t capacity);
  int device;
  std::size_t requested, used, capacity;
};

/// One device allocation. Obtained from Node::malloc_device; freed via
/// Node::free_device (or automatically when the Node is destroyed).
class Buffer {
public:
  int device() const { return device_; }
  std::size_t size() const { return bytes_; }
  /// Backing storage; nullptr in TimingOnly mode.
  std::byte* data() const { return data_.get(); }

  /// Typed view of the backing store (Functional mode only).
  template <typename T> T* as(std::size_t byte_offset = 0) const {
    return reinterpret_cast<T*>(data_.get() + byte_offset);
  }
  bool has_backing() const { return data_ != nullptr; }

private:
  friend class DeviceAllocator;
  Buffer(int device, std::size_t bytes, bool functional);
  int device_;
  std::size_t bytes_;
  std::unique_ptr<std::byte[]> data_;
};

/// Capacity-accounting allocator for one device.
class DeviceAllocator {
public:
  DeviceAllocator(int device, std::size_t capacity, bool functional);

  Buffer* allocate(std::size_t bytes);
  void free(Buffer* buffer);

  std::size_t used() const { return used_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t allocation_count() const { return live_.size(); }

private:
  int device_;
  std::size_t capacity_;
  bool functional_;
  std::size_t used_ = 0;
  std::vector<std::unique_ptr<Buffer>> live_;
};

} // namespace sim
