// Aggregate statistics collected by the simulated node.
//
// Tests use these to verify the framework's transfer behaviour (e.g. the
// Game of Life exchanges exactly two boundary rows per device pair per
// iteration, §5.1; unmodified-routine chains keep data resident, §5.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sim {

/// One processed command in the simulated timeline (tracing enabled via
/// Node::enable_trace). Times in simulated seconds.
struct TraceEvent {
  int stream = 0;
  int device = 0;
  char kind = '?'; ///< K kernel, C copy, H host func, R record, W wait
  double start = 0, end = 0;
  std::string label;
};

struct SimStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t copies = 0;
  std::uint64_t host_funcs = 0;

  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t bytes_p2p = 0; ///< device-to-device, direct peer path
  std::uint64_t bytes_host_staged = 0; ///< device-to-device through the host
  /// Payload bytes that crossed the inter-node network (cluster topologies:
  /// link classes NetworkSend / NetworkRecv / NetworkStaged). Disjoint from
  /// the single-node counters above — a transfer is classified by the full
  /// path it takes, so cross-node traffic lands here, not in bytes_h2d/d2h/
  /// host_staged.
  std::uint64_t bytes_network = 0;

  // Split of bytes_p2p by physical path (transfer-routing tests use these to
  // check traffic lands on the link class the planner chose).
  std::uint64_t bytes_p2p_same_bus = 0;  ///< through the pair's PCIe switch
  std::uint64_t bytes_p2p_cross_bus = 0; ///< over the inter-socket link

  double kernel_seconds = 0; ///< Sum of kernel busy time across devices.
  double copy_seconds = 0;   ///< Sum of transfer time across engines.

  // Busy time of the shared interconnect resources (summed across cluster
  // nodes). Concurrent transfers serialize on these in the event loop, so
  // high values here mean the workload is link-bound, not engine-bound.
  double host_uplink_busy_seconds = 0;
  double host_downlink_busy_seconds = 0;
  double socket_link_busy_seconds = 0;
  /// NIC busy time summed across cluster nodes, per direction (the NICs are
  /// full duplex; each node's egress and ingress serialize independently).
  double nic_send_busy_seconds = 0;
  double nic_recv_busy_seconds = 0;

  /// bytes_between[i][j]: bytes moved from endpoint i to endpoint j, where
  /// index 0 is the host and index d+1 is device d.
  std::vector<std::vector<std::uint64_t>> bytes_between;

  /// Per-device busy time of the compute engine (seconds).
  std::vector<double> device_compute_seconds;
};

} // namespace sim
