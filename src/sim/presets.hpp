// Calibrated device presets for the paper's experimental setup (Table 3).
#pragma once

#include <vector>

#include "sim/arch.hpp"

namespace sim {

/// NVIDIA GTX 780 (Kepler, 3 GiB, 12 SM x 192 cores).
DeviceSpec gtx780();
/// NVIDIA GTX Titan Black (Kepler, 6 GiB, 15 SM x 192 cores).
DeviceSpec titan_black();
/// NVIDIA GTX 980 (Maxwell, 4 GiB, 16 SM x 128 cores).
DeviceSpec gtx980();

/// All three presets, in the paper's Table 3 order.
std::vector<DeviceSpec> paper_device_models();

/// A node of `count` identical devices, as in the paper's test nodes.
std::vector<DeviceSpec> homogeneous_node(const DeviceSpec& spec, int count);

} // namespace sim
