// Interconnect topology of a simulated multi-GPU node.
//
// The paper's nodes connect pairs of GPUs on two PCI-Express 3 buses, each
// pair controlled by a different CPU (§5). Peer-to-peer transfers within a
// bus go direct; transfers crossing buses traverse the inter-socket link and
// are slower. Host-staged transfers (the CUBLAS-XT / MPI baselines of §5.4
// and §6.2) bounce through host RAM and pay both hops plus software latency.
#pragma once

#include <cstddef>
#include <vector>

namespace sim {

/// Endpoint of a transfer: the host, or device index `device`.
struct Endpoint {
  int device = -1; ///< -1 designates the host.
  bool is_host() const { return device < 0; }
  static Endpoint host() { return Endpoint{-1}; }
  static Endpoint dev(int d) { return Endpoint{d}; }
};

/// Classification of the physical path a transfer takes. Ordered by routing
/// preference (see Topology::link_rank): a transfer planner should prefer
/// sources reachable over cheaper, less-shared links.
enum class LinkClass {
  IntraDevice,  ///< same device (memsets, halo self-copies): no interconnect
  PeerSameBus,  ///< P2P through the pair's shared PCIe switch
  PeerCrossBus, ///< P2P across the inter-socket link
  HostToDevice, ///< over the host's PCIe uplink
  DeviceToHost, ///< over the host's PCIe downlink
  HostStaged,   ///< D2H + H2D bounce through host RAM within one node
  // Network tier (cluster topologies only; see Topology::cluster). Bound
  // host buffers live on the head node (cluster node 0), so host transfers
  // touching a device on another node cross the network too. Each class
  // occupies the NICs it traverses (LinkUse::nic_send_node / nic_recv_node).
  NetworkSend,   ///< device on a remote node -> head-node host RAM
  NetworkRecv,   ///< head-node host RAM -> device on a remote node
  NetworkStaged, ///< device -> device across nodes: D2H + NIC hop + H2D
};

/// Per-node interconnect description with a simple per-hop bandwidth/latency
/// model. All bandwidths are in GB/s, latencies in microseconds.
class Topology {
public:
  /// Builds the paper's topology: `device_count` GPUs, consecutive pairs
  /// sharing a PCIe-3 bus, with peer access enabled within a pair and
  /// routed across the inter-socket link between pairs.
  static Topology pcie3_pairs(int device_count);

  /// Cluster of `nodes` multi-GPU nodes (the paper's §8 future-work
  /// direction): inside a node the usual PCIe-pair layout; between nodes an
  /// interconnect whose latency is orders of magnitude higher than PCIe.
  /// Cross-node peers are not reachable directly — transfers stage through
  /// the hosts and the network.
  static Topology cluster(int nodes, int gpus_per_node,
                          double network_gbps = 5.0,
                          double network_latency_us = 30.0);

  Topology() = default;
  Topology(int device_count, double h2d_gbps, double d2h_gbps,
           double p2p_same_bus_gbps, double p2p_cross_bus_gbps,
           double latency_us);

  int device_count() const { return device_count_; }
  int bus_of(int device) const;
  /// Cluster node a device belongs to (0 when single-node). Negative device
  /// indices (host endpoints) map to the head node: bound host buffers live
  /// in the head node's RAM, which is what makes remote host transfers pay
  /// the network hop.
  int cluster_node_of(int device) const;
  int cluster_nodes() const { return cluster_nodes_; }
  /// Devices per cluster node (0 = all devices in one node).
  int gpus_per_node() const { return gpus_per_node_; }
  /// True when src and dst can exchange data without host staging
  /// (false across cluster nodes).
  bool peer_enabled(int src, int dst) const;

  /// Network hop cost between two cluster nodes (0 within a node).
  double network_seconds(int src_device, int dst_device,
                         std::size_t bytes) const;

  // --- Link-cost query API (transfer planning) -------------------------------

  /// Physical path class of a transfer between two endpoints.
  LinkClass link_class(Endpoint src, Endpoint dst,
                       bool host_staged = false) const;

  /// Routing preference of a link class: lower ranks are cheaper / less
  /// shared (in-pair P2P < cross-bus P2P < H2D < D2H < host-staged < the
  /// network classes). IntraDevice ranks cheapest of all — it never leaves
  /// the device.
  static int link_rank(LinkClass c) { return static_cast<int>(c); }

  /// True when the class traverses the inter-node network.
  static bool crosses_network(LinkClass c) {
    return c == LinkClass::NetworkSend || c == LinkClass::NetworkRecv ||
           c == LinkClass::NetworkStaged;
  }

  /// Shared interconnect resources one transfer occupies (-1 = unused). The
  /// simulator serializes concurrent transfers on each shared resource;
  /// in-pair P2P uses none (point-to-point through the pair's own switch),
  /// which is exactly why replica forwarding within a pair relieves the
  /// host links during one-to-many distribution.
  ///
  /// The model follows the paper's dual-socket node: each PCIe bus hangs off
  /// its own CPU socket, so host traffic contends per *bus* (uplink and
  /// downlink are independent directions of the same x16 connection), and
  /// cross-bus peer traffic shares one full-duplex inter-socket link per
  /// cluster node (one resource per direction).
  /// Each cluster node owns one full-duplex NIC shared by every transfer
  /// entering or leaving the node: the send and receive directions are
  /// independent resources, but a node's egress (or ingress) traffic
  /// serializes on the one NIC regardless of which link class it belongs to
  /// — the same resource identity a transfer planner must model to cross
  /// the network once per destination node instead of once per device.
  struct LinkUse {
    int uplink_bus = -1;    ///< host->device: dst's bus uplink
    int downlink_bus = -1;  ///< device->host: src's bus downlink
    int socket_node = -1;   ///< cross-bus P2P: cluster node of the hop
    int socket_dir = 0;     ///< 0 = ascending bus index, 1 = descending
    int nic_send_node = -1; ///< egress NIC (cluster node the data leaves)
    int nic_recv_node = -1; ///< ingress NIC (cluster node the data enters)
  };
  LinkUse link_use(Endpoint src, Endpoint dst, bool host_staged = false) const;
  /// Number of PCIe buses (consecutive device pairs).
  int bus_count() const { return (device_count_ + 1) / 2; }

  /// One leg of a network-crossing transfer's path: the time window
  /// (relative to the transfer's start) during which it occupies a subset of
  /// the shared resources. A NetworkStaged copy decomposes into its D2H hop
  /// (source bus downlink), the NIC hop (source egress + destination
  /// ingress), and its H2D hop (destination bus uplink); the windows are
  /// disjoint and sum (with the software-staging setup) to exactly the
  /// monolithic copy duration, so a lone transfer's timing is unchanged —
  /// only *concurrent* transfers (e.g. successive chunk pieces of one routed
  /// crossing) can now overlap leg-wise instead of serializing end-to-end.
  struct CopyLeg {
    double offset_s = 0.0;   ///< leg start relative to the transfer's start
    double duration_s = 0.0; ///< leg length (resource busy time)
    LinkUse use;             ///< resources this leg occupies
  };

  /// Decomposes a transfer into per-resource occupancy legs. Returns the
  /// number of legs written to `out` (at most 3), or 0 when no decomposition
  /// applies — direct single-node link classes, HostStaged on a single-node
  /// topology, or `network_pipelining` off — in which case the caller must
  /// fall back to whole-duration reservation of link_use(). On cluster
  /// topologies HostStaged decomposes into its D2H and H2D hops so the
  /// planner's in-node bounce path pipelines chunk-wise like a crossing.
  /// Zero-duration legs are omitted.
  int copy_legs(Endpoint src, Endpoint dst, std::size_t bytes,
                bool host_staged, CopyLeg out[3]) const;

  /// Effective bandwidth (GB/s) for a transfer between two endpoints.
  double bandwidth_gbps(Endpoint src, Endpoint dst) const;
  /// Fixed per-transfer latency (us) between two endpoints.
  double latency_us(Endpoint src, Endpoint dst) const;

  /// Duration in seconds of a single transfer of `bytes`.
  double transfer_seconds(Endpoint src, Endpoint dst, std::size_t bytes) const;

  /// Extra software latency (us) added by host-staged exchange baselines
  /// (MPI/IPC in NMF-mGPU, host-based API in CUBLAS-XT).
  double host_staging_software_us = 25.0;

  /// When true (default), network-crossing transfers occupy each shared
  /// link only during the leg that traverses it (see copy_legs), letting
  /// chunk pieces of one routed crossing pipeline D2H / NIC / H2D hops.
  /// Off reproduces the PR 8 whole-duration reservation model.
  bool network_pipelining = true;

private:
  int device_count_ = 0;
  int cluster_nodes_ = 1;
  int gpus_per_node_ = 0; // 0: all devices in one node
  double network_gbps_ = 5.0;
  double network_latency_us_ = 30.0;
  double h2d_gbps_ = 12.0;
  double d2h_gbps_ = 12.5;
  double p2p_same_bus_gbps_ = 10.5;
  double p2p_cross_bus_gbps_ = 7.0;
  double latency_us_ = 9.0;
};

} // namespace sim
