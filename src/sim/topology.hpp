// Interconnect topology of a simulated multi-GPU node.
//
// The paper's nodes connect pairs of GPUs on two PCI-Express 3 buses, each
// pair controlled by a different CPU (§5). Peer-to-peer transfers within a
// bus go direct; transfers crossing buses traverse the inter-socket link and
// are slower. Host-staged transfers (the CUBLAS-XT / MPI baselines of §5.4
// and §6.2) bounce through host RAM and pay both hops plus software latency.
#pragma once

#include <cstddef>
#include <vector>

namespace sim {

/// Endpoint of a transfer: the host, or device index `device`.
struct Endpoint {
  int device = -1; ///< -1 designates the host.
  bool is_host() const { return device < 0; }
  static Endpoint host() { return Endpoint{-1}; }
  static Endpoint dev(int d) { return Endpoint{d}; }
};

/// Per-node interconnect description with a simple per-hop bandwidth/latency
/// model. All bandwidths are in GB/s, latencies in microseconds.
class Topology {
public:
  /// Builds the paper's topology: `device_count` GPUs, consecutive pairs
  /// sharing a PCIe-3 bus, with peer access enabled within a pair and
  /// routed across the inter-socket link between pairs.
  static Topology pcie3_pairs(int device_count);

  /// Cluster of `nodes` multi-GPU nodes (the paper's §8 future-work
  /// direction): inside a node the usual PCIe-pair layout; between nodes an
  /// interconnect whose latency is orders of magnitude higher than PCIe.
  /// Cross-node peers are not reachable directly — transfers stage through
  /// the hosts and the network.
  static Topology cluster(int nodes, int gpus_per_node,
                          double network_gbps = 5.0,
                          double network_latency_us = 30.0);

  Topology() = default;
  Topology(int device_count, double h2d_gbps, double d2h_gbps,
           double p2p_same_bus_gbps, double p2p_cross_bus_gbps,
           double latency_us);

  int device_count() const { return device_count_; }
  int bus_of(int device) const;
  /// Cluster node a device belongs to (0 when single-node).
  int cluster_node_of(int device) const;
  int cluster_nodes() const { return cluster_nodes_; }
  /// True when src and dst can exchange data without host staging
  /// (false across cluster nodes).
  bool peer_enabled(int src, int dst) const;

  /// Network hop cost between two cluster nodes (0 within a node).
  double network_seconds(int src_device, int dst_device,
                         std::size_t bytes) const;

  /// Effective bandwidth (GB/s) for a transfer between two endpoints.
  double bandwidth_gbps(Endpoint src, Endpoint dst) const;
  /// Fixed per-transfer latency (us) between two endpoints.
  double latency_us(Endpoint src, Endpoint dst) const;

  /// Duration in seconds of a single transfer of `bytes`.
  double transfer_seconds(Endpoint src, Endpoint dst, std::size_t bytes) const;

  /// Extra software latency (us) added by host-staged exchange baselines
  /// (MPI/IPC in NMF-mGPU, host-based API in CUBLAS-XT).
  double host_staging_software_us = 25.0;

private:
  int device_count_ = 0;
  int cluster_nodes_ = 1;
  int gpus_per_node_ = 0; // 0: all devices in one node
  double network_gbps_ = 5.0;
  double network_latency_us_ = 30.0;
  double h2d_gbps_ = 12.0;
  double d2h_gbps_ = 12.5;
  double p2p_same_bus_gbps_ = 10.5;
  double p2p_cross_bus_gbps_ = 7.0;
  double latency_us_ = 9.0;
};

} // namespace sim
