#include "sim/topology.hpp"

#include <stdexcept>

namespace sim {

Topology Topology::pcie3_pairs(int device_count) {
  return Topology(device_count, /*h2d=*/12.0, /*d2h=*/12.5,
                  /*p2p_same_bus=*/10.5, /*p2p_cross_bus=*/7.0,
                  /*latency_us=*/9.0);
}

Topology Topology::cluster(int nodes, int gpus_per_node, double network_gbps,
                           double network_latency_us) {
  Topology t = pcie3_pairs(nodes * gpus_per_node);
  t.cluster_nodes_ = nodes;
  t.gpus_per_node_ = gpus_per_node;
  t.network_gbps_ = network_gbps;
  t.network_latency_us_ = network_latency_us;
  return t;
}

Topology::Topology(int device_count, double h2d_gbps, double d2h_gbps,
                   double p2p_same_bus_gbps, double p2p_cross_bus_gbps,
                   double latency_us)
    : device_count_(device_count), h2d_gbps_(h2d_gbps), d2h_gbps_(d2h_gbps),
      p2p_same_bus_gbps_(p2p_same_bus_gbps),
      p2p_cross_bus_gbps_(p2p_cross_bus_gbps), latency_us_(latency_us) {
  if (device_count < 1) {
    throw std::invalid_argument("Topology requires at least one device");
  }
}

int Topology::bus_of(int device) const {
  if (device < 0 || device >= device_count_) {
    throw std::out_of_range("Topology::bus_of: bad device index");
  }
  return device / 2; // consecutive pairs share a PCIe bus (paper §5)
}

int Topology::cluster_node_of(int device) const {
  if (gpus_per_node_ <= 0 || device < 0) {
    return 0; // host endpoints live in the head node's RAM
  }
  return device / gpus_per_node_;
}

bool Topology::peer_enabled(int src, int dst) const {
  if (src < 0 || dst < 0 || src >= device_count_ || dst >= device_count_) {
    return false;
  }
  // Peer access only exists within one node; cross-node transfers stage
  // through the hosts and the network.
  return cluster_node_of(src) == cluster_node_of(dst);
}

double Topology::network_seconds(int src_device, int dst_device,
                                 std::size_t bytes) const {
  if (cluster_node_of(src_device) == cluster_node_of(dst_device)) {
    return 0.0;
  }
  return network_latency_us_ * 1e-6 +
         static_cast<double>(bytes) / (network_gbps_ * 1e9);
}

LinkClass Topology::link_class(Endpoint src, Endpoint dst,
                               bool host_staged) const {
  if (!src.is_host() && !dst.is_host() && src.device == dst.device) {
    return LinkClass::IntraDevice;
  }
  // Cross-node transfers are network-classed regardless of the staging flag:
  // a cluster hop is inherently staged through the endpoints' hosts and the
  // NICs, so the flag adds nothing the node placement doesn't already say.
  if (cluster_node_of(src.device) != cluster_node_of(dst.device)) {
    if (src.is_host()) {
      return LinkClass::NetworkRecv;
    }
    if (dst.is_host()) {
      return LinkClass::NetworkSend;
    }
    return LinkClass::NetworkStaged;
  }
  if (host_staged) {
    return LinkClass::HostStaged;
  }
  if (src.is_host()) {
    return LinkClass::HostToDevice;
  }
  if (dst.is_host()) {
    return LinkClass::DeviceToHost;
  }
  return bus_of(src.device) == bus_of(dst.device) ? LinkClass::PeerSameBus
                                                  : LinkClass::PeerCrossBus;
}

Topology::LinkUse Topology::link_use(Endpoint src, Endpoint dst,
                                     bool host_staged) const {
  LinkUse use;
  switch (link_class(src, dst, host_staged)) {
  case LinkClass::IntraDevice:
  case LinkClass::PeerSameBus:
    break; // endpoint copy engines only; nothing shared
  case LinkClass::PeerCrossBus:
    use.socket_node = cluster_node_of(src.device);
    use.socket_dir = bus_of(src.device) < bus_of(dst.device) ? 0 : 1;
    break;
  case LinkClass::HostToDevice:
    use.uplink_bus = bus_of(dst.device);
    break;
  case LinkClass::DeviceToHost:
    use.downlink_bus = bus_of(src.device);
    break;
  case LinkClass::HostStaged:
    // Both hops are paid for the whole transfer: out of the source bus's
    // downlink, into the destination bus's uplink (the same bus when the
    // staging is forced rather than cross-node).
    use.downlink_bus = bus_of(src.device);
    use.uplink_bus = bus_of(dst.device);
    break;
  case LinkClass::NetworkSend:
    // Remote device -> head host: PCIe D2H on the source node, then the
    // source node's egress NIC into the head node's ingress NIC.
    use.downlink_bus = bus_of(src.device);
    use.nic_send_node = cluster_node_of(src.device);
    use.nic_recv_node = cluster_node_of(dst.device);
    break;
  case LinkClass::NetworkRecv:
    // Head host -> remote device: head egress NIC, destination ingress NIC,
    // then PCIe H2D on the destination node.
    use.nic_send_node = cluster_node_of(src.device);
    use.nic_recv_node = cluster_node_of(dst.device);
    use.uplink_bus = bus_of(dst.device);
    break;
  case LinkClass::NetworkStaged:
    // Device -> device across nodes: D2H out of the source bus, one NIC hop
    // (source egress, destination ingress), H2D into the destination bus.
    use.downlink_bus = bus_of(src.device);
    use.nic_send_node = cluster_node_of(src.device);
    use.nic_recv_node = cluster_node_of(dst.device);
    use.uplink_bus = bus_of(dst.device);
    break;
  }
  return use;
}

int Topology::copy_legs(Endpoint src, Endpoint dst, std::size_t bytes,
                        bool host_staged, CopyLeg out[3]) const {
  if (!network_pipelining) {
    return 0;
  }
  const LinkClass cls = link_class(src, dst, host_staged);
  // HostStaged decomposes too, but only on cluster topologies: the planner's
  // cross-bus bounce path wants its D2H and H2D hops to pipeline chunk-wise,
  // while single-node forced staging must keep the PR 8 whole-duration
  // reservation so the committed single-node baselines are untouched.
  if (!crosses_network(cls) &&
      !(cls == LinkClass::HostStaged && cluster_nodes_ > 1)) {
    return 0;
  }
  // Leg offsets and durations must sum to exactly cost_model's copy_seconds
  // for the same arguments, so a lone transfer's completion time is
  // identical with or without the decomposition.
  const Endpoint host = Endpoint::host();
  const double net = network_seconds(src.device, dst.device, bytes);
  int n = 0;
  auto add = [&](double offset, double dur, const LinkUse& use) {
    if (dur <= 0.0) {
      return;
    }
    out[n].offset_s = offset;
    out[n].duration_s = dur;
    out[n].use = use;
    ++n;
  };
  auto nic_hop = [&]() {
    LinkUse u;
    u.nic_send_node = cluster_node_of(src.device);
    u.nic_recv_node = cluster_node_of(dst.device);
    return u;
  };
  switch (cls) {
  case LinkClass::NetworkStaged: {
    if (!host_staged) {
      return 0; // unstaged cross-node p2p keeps the monolithic model
    }
    const double sw = host_staging_software_us * 1e-6;
    const double d2h = transfer_seconds(src, host, bytes);
    const double h2d = transfer_seconds(host, dst, bytes);
    LinkUse down, up;
    down.downlink_bus = bus_of(src.device);
    up.uplink_bus = bus_of(dst.device);
    add(sw, d2h, down);
    add(sw + d2h, net, nic_hop());
    add(sw + d2h + net, h2d, up);
    return n;
  }
  case LinkClass::HostStaged: {
    // In-node bounce through host RAM: software setup, then D2H out of the
    // source bus, then H2D into the destination bus (net is 0 within a
    // node). The legs partition copy_seconds' staged duration exactly.
    const double sw = host_staging_software_us * 1e-6;
    const double d2h = transfer_seconds(src, host, bytes);
    const double h2d = transfer_seconds(host, dst, bytes);
    LinkUse down, up;
    down.downlink_bus = bus_of(src.device);
    up.uplink_bus = bus_of(dst.device);
    add(sw, d2h, down);
    add(sw + d2h, h2d, up);
    return n;
  }
  case LinkClass::NetworkSend: {
    if (host_staged) {
      return 0;
    }
    const double d2h = transfer_seconds(src, host, bytes);
    LinkUse down;
    down.downlink_bus = bus_of(src.device);
    add(0.0, d2h, down);
    add(d2h, net, nic_hop());
    return n;
  }
  case LinkClass::NetworkRecv: {
    if (host_staged) {
      return 0;
    }
    const double h2d = transfer_seconds(host, dst, bytes);
    LinkUse up;
    up.uplink_bus = bus_of(dst.device);
    add(0.0, net, nic_hop());
    add(net, h2d, up);
    return n;
  }
  default:
    return 0;
  }
}

double Topology::bandwidth_gbps(Endpoint src, Endpoint dst) const {
  if (src.is_host() && dst.is_host()) {
    return 25.0; // host memcpy; never on the critical path in practice
  }
  if (src.is_host()) {
    return h2d_gbps_;
  }
  if (dst.is_host()) {
    return d2h_gbps_;
  }
  if (src.device == dst.device) {
    return 2.0 * p2p_same_bus_gbps_; // intra-device D2D
  }
  return bus_of(src.device) == bus_of(dst.device) ? p2p_same_bus_gbps_
                                                  : p2p_cross_bus_gbps_;
}

double Topology::latency_us(Endpoint src, Endpoint dst) const {
  if (!src.is_host() && !dst.is_host() && src.device != dst.device &&
      bus_of(src.device) != bus_of(dst.device)) {
    return latency_us_ * 1.5; // extra inter-socket hop
  }
  return latency_us_;
}

double Topology::transfer_seconds(Endpoint src, Endpoint dst,
                                  std::size_t bytes) const {
  const double bw = bandwidth_gbps(src, dst) * 1e9;
  return latency_us(src, dst) * 1e-6 + static_cast<double>(bytes) / bw;
}

} // namespace sim
