// Device architecture descriptions for the multi-GPU node simulator.
//
// The simulator stands in for the CUDA runtime + physical GPUs of the paper's
// testbed (SC'15 MAPS-Multi, Table 3). A DeviceSpec carries both the physical
// configuration (SMs, cores, clock, memory) and the calibrated throughput
// constants the cost model uses to turn a kernel's LaunchStats into simulated
// time. Calibration sources are documented in presets.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sim {

/// GPU micro-architecture family. The paper evaluates on Kepler (GTX 780,
/// Titan Black) and Maxwell (GTX 980); the families differ materially in
/// atomic-operation throughput (paper §5.3).
enum class Arch {
  Kepler,
  Maxwell,
};

/// Returns a printable name for an architecture family.
const char* to_string(Arch arch);

/// Full description of one simulated device.
///
/// Physical fields mirror the paper's Table 3; throughput fields are the cost
/// model's calibration constants (see cost_model.hpp for the formulas).
struct DeviceSpec {
  std::string name;       ///< Marketing name, e.g. "GTX 780".
  Arch arch = Arch::Kepler;
  int sm_count = 1;       ///< Number of multiprocessors.
  int cores_per_sm = 192; ///< CUDA cores per multiprocessor.
  double clock_ghz = 1.0; ///< Core clock.
  std::size_t global_mem_bytes = 0; ///< Global RAM capacity.

  // --- Cost-model calibration ---------------------------------------------
  double mem_bandwidth_gbps = 200.0; ///< Global memory bandwidth (GB/s).
  /// Fraction of peak FLOP/s a well-tuned dense kernel (GEMM) attains.
  /// Calibrated from the paper's Table 4 single-GPU CUBLAS times.
  double gemm_efficiency = 0.7;
  /// Fraction of peak FLOP/s a generic compute-bound kernel attains.
  double generic_efficiency = 0.45;
  /// Aggregate global-atomic throughput (ops/s). Calibrated from the naive
  /// histogram runtimes in §5.3 (6.09 / 6.41 / 30.92 ms for 67.1M atomics).
  double global_atomic_ops_per_s = 1e10;
  /// Aggregate shared-memory-atomic throughput (ops/s).
  double shared_atomic_ops_per_s = 3e10;
  /// Aggregate shared-memory access throughput (ops/s). Shared-staging
  /// latency is what makes non-ILP MAPS slower than a naive kernel in Fig 7.
  double shared_ops_per_s = 6e10;
  /// Aggregate scalar-instruction issue rate (ops/s) charged for per-thread
  /// fixed overhead (index math, loop control). ILP amortizes this.
  double instr_ops_per_s = 2e12;
  /// Fixed kernel-launch overhead (microseconds).
  double kernel_launch_us = 7.0;
  /// Maximum resident thread-blocks per SM (wave quantization).
  int max_blocks_per_sm = 16;

  /// Peak single-precision FLOP/s (2 flops/cycle/core FMA).
  double peak_flops() const {
    return 2.0 * static_cast<double>(sm_count) * cores_per_sm * clock_ghz *
           1e9;
  }
};

} // namespace sim
