#include "sim/memory.hpp"

#include <algorithm>
#include <cstring>

namespace sim {

namespace {
std::string oom_message(int device, std::size_t requested, std::size_t used,
                        std::size_t capacity) {
  return "out of device memory on device " + std::to_string(device) +
         ": requested " + std::to_string(requested) + " B, used " +
         std::to_string(used) + " B of " + std::to_string(capacity) + " B";
}
} // namespace

OutOfDeviceMemory::OutOfDeviceMemory(int device, std::size_t requested,
                                     std::size_t used, std::size_t capacity)
    : std::runtime_error(oom_message(device, requested, used, capacity)),
      device(device), requested(requested), used(used), capacity(capacity) {}

Buffer::Buffer(int device, std::size_t bytes, bool functional)
    : device_(device), bytes_(bytes) {
  if (functional) {
    data_ = std::make_unique<std::byte[]>(bytes);
    std::memset(data_.get(), 0, bytes); // fresh device memory reads as zero
  }
}

DeviceAllocator::DeviceAllocator(int device, std::size_t capacity,
                                 bool functional)
    : device_(device), capacity_(capacity), functional_(functional) {}

Buffer* DeviceAllocator::allocate(std::size_t bytes) {
  if (bytes == 0) {
    throw std::invalid_argument("DeviceAllocator::allocate: zero-size");
  }
  if (used_ + bytes > capacity_) {
    throw OutOfDeviceMemory(device_, bytes, used_, capacity_);
  }
  auto buffer =
      std::unique_ptr<Buffer>(new Buffer(device_, bytes, functional_));
  Buffer* raw = buffer.get();
  live_.push_back(std::move(buffer));
  used_ += bytes;
  return raw;
}

void DeviceAllocator::free(Buffer* buffer) {
  auto it = std::find_if(live_.begin(), live_.end(),
                         [&](const auto& p) { return p.get() == buffer; });
  if (it == live_.end()) {
    throw std::invalid_argument(
        "DeviceAllocator::free: buffer not owned by this device");
  }
  used_ -= (*it)->size();
  live_.erase(it);
}

} // namespace sim
