#include "sim/cost_model.hpp"

#include <algorithm>

namespace sim {

double kernel_seconds(const DeviceSpec& spec, const LaunchStats& stats) {
  const double eff =
      stats.flop_efficiency > 0 ? stats.flop_efficiency : spec.generic_efficiency;

  const double compute =
      static_cast<double>(stats.flops) / (spec.peak_flops() * eff);
  const double gmem =
      static_cast<double>(stats.global_bytes_read + stats.global_bytes_written) /
      (spec.mem_bandwidth_gbps * 1e9);
  const double shmem =
      static_cast<double>(stats.shared_ops) / spec.shared_ops_per_s;
  const double gatom =
      static_cast<double>(stats.global_atomics) / spec.global_atomic_ops_per_s;
  const double satom =
      static_cast<double>(stats.shared_atomics) / spec.shared_atomic_ops_per_s;
  const double instr =
      static_cast<double>(stats.instr_overhead) / spec.instr_ops_per_s;

  double busy = std::max({compute, gmem, shmem, gatom, satom, instr});

  // Wave quantization: a launch with fewer blocks than multiprocessors
  // cannot use the whole device.
  if (stats.blocks > 0) {
    const double util = std::min(
        1.0, static_cast<double>(stats.blocks) / spec.sm_count);
    busy /= std::max(util, 1e-9);
  }

  return spec.kernel_launch_us * 1e-6 + stats.extra_us * 1e-6 + busy;
}

double copy_seconds(const Topology& topo, Endpoint src, Endpoint dst,
                    std::size_t bytes, bool host_staged) {
  // Endpoints on different cluster nodes pay one network hop on top of the
  // PCIe legs (host endpoints count as the head node — bound host buffers
  // live in its RAM). Zero within a node, so single-node topologies are
  // untouched by this term.
  const double net = topo.network_seconds(src.device, dst.device, bytes);
  if (!host_staged) {
    return topo.transfer_seconds(src, dst, bytes) + net;
  }
  // Device -> host RAM -> device, plus software (MPI/IPC or host-based API)
  // latency. This is the path the paper identifies as the scaling killer in
  // CUBLAS-XT (§5.4) and NMF-mGPU (§6.2); across cluster nodes it
  // additionally crosses the network once (D2H -> NIC -> H2D legs).
  const Endpoint host = Endpoint::host();
  double t = topo.host_staging_software_us * 1e-6 + net;
  if (!src.is_host()) {
    t += topo.transfer_seconds(src, host, bytes);
  }
  if (!dst.is_host()) {
    t += topo.transfer_seconds(host, dst, bytes);
  }
  return t;
}

} // namespace sim
