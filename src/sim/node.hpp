// The simulated multi-GPU node: devices, streams, events and the
// discrete-event engine.
//
// This module is the reproduction's substitute for the CUDA runtime plus the
// paper's 4-GPU PCIe-3 testbed (DESIGN.md §2). It exposes the asynchronous
// command-queue semantics the MAPS-Multi scheduler is written against:
//
//  * per-device in-order streams holding kernels, copies, memsets, event
//    records/waits and host functions;
//  * one compute engine and two copy engines per device, so copies overlap
//    kernels and each other (paper §2);
//  * events for cross-stream/cross-device synchronization;
//  * peer-to-peer transfers over the node topology, with an explicit
//    host-staged variant for the paper's baseline systems.
//
// Execution model: enqueue operations are cheap and thread-safe (the
// scheduler's invoker threads call them concurrently). synchronize() runs a
// deterministic list scheduler that processes commands in simulated-time
// order, respecting stream order, event dependencies and engine
// availability; in Functional mode each command's body also executes, so
// results are real and verifiable. Simulated timestamps depend only on the
// dependency graph, never on host wall-clock.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/arch.hpp"
#include "sim/launch_stats.hpp"
#include "sim/memory.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"

namespace sim {

/// Whether kernel/copy bodies actually run (tests, examples) or only their
/// costs accrue (paper-scale benchmarks). See DESIGN.md §5.3.
enum class ExecMode { Functional, TimingOnly };

using StreamId = int;
using EventId = int;

/// Host-side backend that runs functional KERNEL bodies asynchronously while
/// the event loop keeps scheduling (the multi-layer scheduler installs one
/// backed by its worker pool; see set_functional_executor). The contract
/// mirrors the sequential semantics exactly:
///
///  * run_kernel_body(device, body) may return before `body` ran; at most
///    one body is pending per device (the event loop joins the device
///    first), so same-device kernels never overlap;
///  * join_device / join_all block until the named bodies finished and
///    rethrow any captured exception.
///
/// Only Kernel bodies are ever deferred — copies, memsets and host functions
/// read and write the same buffers, so the event loop joins ALL pending
/// bodies before executing any non-kernel body, and again before returning
/// from a drain. Deferred bodies must not call back into the Node (the same
/// rule as inline bodies).
class FunctionalExecutor {
public:
  virtual ~FunctionalExecutor() = default;
  virtual void run_kernel_body(int device, std::function<void()> body) = 0;
  virtual void join_device(int device) = 0;
  virtual void join_all() = 0;
};

class Node {
public:
  Node(std::vector<DeviceSpec> specs, Topology topo,
       ExecMode mode = ExecMode::Functional);
  explicit Node(std::vector<DeviceSpec> specs,
                ExecMode mode = ExecMode::Functional);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int device_count() const { return static_cast<int>(specs_.size()); }
  const DeviceSpec& spec(int device) const;
  const Topology& topology() const { return topo_; }
  ExecMode mode() const { return mode_; }
  bool functional() const { return mode_ == ExecMode::Functional; }

  // --- Memory ---------------------------------------------------------------
  Buffer* malloc_device(int device, std::size_t bytes);
  void free_device(Buffer* buffer);
  std::size_t device_mem_used(int device) const;
  std::size_t device_mem_capacity(int device) const;

  // --- Streams & events -------------------------------------------------------
  StreamId create_stream(int device);
  /// The stream created for each device at construction time.
  StreamId default_stream(int device) const;
  int stream_device(StreamId stream) const;
  EventId create_event();
  /// Creates `n` events under one lock; returns the first of `n` consecutive
  /// ids. Used by dispatch paths that know their event count up front.
  EventId create_events(int n);

  // --- Commands ---------------------------------------------------------------
  void memcpy_h2d(StreamId stream, Buffer* dst, std::size_t dst_off,
                  const void* src, std::size_t bytes);
  void memcpy_d2h(StreamId stream, void* dst, Buffer* src, std::size_t src_off,
                  std::size_t bytes);
  void memcpy_p2p(StreamId stream, Buffer* dst, std::size_t dst_off,
                  Buffer* src, std::size_t src_off, std::size_t bytes);
  /// Peer copy that bounces through host RAM (baseline systems only).
  void memcpy_p2p_host_staged(StreamId stream, Buffer* dst, std::size_t dst_off,
                              Buffer* src, std::size_t src_off,
                              std::size_t bytes);

  /// Strided 2D copies: `height` rows of `row_bytes`, with independent pitches.
  void memcpy_2d_h2d(StreamId stream, Buffer* dst, std::size_t dst_off,
                     std::size_t dst_pitch, const void* src,
                     std::size_t src_pitch, std::size_t row_bytes,
                     std::size_t height);
  void memcpy_2d_d2h(StreamId stream, void* dst, std::size_t dst_pitch,
                     Buffer* src, std::size_t src_off, std::size_t src_pitch,
                     std::size_t row_bytes, std::size_t height);
  void memcpy_2d_p2p(StreamId stream, Buffer* dst, std::size_t dst_off,
                     std::size_t dst_pitch, Buffer* src, std::size_t src_off,
                     std::size_t src_pitch, std::size_t row_bytes,
                     std::size_t height);

  void memset_device(StreamId stream, Buffer* dst, std::size_t dst_off,
                     int value, std::size_t bytes);

  /// Occupies a copy engine for an explicit duration, accounting `bytes` as
  /// host-to-device traffic. Used by baseline models whose staging behaviour
  /// (pinned-buffer bandwidth, host-side contention) is not derivable from
  /// the point-to-point topology — e.g. CUBLAS-XT tile streaming (§5.4).
  void stage_host_traffic(StreamId stream, std::size_t bytes, double seconds);

  /// Enqueues a kernel. `body` runs inside the event loop (Functional mode)
  /// in dependency order; it must not call back into the Node.
  void launch(StreamId stream, LaunchStats stats, std::function<void()> body);

  /// Enqueues a host-side function (e.g. aggregation) that runs when the
  /// stream reaches it.
  void host_func(StreamId stream, std::function<void()> fn,
                 double cost_us = 1.0);

  void record_event(EventId event, StreamId stream);
  /// CUDA semantics: waits for the most recent record enqueued before this
  /// call; a wait on a never-recorded event is a no-op.
  void wait_event(StreamId stream, EventId event);
  /// Strict variant for concurrent enqueue (the scheduler's invoker threads):
  /// waits for the `generation`-th record of `event` even if that record has
  /// not been enqueued yet. The matching record must be enqueued before the
  /// next synchronize(), otherwise the drain reports a deadlock.
  void wait_event_generation(StreamId stream, EventId event,
                             std::uint64_t generation);

  // --- Synchronization & clock -----------------------------------------------
  /// Drains every stream, executing all pending commands.
  void synchronize();
  /// Semantically waits for one stream; conservatively drains everything
  /// (simulated timestamps are unaffected — they depend only on the
  /// dependency graph).
  void synchronize_stream(StreamId stream);

  /// Simulated host-visible clock, in milliseconds.
  double now_ms() const;
  /// Advances the host clock: models host-side software time (scheduler
  /// bookkeeping, baseline library overhead). Subsequent commands cannot
  /// start earlier than the advanced time.
  void advance_host_us(double us);

  /// While alive on a thread, commands enqueued from that thread use the
  /// given simulated time as their issue floor instead of the node's current
  /// host clock. The scheduler's invoker threads use this so a task's
  /// commands are stamped with the host time at which the task was
  /// *dispatched*, independent of when the worker thread actually enqueues
  /// them (the main thread may already have advanced the clock for later
  /// tasks).
  class ScopedIssueFloor {
  public:
    ScopedIssueFloor(Node& node, double floor_s);
    ~ScopedIssueFloor();
    ScopedIssueFloor(const ScopedIssueFloor&) = delete;
    ScopedIssueFloor& operator=(const ScopedIssueFloor&) = delete;

  private:
    double previous_;
    bool had_previous_;
  };
  /// Current host clock in seconds (for capturing dispatch times).
  double host_now_s() const;

  const SimStats& stats() const { return stats_; }
  void reset_stats();

  /// Timeline tracing (start/end of every processed command).
  void enable_trace(bool on);
  const std::vector<TraceEvent>& trace() const { return trace_; }
  void clear_trace();

  /// Streaming per-command observer: invoked, under the node lock, for every
  /// command the event loop processes, with the same payload a trace entry
  /// would carry — but nothing is stored, so it is usable on unbounded runs.
  /// Validation harnesses use it to assert executed-command invariants (e.g.
  /// that a deliberately dropped transfer really never ran). The callback
  /// must not call back into the Node. Pass nullptr to remove.
  void set_exec_observer(std::function<void(const TraceEvent&)> observer);

  /// Installs (or, with nullptr, removes) the asynchronous functional-body
  /// backend. Must not be called while a synchronize() is in progress on
  /// another thread (the caller quiesces the node first). The Node does not
  /// own the executor; the installer must clear it before destroying the
  /// backend. No-op in TimingOnly mode (bodies are null there anyway).
  void set_functional_executor(FunctionalExecutor* executor);

private:
  struct Command;
  struct StreamState;
  struct EventState;
  struct DeviceEngines;
  struct LinkState;

  void enqueue(StreamId stream, Command cmd);
  void drain_locked();
  double command_duration(const Command& cmd, int device) const;
  void account(const Command& cmd, int device, double duration);
  /// Earliest time every shared link a copy needs is free (0 for none).
  /// Network-crossing copies are evaluated leg-wise (Topology::copy_legs):
  /// each leg's resource need only be free by that leg's offset into the
  /// transfer, which is what lets successive chunk pieces pipeline their
  /// D2H / NIC / H2D hops instead of serializing end-to-end.
  double link_free_time(const Command& cmd) const;
  /// Setup-latency share of a copy's duration; this much may overlap the
  /// predecessor still draining the shared link.
  double copy_setup_seconds(const Command& cmd) const;
  /// Marks the copy's shared links busy until `completion` (per leg for
  /// network-crossing copies: each resource is released when its leg ends).
  void reserve_links(const Command& cmd, double completion, double duration);
  /// Max free-time over the resources in one LinkUse.
  double link_free_use(const Topology::LinkUse& use) const;
  /// Marks one LinkUse's resources busy until `until`, accounting
  /// `duration` of busy time to each.
  void reserve_use(const Topology::LinkUse& use, double until, double duration);
  /// Fills `legs` for a copy command; 0 when no decomposition applies or
  /// the duration was overridden (an override invalidates the leg model).
  int copy_legs_for(const Command& cmd, Topology::CopyLeg legs[3]) const;

  std::vector<DeviceSpec> specs_;
  Topology topo_;
  ExecMode mode_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<DeviceAllocator>> allocators_;
  std::vector<StreamState> streams_;
  std::vector<EventState> events_;
  std::vector<DeviceEngines> engines_;
  /// Shared interconnect resources: per-bus host uplink/downlink and a
  /// per-cluster-node full-duplex inter-socket link. Copies wait for and
  /// reserve these in addition to a destination copy engine, so concurrent
  /// transfers that share a physical link serialize instead of overlapping
  /// for free. Indexed by bus for host links, by cluster node for the
  /// socket link (sized to the max of both).
  std::vector<LinkState> links_;
  std::vector<StreamId> default_streams_;

  double host_time_s_ = 0.0;
  SimStats stats_;
  bool trace_enabled_ = false;
  std::vector<TraceEvent> trace_;
  std::function<void(const TraceEvent&)> exec_observer_;
  FunctionalExecutor* functional_exec_ = nullptr;
};

} // namespace sim
