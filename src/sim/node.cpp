#include "sim/node.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/cost_model.hpp"

namespace sim {

namespace {
constexpr double kHostFuncDefaultUs = 1.0;

thread_local bool t_has_issue_floor = false;
thread_local double t_issue_floor_s = 0.0;
} // namespace

Node::ScopedIssueFloor::ScopedIssueFloor(Node& node, double floor_s)
    : previous_(t_issue_floor_s), had_previous_(t_has_issue_floor) {
  (void)node;
  t_has_issue_floor = true;
  t_issue_floor_s = floor_s;
}

Node::ScopedIssueFloor::~ScopedIssueFloor() {
  t_has_issue_floor = had_previous_;
  t_issue_floor_s = previous_;
}

// One enqueued stream command. A plain struct (not a variant) keeps the event
// loop simple; unused fields stay empty.
namespace {
double floor_or(double host_time_s) {
  return t_has_issue_floor ? t_issue_floor_s : host_time_s;
}
} // namespace

struct Node::Command {
  enum class Kind { Kernel, Copy, HostFunc, RecordEvent, WaitEvent } kind;

  /// Host time at enqueue; the command cannot start earlier (the host had
  /// not issued it yet).
  double issue_floor_s = 0.0;

  // Kernel
  LaunchStats stats;
  std::function<void()> body; // also used by Copy (the data mover) & HostFunc

  // Copy
  Endpoint src, dst;
  std::size_t bytes = 0;
  bool host_staged = false;
  double duration_override_s = -1.0; ///< >= 0 replaces the topology cost

  // HostFunc
  double host_cost_us = kHostFuncDefaultUs;

  // RecordEvent / WaitEvent
  EventId event = -1;
  std::uint64_t event_generation = 0;
};

struct Node::StreamState {
  int device = 0;
  std::deque<Command> queue;
  double last_completion_s = 0.0;
};

struct Node::EventState {
  /// Number of record commands enqueued so far; waits capture this.
  std::uint64_t enqueued_generation = 0;
  /// Generation of the most recent record command already *processed*.
  std::uint64_t processed_generation = 0;
  /// Simulated completion time of each processed generation (1-based).
  std::vector<double> completion_s;
};

struct Node::DeviceEngines {
  double compute_free_s = 0.0;
  double copy_free_s[2] = {0.0, 0.0};
};

struct Node::LinkState {
  // Host links, one pair per PCIe bus (indexed by bus).
  double uplink_free_s = 0.0;
  double downlink_free_s = 0.0;
  // Full-duplex inter-socket link, one pair per cluster node (indexed by
  // cluster node; [0] ascending bus direction, [1] descending).
  double socket_free_s[2] = {0.0, 0.0};
  // Full-duplex NIC, one per cluster node (indexed by cluster node): every
  // transfer leaving the node serializes on nic_send, every transfer
  // entering it on nic_recv, regardless of link class.
  double nic_send_free_s = 0.0;
  double nic_recv_free_s = 0.0;
};

Node::Node(std::vector<DeviceSpec> specs, Topology topo, ExecMode mode)
    : specs_(std::move(specs)), topo_(std::move(topo)), mode_(mode) {
  if (specs_.empty()) {
    throw std::invalid_argument("Node requires at least one device");
  }
  if (topo_.device_count() != static_cast<int>(specs_.size())) {
    throw std::invalid_argument("Topology/device-list size mismatch");
  }
  const bool functional = mode_ == ExecMode::Functional;
  engines_.resize(specs_.size());
  links_.resize(static_cast<std::size_t>(
      std::max(topo_.bus_count(), topo_.cluster_nodes())));
  for (int d = 0; d < device_count(); ++d) {
    allocators_.push_back(std::make_unique<DeviceAllocator>(
        d, specs_[static_cast<std::size_t>(d)].global_mem_bytes, functional));
  }
  stats_.bytes_between.assign(
      specs_.size() + 1, std::vector<std::uint64_t>(specs_.size() + 1, 0));
  stats_.device_compute_seconds.assign(specs_.size(), 0.0);
  for (int d = 0; d < device_count(); ++d) {
    default_streams_.push_back(create_stream(d));
  }
}

Node::Node(std::vector<DeviceSpec> specs, ExecMode mode)
    : Node(specs, Topology::pcie3_pairs(static_cast<int>(specs.size())),
           mode) {}

Node::~Node() = default;

const DeviceSpec& Node::spec(int device) const {
  return specs_.at(static_cast<std::size_t>(device));
}

Buffer* Node::malloc_device(int device, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocators_.at(static_cast<std::size_t>(device))->allocate(bytes);
}

void Node::free_device(Buffer* buffer) {
  if (buffer == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  allocators_.at(static_cast<std::size_t>(buffer->device()))->free(buffer);
}

std::size_t Node::device_mem_used(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocators_.at(static_cast<std::size_t>(device))->used();
}

std::size_t Node::device_mem_capacity(int device) const {
  return spec(device).global_mem_bytes;
}

StreamId Node::create_stream(int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device < 0 || device >= device_count()) {
    throw std::out_of_range("create_stream: bad device");
  }
  streams_.push_back(StreamState{device, {}, host_time_s_});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamId Node::default_stream(int device) const {
  return default_streams_.at(static_cast<std::size_t>(device));
}

int Node::stream_device(StreamId stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.at(static_cast<std::size_t>(stream)).device;
}

EventId Node::create_event() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(EventState{});
  return static_cast<EventId>(events_.size() - 1);
}

EventId Node::create_events(int n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const EventId first = static_cast<EventId>(events_.size());
  events_.resize(events_.size() + static_cast<std::size_t>(n));
  return first;
}

void Node::enqueue(StreamId stream, Command cmd) {
  std::lock_guard<std::mutex> lock(mutex_);
  cmd.issue_floor_s = floor_or(host_time_s_);
  streams_.at(static_cast<std::size_t>(stream)).queue.push_back(std::move(cmd));
}

void Node::memcpy_h2d(StreamId stream, Buffer* dst, std::size_t dst_off,
                      const void* src, std::size_t bytes) {
  assert(dst != nullptr && dst_off + bytes <= dst->size());
  Command c;
  c.kind = Command::Kind::Copy;
  c.src = Endpoint::host();
  c.dst = Endpoint::dev(dst->device());
  c.bytes = bytes;
  if (functional()) {
    c.body = [=] { std::memcpy(dst->data() + dst_off, src, bytes); };
  }
  enqueue(stream, std::move(c));
}

void Node::memcpy_d2h(StreamId stream, void* dst, Buffer* src,
                      std::size_t src_off, std::size_t bytes) {
  assert(src != nullptr && src_off + bytes <= src->size());
  Command c;
  c.kind = Command::Kind::Copy;
  c.src = Endpoint::dev(src->device());
  c.dst = Endpoint::host();
  c.bytes = bytes;
  if (functional()) {
    c.body = [=] { std::memcpy(dst, src->data() + src_off, bytes); };
  }
  enqueue(stream, std::move(c));
}

void Node::memcpy_p2p(StreamId stream, Buffer* dst, std::size_t dst_off,
                      Buffer* src, std::size_t src_off, std::size_t bytes) {
  assert(src != nullptr && dst != nullptr);
  assert(src_off + bytes <= src->size() && dst_off + bytes <= dst->size());
  Command c;
  c.kind = Command::Kind::Copy;
  c.src = Endpoint::dev(src->device());
  c.dst = Endpoint::dev(dst->device());
  // Without peer access (devices on different cluster nodes) the transfer
  // stages through the hosts and the network.
  c.host_staged = !topo_.peer_enabled(src->device(), dst->device());
  c.bytes = bytes;
  if (functional()) {
    c.body = [=] {
      std::memmove(dst->data() + dst_off, src->data() + src_off, bytes);
    };
  }
  enqueue(stream, std::move(c));
}

void Node::memcpy_p2p_host_staged(StreamId stream, Buffer* dst,
                                  std::size_t dst_off, Buffer* src,
                                  std::size_t src_off, std::size_t bytes) {
  assert(src != nullptr && dst != nullptr);
  Command c;
  c.kind = Command::Kind::Copy;
  c.src = Endpoint::dev(src->device());
  c.dst = Endpoint::dev(dst->device());
  c.bytes = bytes;
  c.host_staged = true;
  if (functional()) {
    c.body = [=] {
      std::memmove(dst->data() + dst_off, src->data() + src_off, bytes);
    };
  }
  enqueue(stream, std::move(c));
}

namespace {
void copy_2d(std::byte* dst, std::size_t dst_pitch, const std::byte* src,
             std::size_t src_pitch, std::size_t row_bytes, std::size_t height) {
  for (std::size_t r = 0; r < height; ++r) {
    std::memmove(dst + r * dst_pitch, src + r * src_pitch, row_bytes);
  }
}
} // namespace

void Node::memcpy_2d_h2d(StreamId stream, Buffer* dst, std::size_t dst_off,
                         std::size_t dst_pitch, const void* src,
                         std::size_t src_pitch, std::size_t row_bytes,
                         std::size_t height) {
  assert(dst != nullptr &&
         dst_off + (height == 0 ? 0 : (height - 1) * dst_pitch + row_bytes) <=
             dst->size());
  Command c;
  c.kind = Command::Kind::Copy;
  c.src = Endpoint::host();
  c.dst = Endpoint::dev(dst->device());
  c.bytes = row_bytes * height;
  if (functional()) {
    c.body = [=] {
      copy_2d(dst->data() + dst_off, dst_pitch,
              static_cast<const std::byte*>(src), src_pitch, row_bytes, height);
    };
  }
  enqueue(stream, std::move(c));
}

void Node::memcpy_2d_d2h(StreamId stream, void* dst, std::size_t dst_pitch,
                         Buffer* src, std::size_t src_off,
                         std::size_t src_pitch, std::size_t row_bytes,
                         std::size_t height) {
  assert(src != nullptr);
  Command c;
  c.kind = Command::Kind::Copy;
  c.src = Endpoint::dev(src->device());
  c.dst = Endpoint::host();
  c.bytes = row_bytes * height;
  if (functional()) {
    c.body = [=] {
      copy_2d(static_cast<std::byte*>(dst), dst_pitch, src->data() + src_off,
              src_pitch, row_bytes, height);
    };
  }
  enqueue(stream, std::move(c));
}

void Node::memcpy_2d_p2p(StreamId stream, Buffer* dst, std::size_t dst_off,
                         std::size_t dst_pitch, Buffer* src,
                         std::size_t src_off, std::size_t src_pitch,
                         std::size_t row_bytes, std::size_t height) {
  assert(src != nullptr && dst != nullptr);
  Command c;
  c.kind = Command::Kind::Copy;
  c.src = Endpoint::dev(src->device());
  c.dst = Endpoint::dev(dst->device());
  c.bytes = row_bytes * height;
  if (functional()) {
    c.body = [=] {
      copy_2d(dst->data() + dst_off, dst_pitch, src->data() + src_off,
              src_pitch, row_bytes, height);
    };
  }
  enqueue(stream, std::move(c));
}

void Node::memset_device(StreamId stream, Buffer* dst, std::size_t dst_off,
                         int value, std::size_t bytes) {
  assert(dst != nullptr && dst_off + bytes <= dst->size());
  Command c;
  c.kind = Command::Kind::Copy; // a memset occupies a copy engine
  c.src = Endpoint::dev(dst->device());
  c.dst = Endpoint::dev(dst->device());
  c.bytes = bytes;
  if (functional()) {
    c.body = [=] { std::memset(dst->data() + dst_off, value, bytes); };
  }
  enqueue(stream, std::move(c));
}

void Node::stage_host_traffic(StreamId stream, std::size_t bytes,
                              double seconds) {
  Command c;
  c.kind = Command::Kind::Copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c.dst = Endpoint::dev(streams_.at(static_cast<std::size_t>(stream)).device);
  }
  c.src = Endpoint::host();
  c.bytes = bytes;
  c.duration_override_s = seconds;
  enqueue(stream, std::move(c));
}

void Node::launch(StreamId stream, LaunchStats stats,
                  std::function<void()> body) {
  Command c;
  c.kind = Command::Kind::Kernel;
  c.stats = std::move(stats);
  if (functional()) {
    c.body = std::move(body);
  }
  enqueue(stream, std::move(c));
}

void Node::host_func(StreamId stream, std::function<void()> fn,
                     double cost_us) {
  Command c;
  c.kind = Command::Kind::HostFunc;
  c.host_cost_us = cost_us;
  if (functional()) {
    c.body = std::move(fn);
  }
  enqueue(stream, std::move(c));
}

void Node::record_event(EventId event, StreamId stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& ev = events_.at(static_cast<std::size_t>(event));
  Command c;
  c.kind = Command::Kind::RecordEvent;
  c.event = event;
  c.event_generation = ++ev.enqueued_generation;
  c.issue_floor_s = floor_or(host_time_s_);
  streams_.at(static_cast<std::size_t>(stream)).queue.push_back(std::move(c));
}

void Node::wait_event(StreamId stream, EventId event) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& ev = events_.at(static_cast<std::size_t>(event));
  if (ev.enqueued_generation == 0) {
    return; // CUDA semantics: waiting on a never-recorded event is a no-op
  }
  Command c;
  c.kind = Command::Kind::WaitEvent;
  c.event = event;
  c.event_generation = ev.enqueued_generation;
  c.issue_floor_s = floor_or(host_time_s_);
  streams_.at(static_cast<std::size_t>(stream)).queue.push_back(std::move(c));
}

void Node::wait_event_generation(StreamId stream, EventId event,
                                 std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.at(static_cast<std::size_t>(event)); // bounds check
  Command c;
  c.kind = Command::Kind::WaitEvent;
  c.event = event;
  c.event_generation = generation;
  c.issue_floor_s = floor_or(host_time_s_);
  streams_.at(static_cast<std::size_t>(stream)).queue.push_back(std::move(c));
}

double Node::command_duration(const Command& cmd, int device) const {
  switch (cmd.kind) {
  case Command::Kind::Kernel:
    return kernel_seconds(specs_[static_cast<std::size_t>(device)], cmd.stats);
  case Command::Kind::Copy:
    if (cmd.duration_override_s >= 0) {
      return cmd.duration_override_s;
    }
    // Device-local operations (memsets, intra-device copies) never touch
    // the interconnect: they run at global-memory bandwidth.
    if (!cmd.src.is_host() && !cmd.dst.is_host() &&
        cmd.src.device == cmd.dst.device && !cmd.host_staged) {
      const auto& spec = specs_[static_cast<std::size_t>(cmd.src.device)];
      return 3e-6 + static_cast<double>(cmd.bytes) /
                        (spec.mem_bandwidth_gbps * 1e9 / 2.0);
    }
    return copy_seconds(topo_, cmd.src, cmd.dst, cmd.bytes, cmd.host_staged);
  case Command::Kind::HostFunc:
    return cmd.host_cost_us * 1e-6;
  case Command::Kind::RecordEvent:
  case Command::Kind::WaitEvent:
    return 0.0;
  }
  return 0.0;
}

double Node::copy_setup_seconds(const Command& cmd) const {
  if (cmd.src.is_host() && cmd.dst.is_host()) {
    return 0.0;
  }
  if (!cmd.src.is_host() && !cmd.dst.is_host() &&
      cmd.src.device == cmd.dst.device && !cmd.host_staged) {
    return 3e-6;
  }
  // A staged transfer's first hop (device -> host) sets the pipelining
  // window; the rest of its duration genuinely occupies both host links.
  if (cmd.host_staged) {
    return topo_.latency_us(cmd.src, Endpoint::host()) * 1e-6;
  }
  return topo_.latency_us(cmd.src, cmd.dst) * 1e-6;
}

double Node::link_free_use(const Topology::LinkUse& use) const {
  double free_s = 0.0;
  if (use.uplink_bus >= 0) {
    free_s = std::max(
        free_s, links_[static_cast<std::size_t>(use.uplink_bus)].uplink_free_s);
  }
  if (use.downlink_bus >= 0) {
    free_s = std::max(free_s, links_[static_cast<std::size_t>(
                                         use.downlink_bus)].downlink_free_s);
  }
  if (use.socket_node >= 0) {
    free_s = std::max(free_s,
                      links_[static_cast<std::size_t>(use.socket_node)]
                          .socket_free_s[use.socket_dir]);
  }
  if (use.nic_send_node >= 0) {
    free_s = std::max(
        free_s,
        links_[static_cast<std::size_t>(use.nic_send_node)].nic_send_free_s);
  }
  if (use.nic_recv_node >= 0) {
    free_s = std::max(
        free_s,
        links_[static_cast<std::size_t>(use.nic_recv_node)].nic_recv_free_s);
  }
  return free_s;
}

void Node::reserve_use(const Topology::LinkUse& use, double until,
                       double duration) {
  if (use.uplink_bus >= 0) {
    auto& free_s = links_[static_cast<std::size_t>(use.uplink_bus)].uplink_free_s;
    free_s = std::max(free_s, until);
    stats_.host_uplink_busy_seconds += duration;
  }
  if (use.downlink_bus >= 0) {
    auto& free_s =
        links_[static_cast<std::size_t>(use.downlink_bus)].downlink_free_s;
    free_s = std::max(free_s, until);
    stats_.host_downlink_busy_seconds += duration;
  }
  if (use.socket_node >= 0) {
    auto& free_s = links_[static_cast<std::size_t>(use.socket_node)]
                       .socket_free_s[use.socket_dir];
    free_s = std::max(free_s, until);
    stats_.socket_link_busy_seconds += duration;
  }
  if (use.nic_send_node >= 0) {
    auto& free_s =
        links_[static_cast<std::size_t>(use.nic_send_node)].nic_send_free_s;
    free_s = std::max(free_s, until);
    stats_.nic_send_busy_seconds += duration;
  }
  if (use.nic_recv_node >= 0) {
    auto& free_s =
        links_[static_cast<std::size_t>(use.nic_recv_node)].nic_recv_free_s;
    free_s = std::max(free_s, until);
    stats_.nic_recv_busy_seconds += duration;
  }
}

int Node::copy_legs_for(const Command& cmd, Topology::CopyLeg legs[3]) const {
  if (cmd.kind != Command::Kind::Copy || cmd.duration_override_s >= 0) {
    return 0; // an override replaces the whole cost model, legs included
  }
  return topo_.copy_legs(cmd.src, cmd.dst, cmd.bytes, cmd.host_staged, legs);
}

double Node::link_free_time(const Command& cmd) const {
  Topology::CopyLeg legs[3];
  const int nlegs = copy_legs_for(cmd, legs);
  if (nlegs > 0) {
    // A leg's resource must be free by the time the leg starts, not by the
    // time the transfer starts: earlier legs of this transfer cover the gap.
    double start_s = 0.0;
    for (int i = 0; i < nlegs; ++i) {
      start_s = std::max(start_s, link_free_use(legs[i].use) - legs[i].offset_s);
    }
    return start_s;
  }
  return link_free_use(topo_.link_use(cmd.src, cmd.dst, cmd.host_staged));
}

void Node::reserve_links(const Command& cmd, double completion,
                         double duration) {
  Topology::CopyLeg legs[3];
  const int nlegs = copy_legs_for(cmd, legs);
  if (nlegs > 0) {
    const double start = completion - duration;
    for (int i = 0; i < nlegs; ++i) {
      reserve_use(legs[i].use, start + legs[i].offset_s + legs[i].duration_s,
                  legs[i].duration_s);
    }
    return;
  }
  reserve_use(topo_.link_use(cmd.src, cmd.dst, cmd.host_staged), completion,
              duration);
}

void Node::account(const Command& cmd, int device, double duration) {
  switch (cmd.kind) {
  case Command::Kind::Kernel:
    ++stats_.kernels_launched;
    stats_.kernel_seconds += duration;
    stats_.device_compute_seconds[static_cast<std::size_t>(device)] += duration;
    break;
  case Command::Kind::Copy: {
    ++stats_.copies;
    stats_.copy_seconds += duration;
    const std::size_t si =
        cmd.src.is_host() ? 0 : static_cast<std::size_t>(cmd.src.device) + 1;
    const std::size_t di =
        cmd.dst.is_host() ? 0 : static_cast<std::size_t>(cmd.dst.device) + 1;
    stats_.bytes_between[si][di] += cmd.bytes;
    switch (topo_.link_class(cmd.src, cmd.dst, cmd.host_staged)) {
    case LinkClass::IntraDevice:
      break; // never leaves the device: no interconnect traffic
    case LinkClass::PeerSameBus:
      stats_.bytes_p2p += cmd.bytes;
      stats_.bytes_p2p_same_bus += cmd.bytes;
      break;
    case LinkClass::PeerCrossBus:
      stats_.bytes_p2p += cmd.bytes;
      stats_.bytes_p2p_cross_bus += cmd.bytes;
      break;
    case LinkClass::HostToDevice:
      stats_.bytes_h2d += cmd.bytes;
      break;
    case LinkClass::DeviceToHost:
      stats_.bytes_d2h += cmd.bytes;
      break;
    case LinkClass::HostStaged:
      stats_.bytes_host_staged += cmd.bytes;
      break;
    case LinkClass::NetworkSend:
    case LinkClass::NetworkRecv:
    case LinkClass::NetworkStaged:
      stats_.bytes_network += cmd.bytes;
      break;
    }
    break;
  }
  case Command::Kind::HostFunc:
    ++stats_.host_funcs;
    break;
  default:
    break;
  }
}

void Node::drain_locked() {
  // Deterministic list scheduler: repeatedly pick, among all stream heads
  // whose dependencies are satisfied, the command with the earliest start
  // time (ties broken by stream id), execute it functionally and advance the
  // simulated clock state.
  while (true) {
    int best_stream = -1;
    double best_start = std::numeric_limits<double>::infinity();
    int best_engine = -1; // copy engine index, or -1

    for (std::size_t s = 0; s < streams_.size(); ++s) {
      auto& st = streams_[s];
      if (st.queue.empty()) {
        continue;
      }
      const Command& cmd = st.queue.front();
      double ready = std::max(st.last_completion_s, cmd.issue_floor_s);
      int engine = -1;

      if (cmd.kind == Command::Kind::WaitEvent) {
        const auto& ev = events_[static_cast<std::size_t>(cmd.event)];
        if (ev.processed_generation < cmd.event_generation) {
          continue; // dependency not yet resolved
        }
        ready = std::max(
            ready, ev.completion_s[static_cast<std::size_t>(
                       cmd.event_generation - 1)]);
      } else if (cmd.kind == Command::Kind::Kernel) {
        const auto& eng = engines_[static_cast<std::size_t>(st.device)];
        ready = std::max(ready, eng.compute_free_s);
      } else if (cmd.kind == Command::Kind::Copy) {
        const auto& eng = engines_[static_cast<std::size_t>(st.device)];
        engine = eng.copy_free_s[0] <= eng.copy_free_s[1] ? 0 : 1;
        ready = std::max(ready, eng.copy_free_s[engine]);
        // Transfers sharing a physical link (host uplink/downlink, the
        // inter-socket hop) serialize on it; in-pair P2P stays engine-bound.
        // DMA setup latency pipelines with the predecessor's data phase (the
        // bus is throughput-bound, not command-bound), so a queued copy may
        // begin its setup while the link drains.
        ready = std::max(ready, link_free_time(cmd) - copy_setup_seconds(cmd));
      }

      // Strict '<' with ascending iteration keeps the lowest stream id on
      // ties, making the schedule deterministic.
      if (ready < best_start) {
        best_start = ready;
        best_stream = static_cast<int>(s);
        best_engine = engine;
      }
    }

    if (best_stream < 0) {
      // Either fully drained or deadlocked on unrecorded events.
      bool pending = false;
      std::string diag;
      for (std::size_t s = 0; s < streams_.size(); ++s) {
        if (!streams_[s].queue.empty()) {
          pending = true;
          diag += " stream " + std::to_string(s) + " (device " +
                  std::to_string(streams_[s].device) + ", " +
                  std::to_string(streams_[s].queue.size()) + " cmds)";
        }
      }
      // Quiesce the asynchronous body backend on BOTH exits: after a drain
      // every functional effect must be host-visible, and a deadlock report
      // must not leave bodies running behind the caller's back.
      if (functional_exec_ != nullptr) {
        functional_exec_->join_all();
      }
      if (pending) {
        throw std::runtime_error(
            "sim::Node deadlock: streams blocked on unprocessed events:" +
            diag);
      }
      return;
    }

    auto& st = streams_[static_cast<std::size_t>(best_stream)];
    Command cmd = std::move(st.queue.front());
    st.queue.pop_front();

    const double duration = command_duration(cmd, st.device);
    const double completion = best_start + duration;

    if (cmd.kind == Command::Kind::Kernel) {
      engines_[static_cast<std::size_t>(st.device)].compute_free_s = completion;
    } else if (cmd.kind == Command::Kind::Copy) {
      engines_[static_cast<std::size_t>(st.device)]
          .copy_free_s[best_engine] = completion;
      reserve_links(cmd, completion, duration);
    } else if (cmd.kind == Command::Kind::RecordEvent) {
      auto& ev = events_[static_cast<std::size_t>(cmd.event)];
      ev.completion_s.resize(
          std::max<std::size_t>(ev.completion_s.size(),
                                static_cast<std::size_t>(cmd.event_generation)),
          0.0);
      ev.completion_s[static_cast<std::size_t>(cmd.event_generation - 1)] =
          completion;
      ev.processed_generation =
          std::max(ev.processed_generation, cmd.event_generation);
    }
    st.last_completion_s = completion;
    host_time_s_ = std::max(host_time_s_, completion);

    if (trace_enabled_ || exec_observer_) {
      TraceEvent te;
      te.stream = best_stream;
      te.device = st.device;
      switch (cmd.kind) {
      case Command::Kind::Kernel: te.kind = 'K'; te.label = cmd.stats.label; break;
      case Command::Kind::Copy:
        te.kind = 'C';
        te.label = (cmd.src.is_host() ? std::string("H") : std::to_string(cmd.src.device)) +
                   "->" + (cmd.dst.is_host() ? std::string("H") : std::to_string(cmd.dst.device)) +
                   " " + std::to_string(cmd.bytes) + "B";
        break;
      case Command::Kind::HostFunc: te.kind = 'H'; break;
      case Command::Kind::RecordEvent: te.kind = 'R'; te.label = "ev" + std::to_string(cmd.event); break;
      case Command::Kind::WaitEvent: te.kind = 'W'; te.label = "ev" + std::to_string(cmd.event); break;
      }
      te.start = best_start;
      te.end = completion;
      if (exec_observer_) {
        exec_observer_(te);
      }
      if (trace_enabled_) {
        trace_.push_back(std::move(te));
      }
    }

    account(cmd, st.device, duration);
    if (cmd.body) {
      if (functional_exec_ != nullptr) {
        if (cmd.kind == Command::Kind::Kernel) {
          // Defer the kernel sweep so the event loop keeps scheduling while
          // it runs. Joining the device first keeps same-device kernels
          // strictly ordered (at most one pending body per device); kernels
          // only touch their own device's buffers, so cross-device overlap
          // is safe.
          functional_exec_->join_device(st.device);
          functional_exec_->run_kernel_body(st.device, std::move(cmd.body));
          continue;
        }
        // Copies, memsets and host functions read/write device and host
        // memory across devices: every pending kernel body must land first.
        functional_exec_->join_all();
      }
      cmd.body(); // Functional mode: run the kernel/copy/host function
    }
  }
}

void Node::synchronize() {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_locked();
}

void Node::synchronize_stream(StreamId stream) {
  (void)stream;
  synchronize();
}

double Node::host_now_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return host_time_s_;
}

double Node::now_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return host_time_s_ * 1e3;
}

void Node::advance_host_us(double us) {
  std::lock_guard<std::mutex> lock(mutex_);
  host_time_s_ += us * 1e-6;
}

void Node::enable_trace(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_enabled_ = on;
}

void Node::clear_trace() {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.clear();
}

void Node::set_exec_observer(std::function<void(const TraceEvent&)> observer) {
  std::lock_guard<std::mutex> lock(mutex_);
  exec_observer_ = std::move(observer);
}

void Node::set_functional_executor(FunctionalExecutor* executor) {
  std::lock_guard<std::mutex> lock(mutex_);
  functional_exec_ = functional() ? executor : nullptr;
}

void Node::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = SimStats{};
  stats_.bytes_between.assign(
      specs_.size() + 1, std::vector<std::uint64_t>(specs_.size() + 1, 0));
  stats_.device_compute_seconds.assign(specs_.size(), 0.0);
}

const char* to_string(Arch arch) {
  switch (arch) {
  case Arch::Kepler:
    return "Kepler";
  case Arch::Maxwell:
    return "Maxwell";
  }
  return "?";
}

} // namespace sim
