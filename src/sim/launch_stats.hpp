// Cost descriptor attached to every simulated kernel launch.
//
// In MAPS-Multi the memory access pattern specification carries everything
// the framework needs for partitioning; in this reproduction the same
// specification additionally yields the kernel's LaunchStats, from which the
// cost model derives simulated execution time (see cost_model.hpp).
#pragma once

#include <cstdint>
#include <string>

namespace sim {

struct LaunchStats {
  std::uint64_t blocks = 1;            ///< Thread-blocks in this launch.
  std::uint64_t threads_per_block = 1; ///< Threads per block.

  std::uint64_t flops = 0; ///< Useful floating-point/integer ops.
  std::uint64_t global_bytes_read = 0;
  std::uint64_t global_bytes_written = 0;
  std::uint64_t shared_ops = 0;      ///< Shared-memory accesses.
  std::uint64_t global_atomics = 0;  ///< Atomic ops on global memory.
  std::uint64_t shared_atomics = 0;  ///< Atomic ops on shared memory.
  /// Fixed per-thread instruction overhead (index math, loop control),
  /// counted in scalar instructions. ILP reduces this by running fewer,
  /// fatter threads (paper §4.5.1).
  std::uint64_t instr_overhead = 0;

  /// FLOP efficiency override; 0 selects DeviceSpec::generic_efficiency.
  /// Tuned routines (e.g. simblas GEMM) set their calibrated value.
  double flop_efficiency = 0.0;
  /// Additional fixed cost in microseconds (routine-specific setup).
  double extra_us = 0.0;

  std::string label; ///< For statistics and debugging.

  /// Accumulates another launch's work into this descriptor (used when one
  /// simulated launch stands for several fused stages).
  LaunchStats& operator+=(const LaunchStats& o) {
    blocks += o.blocks;
    flops += o.flops;
    global_bytes_read += o.global_bytes_read;
    global_bytes_written += o.global_bytes_written;
    shared_ops += o.shared_ops;
    global_atomics += o.global_atomics;
    shared_atomics += o.shared_atomics;
    instr_overhead += o.instr_overhead;
    extra_us += o.extra_us;
    return *this;
  }
};

} // namespace sim
