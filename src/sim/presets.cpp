#include "sim/presets.hpp"

namespace sim {

// Calibration notes
// -----------------
// Physical configuration comes from the paper's Table 3. Throughput constants
// are fit against the paper's published single-GPU measurements:
//
//  * gemm_efficiency: Table 4 gives native CUBLAS times for a chained
//    8192^3 SGEMM (2*8192^3 = 1.0995e12 flop):
//      GTX 780      365.21 ms -> 3.011 TFLOP/s / 4.147 peak = 0.726
//      Titan Black  338.65 ms -> 3.247 TFLOP/s / 5.645 peak = 0.575
//      GTX 980      245.31 ms -> 4.482 TFLOP/s / 4.981 peak = 0.900
//
//  * global_atomic_ops_per_s: §5.3 gives naive (global-atomic) histogram
//    runtimes on an 8192^2 image (67.109e6 atomics):
//      GTX 780      6.09 ms  -> 1.102e10 ops/s
//      Titan Black  6.41 ms  -> 1.047e10 ops/s
//      GTX 980      30.92 ms -> 2.170e9 ops/s   (Maxwell global atomics are
//                                                the paper's §5.3 outlier)
//
//  * shared_atomic_ops_per_s / shared_ops_per_s / instr_ops_per_s: chosen so
//    that (a) MAPS-Multi's aggregated histogram lands in the same order of
//    magnitude as CUB on every device, beating CUB on the GTX 780 only
//    (Fig 8), and (b) the Game of Life ratios of Fig 7 hold: naive beats
//    non-ILP MAPS by ~20-50% and ILP-enabled MAPS beats naive by ~2.42x.
//    These are inputs to the model, not predictions; EXPERIMENTS.md records
//    the resulting measurements next to the paper's.

DeviceSpec gtx780() {
  DeviceSpec s;
  s.name = "GTX 780";
  s.arch = Arch::Kepler;
  s.sm_count = 12;
  s.cores_per_sm = 192;
  s.clock_ghz = 0.900;
  s.global_mem_bytes = 3ull << 30;
  s.mem_bandwidth_gbps = 288.0;
  s.gemm_efficiency = 0.726;
  s.generic_efficiency = 0.45;
  s.global_atomic_ops_per_s = 1.102e10;
  s.shared_atomic_ops_per_s = 2.9e10;
  s.shared_ops_per_s = 1.00e11;
  s.instr_ops_per_s = 1.6e12;
  s.kernel_launch_us = 7.0;
  s.max_blocks_per_sm = 16;
  return s;
}

DeviceSpec titan_black() {
  DeviceSpec s;
  s.name = "Titan Black";
  s.arch = Arch::Kepler;
  s.sm_count = 15;
  s.cores_per_sm = 192;
  s.clock_ghz = 0.980;
  s.global_mem_bytes = 6ull << 30;
  s.mem_bandwidth_gbps = 336.0;
  s.gemm_efficiency = 0.575;
  s.generic_efficiency = 0.45;
  s.global_atomic_ops_per_s = 1.047e10;
  s.shared_atomic_ops_per_s = 3.1e10;
  s.shared_ops_per_s = 1.05e11;
  s.instr_ops_per_s = 1.9e12;
  s.kernel_launch_us = 7.0;
  s.max_blocks_per_sm = 16;
  return s;
}

DeviceSpec gtx980() {
  DeviceSpec s;
  s.name = "GTX 980";
  s.arch = Arch::Maxwell;
  s.sm_count = 16;
  s.cores_per_sm = 128;
  s.clock_ghz = 1.216;
  s.global_mem_bytes = 4ull << 30;
  s.mem_bandwidth_gbps = 224.0;
  s.gemm_efficiency = 0.900;
  s.generic_efficiency = 0.50;
  s.global_atomic_ops_per_s = 2.170e9;
  s.shared_atomic_ops_per_s = 2.5e10;
  s.shared_ops_per_s = 7.5e10;
  s.instr_ops_per_s = 2.1e12;
  s.kernel_launch_us = 6.0;
  s.max_blocks_per_sm = 32;
  return s;
}

std::vector<DeviceSpec> paper_device_models() {
  return {gtx780(), titan_black(), gtx980()};
}

std::vector<DeviceSpec> homogeneous_node(const DeviceSpec& spec, int count) {
  return std::vector<DeviceSpec>(static_cast<std::size_t>(count), spec);
}

} // namespace sim
