#include "simblas/simblas.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace simblas {

namespace {

/// LaunchStats for a tuned dense GEMM (flops dominate; efficiency per Table 4).
sim::LaunchStats gemm_stats(const sim::DeviceSpec& spec, std::size_t m,
                            std::size_t n, std::size_t k) {
  sim::LaunchStats st;
  st.label = "simblas::sgemm";
  st.blocks = std::max<std::uint64_t>(1, (m / 64) * (n / 64));
  st.threads_per_block = 256;
  st.flops = 2ull * m * n * k;
  st.global_bytes_read =
      (m * k + k * n) * sizeof(float); // tiled reuse: each operand ~once
  st.global_bytes_written = m * n * sizeof(float);
  st.flop_efficiency = spec.gemm_efficiency;
  return st;
}

sim::LaunchStats streaming_stats(const char* label, std::size_t reads,
                                 std::size_t writes, std::size_t flops,
                                 std::size_t n) {
  sim::LaunchStats st;
  st.label = label;
  st.blocks = std::max<std::uint64_t>(1, n / 256);
  st.threads_per_block = 256;
  st.flops = flops;
  st.global_bytes_read = reads;
  st.global_bytes_written = writes;
  return st;
}

} // namespace

void sgemm(sim::Node& node, int device, sim::StreamId stream, std::size_t m,
           std::size_t n, std::size_t k, float alpha, const float* a,
           const float* b, float beta, float* c) {
  node.launch(stream, gemm_stats(node.spec(device), m, n, k),
              [=] {
                // Cache-friendly i-k-j loop.
                for (std::size_t i = 0; i < m; ++i) {
                  float* ci = c + i * n;
                  if (beta == 0.0f) {
                    std::memset(ci, 0, n * sizeof(float));
                  } else if (beta != 1.0f) {
                    for (std::size_t j = 0; j < n; ++j) {
                      ci[j] *= beta;
                    }
                  }
                  for (std::size_t p = 0; p < k; ++p) {
                    const float aip = alpha * a[i * k + p];
                    if (aip == 0.0f) {
                      continue;
                    }
                    const float* bp = b + p * n;
                    for (std::size_t j = 0; j < n; ++j) {
                      ci[j] += aip * bp[j];
                    }
                  }
                }
              });
}

void saxpy(sim::Node& node, int device, sim::StreamId stream, std::size_t n,
           float alpha, const float* x, float* y) {
  (void)device;
  node.launch(stream,
              streaming_stats("simblas::saxpy", 2 * n * sizeof(float),
                              n * sizeof(float), 2 * n, n),
              [=] {
                for (std::size_t i = 0; i < n; ++i) {
                  y[i] = alpha * x[i] + y[i];
                }
              });
}

void shad(sim::Node& node, int device, sim::StreamId stream, std::size_t n,
          const float* a, const float* b, float* out) {
  (void)device;
  node.launch(stream,
              streaming_stats("simblas::shad", 2 * n * sizeof(float),
                              n * sizeof(float), n, n),
              [=] {
                for (std::size_t i = 0; i < n; ++i) {
                  out[i] = a[i] * b[i];
                }
              });
}

void sdiv(sim::Node& node, int device, sim::StreamId stream, std::size_t n,
          const float* a, const float* b, float* out, float eps) {
  (void)device;
  node.launch(stream,
              streaming_stats("simblas::sdiv", 2 * n * sizeof(float),
                              n * sizeof(float), n, n),
              [=] {
                for (std::size_t i = 0; i < n; ++i) {
                  out[i] = a[i] / std::max(b[i], eps);
                }
              });
}

void scolsum(sim::Node& node, int device, sim::StreamId stream, std::size_t m,
             std::size_t n, const float* a, float* out) {
  (void)device;
  node.launch(stream,
              streaming_stats("simblas::scolsum", m * n * sizeof(float),
                              n * sizeof(float), m * n, m * n),
              [=] {
                for (std::size_t i = 0; i < m; ++i) {
                  for (std::size_t j = 0; j < n; ++j) {
                    out[j] += a[i * n + j];
                  }
                }
              });
}

bool GemmRoutine(maps::multi::RoutineArgs& args) {
  const float alpha = args.constant<float>(0);
  const float beta = args.constant<float>(1);
  const auto& seg_a = args.container_segments[0];
  const auto& seg_b = args.container_segments[1];
  const auto& seg_c = args.container_segments[2];
  const std::size_t m = seg_c.m_dimensions[0];
  const std::size_t n = seg_c.m_dimensions[1];
  const std::size_t k = seg_a.m_dimensions[1];
  if (seg_b.m_dimensions[0] != k || seg_b.m_dimensions[1] != n ||
      seg_a.m_dimensions[0] != m) {
    return false;
  }
  sgemm(*args.node, args.sim_device, args.stream, m, n, k, alpha,
        args.parameters[0].as<float>(), args.parameters[1].as<float>(), beta,
        args.parameters[2].as<float>());
  return true;
}

bool SaxpyRoutine(maps::multi::RoutineArgs& args) {
  const float alpha = args.constant<float>(0);
  const std::size_t n = args.container_segments[0].m_dimensions[0];
  saxpy(*args.node, args.sim_device, args.stream, n, alpha,
        args.parameters[0].as<float>(), args.parameters[1].as<float>());
  return true;
}

maps::multi::TaskHandle Gemm(maps::multi::Scheduler& sched,
                             maps::multi::Matrix<float>& a,
                             maps::multi::Matrix<float>& b,
                             maps::multi::Matrix<float>& c, float alpha,
                             float beta) {
  using namespace maps::multi;
  if (a.height() != c.height() || a.width() != b.height() ||
      b.width() != c.width()) {
    throw std::invalid_argument("simblas::Gemm: dimension mismatch");
  }
  return sched.InvokeUnmodified(GemmRoutine, nullptr, Work{c.height(), 1},
                                Block2D<float>(a), Block2DTransposed<float>(b),
                                StructuredInjective<float, 2>(c),
                                Constant<float>(alpha), Constant<float>(beta));
}

// --- XT baseline ---------------------------------------------------------------

struct XtHandle::Tile {
  sim::Buffer* a = nullptr;
  sim::Buffer* b = nullptr;
  sim::Buffer* c = nullptr;
  std::size_t m = 0, n = 0, k = 0;
};

XtHandle::XtHandle(sim::Node& node, std::vector<int> devices)
    : node_(node), devices_(std::move(devices)) {
  if (devices_.empty()) {
    throw std::invalid_argument("XtHandle: no devices");
  }
  for (int d : devices_) {
    streams_.push_back(node_.create_stream(d));
  }
  tiles_.resize(devices_.size());
}

XtHandle::~XtHandle() {
  for (auto& t : tiles_) {
    node_.free_device(t.a);
    node_.free_device(t.b);
    node_.free_device(t.c);
  }
}

void XtHandle::ensure_tiles(std::size_t m, std::size_t n, std::size_t k) {
  const std::size_t g = devices_.size();
  for (std::size_t i = 0; i < g; ++i) {
    const std::size_t rows = m / g + (i < m % g ? 1 : 0);
    Tile& t = tiles_[i];
    if (t.m == rows && t.n == n && t.k == k) {
      continue;
    }
    node_.free_device(t.a);
    node_.free_device(t.b);
    node_.free_device(t.c);
    t.m = rows;
    t.n = n;
    t.k = k;
    t.a = node_.malloc_device(devices_[i], std::max<std::size_t>(1, rows * k) *
                                               sizeof(float));
    t.b = node_.malloc_device(devices_[i], k * n * sizeof(float));
    t.c = node_.malloc_device(devices_[i], std::max<std::size_t>(1, rows * n) *
                                               sizeof(float));
  }
}

void XtHandle::sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
                     const float* host_a, const float* host_b, float beta,
                     float* host_c) {
  ensure_tiles(m, n, k);
  // Host-based API overhead per call (tiling bookkeeping, pinned staging).
  node_.advance_host_us(node_.topology().host_staging_software_us);

  // CUBLAS-XT streams the computation in tiles through pinned host staging
  // buffers: every C tile re-reads its A row-panel and B column-panel from
  // HOST memory (no cross-tile or cross-call residency). Staging bandwidth
  // is limited by the pinned-buffer pipeline per device and by aggregate
  // host-memory bandwidth when several devices stage at once. These
  // constants reproduce Table 4's ~4-5x penalty; see EXPERIMENTS.md.
  constexpr std::size_t kTile = 512;
  constexpr double kPinnedGBps = 8.0;   // per-device pinned staging pipeline
  constexpr double kHostAggGBps = 22.0; // host memory serving all devices
  const double bw_eff =
      std::min(kPinnedGBps,
               kHostAggGBps / static_cast<double>(devices_.size())) *
      1e9;

  std::size_t row0 = 0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    Tile& t = tiles_[i];
    if (t.m == 0) {
      continue;
    }
    const sim::StreamId s = streams_[i];
    // Tile-panel re-streaming cost: (tiles of C) x (A panel + B panel).
    const std::size_t c_tiles =
        ((t.m + kTile - 1) / kTile) * ((n + kTile - 1) / kTile);
    const std::size_t panel_bytes = (k * kTile + kTile * k) * sizeof(float);
    const std::size_t traffic = c_tiles * panel_bytes;
    node_.stage_host_traffic(s, traffic,
                             static_cast<double>(traffic) / bw_eff);
    // The actual data movement (kept exact for functional correctness).
    node_.memcpy_h2d(s, t.a, 0, host_a + row0 * k, t.m * k * sizeof(float));
    node_.memcpy_h2d(s, t.b, 0, host_b, k * n * sizeof(float));
    if (beta != 0.0f) {
      node_.memcpy_h2d(s, t.c, 0, host_c + row0 * n, t.m * n * sizeof(float));
    }
    simblas::sgemm(node_, devices_[i], s, t.m, n, k, alpha,
                   t.a->has_backing() ? t.a->as<float>() : nullptr,
                   t.b->has_backing() ? t.b->as<float>() : nullptr, beta,
                   t.c->has_backing() ? t.c->as<float>() : nullptr);
    node_.memcpy_d2h(s, host_c + row0 * n, t.c, 0, t.m * n * sizeof(float));
    row0 += t.m;
  }
  // The host-based API is blocking: the caller's host buffers are valid on
  // return, so chained calls cannot pipeline (the §5.4 scaling killer).
  node_.synchronize();
}

void XtHandle::synchronize() { node_.synchronize(); }

} // namespace simblas
