// simblas — the reproduction's CUBLAS stand-in (DESIGN.md §2).
//
// Provides single-GPU dense BLAS calls that enqueue simulated kernels with
// calibrated costs (GEMM efficiency from the paper's Table 4), plus
// MAPS-Multi wrapper routines in the §4.6 style so unmodified BLAS runs on
// multiple GPUs with automatically inferred exchanges.
//
// All matrices are row-major. Functional bodies compute real results on the
// CPU (used by tests and examples); in TimingOnly mode only costs accrue.
#pragma once

#include <cstddef>

#include "sim/node.hpp"

#include "multi/maps_multi.hpp"

namespace simblas {

// --- Single-GPU enqueue-style API (cuBLAS-like) -----------------------------

/// C[m,n] = alpha * A[m,k] x B[k,n] + beta * C[m,n]; enqueued on `stream` of
/// `device`. Pointers are device-buffer backing (may be null in TimingOnly).
void sgemm(sim::Node& node, int device, sim::StreamId stream, std::size_t m,
           std::size_t n, std::size_t k, float alpha, const float* a,
           const float* b, float beta, float* c);

/// y = alpha * x + y over n elements.
void saxpy(sim::Node& node, int device, sim::StreamId stream, std::size_t n,
           float alpha, const float* x, float* y);

/// out[i] = a[i] * b[i] (Hadamard product) over n elements.
void shad(sim::Node& node, int device, sim::StreamId stream, std::size_t n,
          const float* a, const float* b, float* out);

/// out[i] = a[i] / max(b[i], eps) over n elements.
void sdiv(sim::Node& node, int device, sim::StreamId stream, std::size_t n,
          const float* a, const float* b, float* out, float eps = 1e-9f);

/// Column sums of A[m,n] into out[n] (accumulates: out += colsum).
void scolsum(sim::Node& node, int device, sim::StreamId stream, std::size_t m,
             std::size_t n, const float* a, float* out);

// --- MAPS-Multi unmodified-routine wrappers (§4.6) ---------------------------

/// GEMM wrapper: parameters = { Block2D(A), Block2DTransposed(B),
/// StructuredInjective(C) }; constants = { alpha, beta }. Work = C's rows.
bool GemmRoutine(maps::multi::RoutineArgs& args);

/// SAXPY wrapper (Fig 5): parameters = { Block2D(x), Block2D(y),
/// StructuredInjective(y) }; constants = { alpha }.
bool SaxpyRoutine(maps::multi::RoutineArgs& args);

/// Convenience: schedules C = A x B on all devices of `sched`.
maps::multi::TaskHandle Gemm(maps::multi::Scheduler& sched,
                             maps::multi::Matrix<float>& a,
                             maps::multi::Matrix<float>& b,
                             maps::multi::Matrix<float>& c,
                             float alpha = 1.0f, float beta = 0.0f);

// --- CUBLAS-XT-style baseline (§5.4) ------------------------------------------

/// NVIDIA's multi-GPU CUBLAS interface is host-based: every call takes HOST
/// pointers and internally stages tiles host<->device, which is what ruins
/// chained-kernel performance in the paper's Fig 9 / Table 4. XtHandle
/// reproduces that behaviour: per call, each device receives its A band and
/// the full B, computes, and returns its C band to the host.
class XtHandle {
public:
  XtHandle(sim::Node& node, std::vector<int> devices);
  ~XtHandle();
  XtHandle(const XtHandle&) = delete;
  XtHandle& operator=(const XtHandle&) = delete;

  /// Host-based GEMM: host_a/host_b/host_c are HOST buffers.
  void sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* host_a, const float* host_b, float beta,
             float* host_c);

  void synchronize();

private:
  sim::Node& node_;
  std::vector<int> devices_;
  std::vector<sim::StreamId> streams_;
  struct Tile;
  std::vector<Tile> tiles_;
  void ensure_tiles(std::size_t m, std::size_t n, std::size_t k);
};

} // namespace simblas
