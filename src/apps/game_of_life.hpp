// Game of Life application (the paper's running example, Fig 2-3, §5.1-5.2).
//
// Three implementation schemes, matching Fig 7:
//  * naive         — direct global-memory reads per neighbor, no shared
//                    staging (an unmodified routine over MAPS-Multi);
//  * MAPS          — pattern-based kernel with shared-memory staging, no ILP;
//  * MAPS + ILP    — the same kernel with 8 elements (4 columns, 2 rows) per
//                    thread (§5.2).
//
// All variants use the Window(2D, r=1, WRAP) input and Structured Injective
// output patterns, so boundary exchanges across devices are inferred
// automatically in every scheme.
#pragma once

#include <cstddef>
#include <vector>

#include "multi/maps_multi.hpp"

namespace apps::gol {

/// One Game of Life tick as a MAPS-Multi kernel (Fig 2b).
template <int ILPX, int ILPY> struct MapsTick {
  using Win = maps::multi::Window2D<int, 1, maps::WRAP, ILPX, ILPY>;
  using Out = maps::multi::StructuredInjective<int, 2, ILPX, ILPY>;

  void operator()(const maps::ThreadContext&, Win& current_gen,
                  Out& next_gen) const {
    MAPS_FOREACH(cell, next_gen) {
      int live_neighbors = 0;
      MAPS_FOREACH_ALIGNED(n, current_gen, cell) {
        if (!n.is_center()) {
          live_neighbors += *n;
        }
      }
      const int is_live = current_gen.at(cell, 0, 0);
      *cell = (live_neighbors == 3 || (is_live && live_neighbors == 2)) ? 1 : 0;
    }
    next_gen.commit();
  }
};

/// Cost hints for the MAPS Game of Life kernel (integer rule evaluation).
maps::multi::CostHints maps_cost_hints();

/// Naive Game of Life kernel: per-cell global reads of all 8 neighbors with
/// imperfect coalescing, no shared staging (Fig 7's baseline). Routine
/// parameters: { Window2D(current, r=1, WRAP), StructuredInjective(next) }.
bool NaiveTickRoutine(maps::multi::RoutineArgs& args);

/// Which scheme a driver run uses.
enum class Scheme { Naive, Maps, MapsIlp };

/// Drives `iterations` double-buffered ticks over MAPS-Multi and gathers the
/// final generation into the buffer bound to A or B.
/// Returns simulated milliseconds for the whole run.
double run(maps::multi::Scheduler& sched, maps::multi::Matrix<int>& a,
           maps::multi::Matrix<int>& b, int iterations, Scheme scheme);

/// Sequential CPU reference tick (toroidal world).
void reference_tick(std::vector<int>& grid, std::size_t width,
                    std::size_t height);

} // namespace apps::gol
