#include "apps/game_of_life.hpp"

namespace apps::gol {

using namespace maps::multi;

CostHints maps_cost_hints() {
  CostHints h;
  h.flops_per_elem = 10.0;    // neighbor adds + rule compare
  h.instr_per_thread = 14.0;  // index math, loop control
  return h;
}

bool NaiveTickRoutine(RoutineArgs& args) {
  const DeviceView in = args.parameters[0].view;
  const DeviceView out = args.parameters[1].view;
  const std::size_t rows = args.container_segments[1].m_dimensions[0];
  const std::size_t width = args.container_segments[1].m_dimensions[1];
  const std::size_t row0 = args.container_segments[1].global_row_begin;

  sim::LaunchStats st;
  st.label = "gol::naive";
  st.blocks = std::max<std::uint64_t>(1, rows * width / 256);
  st.threads_per_block = 256;
  const std::uint64_t elems = rows * width;
  // Per cell: ~5 read transactions (8 neighbors + self, partially served
  // by cache) + one coalesced write. Calibrated against Fig 7's ratios; see
  // presets.cpp.
  st.global_bytes_read = static_cast<std::uint64_t>(elems * 5.0 * 4.0);
  st.global_bytes_written = elems * 4;
  st.flops = elems * 10;
  st.instr_overhead = elems * 6;

  args.node->launch(args.stream, st, [in, out, rows, width, row0] {
    const long w = static_cast<long>(width);
    for (std::size_t r = 0; r < rows; ++r) {
      const long gy = static_cast<long>(row0 + r);
      int* dst = reinterpret_cast<int*>(
          out.base + static_cast<std::size_t>(gy - out.origin) * out.pitch);
      for (long x = 0; x < w; ++x) {
        int live = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          const long ly = gy + dy - in.origin;
          const int* src_row = reinterpret_cast<const int*>(
              in.base + static_cast<std::size_t>(ly) * in.pitch);
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) {
              continue;
            }
            const long lx = ((x + dx) % w + w) % w;
            live += src_row[lx];
          }
        }
        const long lyc = gy - in.origin;
        const int alive = reinterpret_cast<const int*>(
            in.base + static_cast<std::size_t>(lyc) * in.pitch)[x];
        dst[x] = (live == 3 || (alive && live == 2)) ? 1 : 0;
      }
    }
  });
  return true;
}

namespace {

template <int ILPX, int ILPY>
void run_maps_iterations(Scheduler& sched, Matrix<int>& a, Matrix<int>& b,
                         int iterations) {
  using Win = typename MapsTick<ILPX, ILPY>::Win;
  using Out = typename MapsTick<ILPX, ILPY>::Out;
  sched.AnalyzeCall(Win(a), Out(b));
  sched.AnalyzeCall(Win(b), Out(a));
  for (int i = 0; i < iterations; ++i) {
    if (i % 2 == 0) {
      sched.Invoke(maps_cost_hints(), MapsTick<ILPX, ILPY>{}, Win(a), Out(b));
    } else {
      sched.Invoke(maps_cost_hints(), MapsTick<ILPX, ILPY>{}, Win(b), Out(a));
    }
  }
}

void run_naive_iterations(Scheduler& sched, Matrix<int>& a, Matrix<int>& b,
                          int iterations) {
  using Win = Window2D<int, 1, maps::WRAP>;
  using Out = StructuredInjective<int, 2>;
  sched.AnalyzeCall(Win(a), Out(b));
  sched.AnalyzeCall(Win(b), Out(a));
  for (int i = 0; i < iterations; ++i) {
    Matrix<int>& in = (i % 2 == 0) ? a : b;
    Matrix<int>& out = (i % 2 == 0) ? b : a;
    sched.InvokeUnmodified(NaiveTickRoutine, nullptr, Work{in.height(), 1},
                           Win(in), Out(out));
  }
}

} // namespace

double run(Scheduler& sched, Matrix<int>& a, Matrix<int>& b, int iterations,
           Scheme scheme) {
  sched.WaitAll();
  const double t0 = sched.node().now_ms();
  switch (scheme) {
  case Scheme::Naive:
    run_naive_iterations(sched, a, b, iterations);
    break;
  case Scheme::Maps:
    run_maps_iterations<1, 1>(sched, a, b, iterations);
    break;
  case Scheme::MapsIlp:
    run_maps_iterations<4, 2>(sched, a, b, iterations); // 4 cols x 2 rows
    break;
  }
  sched.Gather((iterations % 2 == 0) ? a : b);
  return sched.node().now_ms() - t0;
}

void reference_tick(std::vector<int>& grid, std::size_t width,
                    std::size_t height) {
  std::vector<int> next(grid.size());
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      int live = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) {
            continue;
          }
          const std::size_t yy =
              (y + height + static_cast<std::size_t>(dy)) % height;
          const std::size_t xx =
              (x + width + static_cast<std::size_t>(dx)) % width;
          live += grid[yy * width + xx];
        }
      }
      const int alive = grid[y * width + x];
      next[y * width + x] = (live == 3 || (alive && live == 2)) ? 1 : 0;
    }
  }
  grid = std::move(next);
}

} // namespace apps::gol
