#include "apps/histogram.hpp"

#include "simcub/simcub.hpp"

namespace apps::histogram {

using namespace maps::multi;

bool NaiveRoutine(RoutineArgs& args) {
  const auto& seg = args.container_segments[0];
  const std::size_t rows = seg.m_dimensions[0];
  const std::size_t cols = seg.m_dimensions[1];
  const int* image = args.parameters[0].as<int>();
  int* hist = args.parameters[1].as<int>();

  sim::LaunchStats st;
  st.label = "histogram::naive";
  const std::uint64_t pixels = rows * cols;
  st.blocks = std::max<std::uint64_t>(1, pixels / 256);
  st.threads_per_block = 256;
  st.global_bytes_read = pixels * sizeof(int);
  st.global_atomics = pixels; // §5.3: one global atomic per pixel
  args.node->launch(args.stream, st, [image, hist, pixels] {
    for (std::size_t i = 0; i < pixels; ++i) {
      ++hist[static_cast<std::size_t>(image[i]) % kBins];
    }
  });
  return true;
}

double run(Scheduler& sched, Matrix<int>& image, Vector<int>& hist,
           int iterations, Scheme scheme) {
  using In = Window2D<int, 0, maps::NO_CHECKS, 8>;
  using Out = ReductiveStatic<int, kBins, 8>;

  sched.WaitAll();
  const double t0 = sched.node().now_ms();

  CostHints hints;
  hints.flops_per_elem = 3.0;
  for (int i = 0; i < iterations; ++i) {
    switch (scheme) {
    case Scheme::Maps:
      sched.Invoke(hints, MapsKernel<8>{}, In(image), Out(hist));
      break;
    case Scheme::Naive:
      sched.InvokeUnmodified(NaiveRoutine, nullptr,
                             Work{image.height(), image.width()}, In(image),
                             Out(hist));
      break;
    case Scheme::Cub:
      sched.InvokeUnmodified(simcub::HistogramRoutine, nullptr,
                             Work{image.height(), image.width()}, In(image),
                             Out(hist));
      break;
    }
  }
  sched.Gather(hist);
  return sched.node().now_ms() - t0;
}

std::vector<int> reference(const std::vector<int>& image) {
  std::vector<int> hist(kBins, 0);
  for (int p : image) {
    ++hist[static_cast<std::size_t>(p) % kBins];
  }
  return hist;
}

} // namespace apps::histogram
