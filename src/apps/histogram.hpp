// Histogram application (paper §4.5.3, §5.3, Fig 4 & Fig 8).
//
// Three implementation schemes, matching Fig 8:
//  * naive — one global atomic per pixel (the §5.3 baseline whose runtime
//    explodes on Maxwell);
//  * MAPS  — the pattern-based kernel of Fig 4 (Window(2D, r=0) input,
//    Reductive Static output) with device-level aggregators;
//  * CUB   — the tuned simcub routine.
//
// The naive and CUB variants run on multiple GPUs as unmodified routines
// over MAPS-Multi, exactly as the paper does (§5.3: "the former two programs
// were also implemented over MAPS-Multi using unmodified routines").
#pragma once

#include <cstddef>
#include <vector>

#include "multi/maps_multi.hpp"

namespace apps::histogram {

inline constexpr int kBins = 256;

/// The Fig 4 kernel: Window2D (1x1) input, ReductiveStatic output, ILP.
template <int ILP> struct MapsKernel {
  using In = maps::multi::Window2D<int, 0, maps::NO_CHECKS, ILP>;
  using Out = maps::multi::ReductiveStatic<int, kBins, ILP>;

  void operator()(const maps::ThreadContext&, In& image, Out& hist) const {
    MAPS_FOREACH(hist_iter, hist) {
      auto image_iter = image.align(hist_iter);
      const auto bin = static_cast<std::size_t>(*image_iter) % kBins;
      hist_iter[bin] += 1;
    }
    hist.commit();
  }
};

/// Naive kernel: global atomics per pixel. Routine parameters:
/// { Window2D(image, r=0), ReductiveStatic(hist) }.
bool NaiveRoutine(maps::multi::RoutineArgs& args);

enum class Scheme { Naive, Maps, Cub };

/// Computes `iterations` histograms of the bound image over MAPS-Multi with
/// the chosen scheme, gathering (and thereby sum-aggregating) at the end.
/// Returns simulated milliseconds for the whole run.
double run(maps::multi::Scheduler& sched, maps::multi::Matrix<int>& image,
           maps::multi::Vector<int>& hist, int iterations, Scheme scheme);

/// Sequential CPU reference.
std::vector<int> reference(const std::vector<int>& image);

} // namespace apps::histogram
