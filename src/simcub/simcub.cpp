#include "simcub/simcub.hpp"

namespace simcub {

double per_pixel_ns(const sim::DeviceSpec& spec) {
  // Calibration targets at 8192^2 pixels (Fig 8's relationships):
  //   GTX 780:     ~1.25 ms  (MAPS-Multi ~0.95 ms is FASTER here)
  //   Titan Black: ~0.70 ms  (CUB faster than MAPS-Multi's ~0.85 ms)
  //   GTX 980:     ~0.75 ms  (CUB clearly faster: Maxwell shared-atomic
  //                           tuning MAPS cannot apply generically)
  switch (spec.arch) {
  case sim::Arch::Kepler:
    return spec.sm_count >= 15 ? 0.0104 : 0.0186;
  case sim::Arch::Maxwell:
    return 0.0112;
  }
  return 0.02;
}

void histogram256(sim::Node& node, int device, sim::StreamId stream,
                  const int* image, std::size_t rows, std::size_t cols,
                  int* hist) {
  const std::size_t pixels = rows * cols;
  sim::LaunchStats st;
  st.label = "simcub::histogram256";
  st.blocks = std::max<std::uint64_t>(1, pixels / 2048);
  st.threads_per_block = 256;
  // The tuned cost is expressed directly: CUB's internal scheme (per-thread
  // privatized bins, vectorized loads) is not modeled structurally.
  st.extra_us = static_cast<double>(pixels) * per_pixel_ns(node.spec(device)) *
                1e-3;
  node.launch(stream, st, [=] {
    for (std::size_t i = 0; i < pixels; ++i) {
      ++hist[image[i] & 255];
    }
  });
}

bool HistogramRoutine(maps::multi::RoutineArgs& args) {
  const auto& seg = args.container_segments[0];
  const std::size_t rows = seg.m_dimensions[0];
  const std::size_t cols = seg.m_dimensions[1];
  histogram256(*args.node, args.sim_device, args.stream,
               args.parameters[0].as<int>(), rows, cols,
               args.parameters[1].as<int>());
  return true;
}

} // namespace simcub
