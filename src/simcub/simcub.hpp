// simcub — stand-in for the CUB GPU primitives library (paper §5.3, Fig 8).
//
// CUB's histogram contains architecture- and algorithm-specific
// optimizations that a generic pattern-based framework cannot, by design,
// incorporate. The paper observes that CUB is faster than MAPS-Multi on the
// Titan Black and (more so) the GTX 980, while MAPS-Multi wins on the
// GTX 780. We reproduce that relationship with per-architecture calibrated
// per-pixel costs; see presets.cpp for the calibration method.
#pragma once

#include <cstddef>

#include "sim/node.hpp"

#include "multi/routine.hpp"

namespace simcub {

/// Enqueues a 256-bin histogram of `rows x cols` int pixels into `hist`
/// (accumulating). Hand-tuned per architecture.
void histogram256(sim::Node& node, int device, sim::StreamId stream,
                  const int* image, std::size_t rows, std::size_t cols,
                  int* hist);

/// MAPS-Multi unmodified-routine wrapper (§4.6): parameters =
/// { Window2D(image, r=0), ReductiveStatic(hist) }.
bool HistogramRoutine(maps::multi::RoutineArgs& args);

/// Calibrated per-pixel cost (nanoseconds) of the tuned histogram on `spec`.
double per_pixel_ns(const sim::DeviceSpec& spec);

} // namespace simcub
