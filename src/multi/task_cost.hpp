// Derives a device's LaunchStats from the task's pattern specifications.
//
// This is the reproduction's embodiment of the paper's thesis: the access
// pattern specification carries enough information to reason about the
// kernel — here, including its cost. Window inputs charge shared-memory
// staging (the tile load plus per-element neighborhood reads, pipelined by
// ILP, §4.5.1-4.5.2); Structured Injective outputs charge coalesced global
// writes; Reductive outputs charge shared atomics plus a per-block global
// commit (the device-level aggregator of §4.5.2).
#pragma once

#include <span>

#include "sim/launch_stats.hpp"

#include "multi/pattern_spec.hpp"
#include "multi/segmenter.hpp"

namespace maps::multi {

/// Per-kernel tunables supplied by the programmer (the paper's "programming
/// hints"); defaults fit light element-wise kernels.
struct CostHints {
  double flops_per_elem = 8.0;
  double instr_per_thread = 14.0;
  /// FLOP efficiency override for compute-bound kernels (0 = generic).
  double flop_efficiency = 0.0;
};

/// LaunchStats for the portion of the task that runs on one device slot.
sim::LaunchStats task_launch_stats(std::span<const PatternSpec> specs,
                                   const TaskPartition& partition, int slot,
                                   const CostHints& hints,
                                   const char* label);

} // namespace maps::multi
