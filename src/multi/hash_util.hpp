// Hash helpers for the scheduler's hot-path lookup tables.
//
// The Invoke path keys its availability/access maps and the memory analyzer
// keys its plans by (datum key, location/slot) pairs. std::map kept those
// lookups O(log n) with heavy pointer chasing; unordered_map needs a pair
// hash, which the standard library does not provide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace maps::multi {

/// 64-bit mix (splitmix64 finalizer) — cheap and well distributed for
/// pointer-derived keys, whose low bits carry little entropy.
inline std::uint64_t mix_u64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash for std::pair<const void*, int> keys ((datum, location) and
/// (datum, slot) tables).
struct PtrIntPairHash {
  std::size_t operator()(const std::pair<const void*, int>& k) const {
    std::uint64_t h = mix_u64(reinterpret_cast<std::uintptr_t>(k.first));
    h = mix_u64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.second)));
    return static_cast<std::size_t>(h);
  }
};

/// FNV-1a over a word sequence; used by PlanFingerprint.
inline std::uint64_t hash_words(const std::uint64_t* words, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

} // namespace maps::multi
