// Symbolic transfer-inference verifier (DESIGN.md §5.13).
//
// The PR 2 access sanitizer validates the pipeline's central claim — that
// declared access patterns let the runtime *infer* every inter-device
// transfer — dynamically, one concrete execution at a time. This module
// proves the same claim statically, for an entire pattern-class ×
// partition-shape × device-count *family* at once: every input pattern's
// read span is an affine interval function of symbolic segment boundaries
// [b_i, b_{i+1}), the segmenter's requirement regions and the location
// monitor's freshness evolution are mirrored over those expressions, and
// the planner's inferred copy set is shown to cover every read rectangle
// (and, dually, no two devices' inferred writes to overlap) by exact
// reasoning over box-constrained affine integer expressions.
//
// The engine is deliberately tiny and decidable:
//
//   Expr      c + Σ coef[i]·g_i   over per-slot "gap" variables g_i with
//             integer lower (and optional upper) bounds. Minimising a linear
//             function over a box is exact, so `provable_nonneg` is a
//             *decision procedure* for this constraint language, not a
//             heuristic: e ≥ 0 holds for every member of the family iff the
//             box minimum is ≥ 0.
//   Interval  half-open [lo, hi) of datum rows with Expr endpoints.
//   Family    the partition family: slot boundaries b_i as prefix sums of
//             the gaps (aligned shape: one shared gap, b_i = i·g; unaligned
//             shape: independent gaps — a superset of everything
//             make_partition can produce, including clipped tails).
//
// Subtraction is conservative in the direction soundness requires:
// `subtract_over` over-approximates (used for "what is still uncovered" —
// a spurious leftover is a verification failure, never a false proof) and
// `subtract_under` under-approximates (used for invalidating freshness on
// writes — a replica is only kept fresh when provably untouched).
//
// Chains of steps (Task / Gather / HostWrite) are verified by abstract
// interpretation of the monitor state; looping chains are certified for
// unboundedly many iterations by fixpoint induction: once an iteration is
// verified and ends in the same symbolic state it started from, every
// later iteration repeats the proven one.
//
// What the verifier proves vs. what only the sanitizer can catch is a real
// boundary — see DESIGN.md §5.13. CustomAligned segmentations, fractional
// row scales (den > 1), Boundary::NoChecks reads and segments thinner than
// their halo are *outside* the symbolic model and remain the dynamic
// sanitizer's job.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "multi/interval_set.hpp"
#include "multi/pattern_spec.hpp"

namespace maps::multi::sym {

/// "No upper bound" marker for Var::ub.
inline constexpr long kUnbounded = std::numeric_limits<long>::max();

/// One symbolic family variable (a per-slot partition gap).
struct Var {
  std::string name;
  long lb = 1;          ///< Inclusive lower bound (gaps are at least 1).
  long ub = kUnbounded; ///< Inclusive upper bound (rarely needed).
};

/// Affine integer expression over the family's variables: cst + Σ coef·g.
struct Expr {
  long cst = 0;
  std::vector<long> coef; ///< One entry per family variable.

  friend bool operator==(const Expr&, const Expr&) = default;
};

Expr operator+(Expr a, const Expr& b);
Expr operator-(Expr a, const Expr& b);
Expr operator+(Expr a, long c);
Expr operator-(Expr a, long c);
Expr operator*(long k, Expr a);

/// Half-open symbolic row interval [lo, hi).
struct Interval {
  Expr lo, hi;
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A symbolic partition family: `slots` devices, boundaries b_0 = 0 ≤ b_1 ≤
/// … ≤ b_S, expressed over gap variables. `unit` scales gap units to work
/// rows (1 normally; the block-row span for strip families, whose gaps count
/// whole block rows).
struct Family {
  std::string name;
  int slots = 0;
  long unit = 1;
  bool aligned_shape = false;
  std::vector<Var> vars;
  std::vector<Expr> gap_prefix;  ///< size slots+1: Σ gaps, in gap units.
  std::vector<Expr> work_bounds; ///< size slots+1: unit · gap_prefix.

  /// Independent per-slot gaps g_i ≥ min_gap — covers every partition
  /// make_partition can produce for `slots` devices (including uneven
  /// remainder distribution and clipped tails).
  static Family unaligned(int slots, long min_gap, long unit = 1);
  /// One shared gap g ≥ min_gap; b_i = i·unit·g (the even-split shape).
  static Family aligned(int slots, long min_gap, long unit = 1);

  Expr constant(long c) const;
  Expr var(int i) const;
  /// Work-row boundary of slot i (0 ≤ i ≤ slots).
  const Expr& work_bound(int i) const {
    return work_bounds[static_cast<std::size_t>(i)];
  }
  /// Total work rows W = work_bound(slots).
  const Expr& work_rows() const { return work_bounds.back(); }

  /// Exact decision: e ≥ 0 for EVERY variable assignment in the box.
  bool provable_nonneg(const Expr& e) const;
  bool provable_le(const Expr& a, const Expr& b) const;
  bool provable_eq(const Expr& a, const Expr& b) const;
  /// Box minimum of e (kUnbounded-negative cases return false via nonneg).
  long min_value(const Expr& e) const;
  /// Concrete evaluation at one member of the family (cross-checks).
  long eval(const Expr& e, const std::vector<long>& gaps) const;

  /// Pretty print in the boundary basis where possible: "b1 - 2", "R - 1",
  /// "2*b1 + 3". Falls back to the raw gap basis ("g0 + 1") when the
  /// expression is not a whole-unit combination of boundaries.
  std::string print(const Expr& e) const;
  std::string print(const Interval& iv) const; ///< "[b1 - 1, b1)"
};

// --- Conservative interval algebra (all provability relative to a family) --

bool provably_empty(const Family& f, const Interval& iv);
bool provably_disjoint(const Family& f, const Interval& a, const Interval& b);
/// Provable a ⊆ b.
bool provably_contains(const Family& f, const Interval& outer,
                       const Interval& inner);

/// Over-approximation of r \ p: the result is a superset of the true
/// difference for every family member (spurious leftovers possible — they
/// read as verification failures, never as false proofs).
std::vector<Interval> subtract_over(const Family& f, const Interval& r,
                                    const Interval& p);
/// Under-approximation of r \ p: every kept interval is provably inside the
/// true difference (used to invalidate freshness — incomparable overlap
/// drops the replica entirely).
std::vector<Interval> subtract_under(const Family& f, const Interval& r,
                                     const Interval& p);
/// Over-approximate difference of `required` minus the whole `covered` set.
std::vector<Interval> subtract_over_set(const Family& f,
                                        std::vector<Interval> required,
                                        const std::vector<Interval>& covered);

/// One symbolically planned copy (mirror of SegmentLocationMonitor::CopyOp
/// plus the scheduler's alignment classification and routing provenance).
struct Copy {
  int datum = 0;
  int src_location = 0; ///< 0 = host, 1 + slot = device (monitor convention).
  int dst_location = 0;
  Interval rows;        ///< GLOBAL datum rows moved.
  bool aligned = true;  ///< Lands at its global position (updates freshness).
  bool zero_fill = false;
  bool rerouted = false; ///< Source rewritten by the symbolic router.
  int slot = -1;         ///< Destination slot.
  int arg = -1;          ///< Task argument index that required it.
};

/// Per-datum symbolic monitor state: which rows are provably up to date at
/// each location (0 = host, 1 + slot = device), plus pending aggregation.
struct DatumState {
  std::vector<std::vector<Interval>> fresh; ///< per location.
  bool pending = false;
  friend bool operator==(const DatumState&, const DatumState&) = default;
};

/// Full symbolic monitor: datum id → state.
using MonitorState = std::map<int, DatumState>;

} // namespace maps::multi::sym

namespace maps::multi {

/// One task argument: the (type-erased) pattern declaration plus a symbolic
/// datum id. `spec.datum` is never dereferenced — the datum's height is the
/// symbolic R = row_scale_num · W.
struct SymArg {
  PatternSpec spec;
  int datum = 0;
};

/// One step of a symbolic task chain.
struct SymStep {
  enum class Kind { Task, Gather, HostWrite };
  Kind kind = Kind::Task;
  std::vector<SymArg> args; ///< Task only.
  int datum = 0;            ///< Gather / HostWrite target.

  static SymStep task(std::vector<SymArg> args);
  static SymStep gather(int datum);
  static SymStep host_write(int datum);
};

/// One failed proof obligation, with the exact symbolic counterexample
/// rectangle (mirroring the sanitizer's concrete stale-rectangle reports).
struct SymFailure {
  std::size_t step = 0;
  int iteration = 0;
  int datum = -1;
  int slot = -1;
  std::string what;   ///< Obligation class, e.g. "uncovered-read".
  std::string rect;   ///< Exact uncovered/overlapping symbolic rectangle.
  std::string detail; ///< Human-readable message.
};

/// Outcome of one certification run.
struct CertResult {
  bool ok = true;
  std::vector<SymFailure> failures;
  int iterations = 0;          ///< Iterations until the fixpoint closed.
  std::size_t obligations = 0; ///< Individually proved obligations.
  std::size_t families = 0;    ///< Families certified (certify_shipped).

  void merge(const CertResult& o);
  std::string summary() const;
};

class SymbolicVerifier {
public:
  explicit SymbolicVerifier(sym::Family family);

  const sym::Family& family() const { return family_; }

  /// Datum id → datum rows per work row (R_d = num · W). Default 1.
  void set_datum_scale(int datum, long num);

  // --- Mutation-test hooks --------------------------------------------------
  /// Perturbs the semantic read-span formula after derivation (models a
  /// pattern/formula drift the planner does not know about).
  void set_read_span_mutator(std::function<void(ReadSpanFormula&)> m);
  /// Returning false drops a planned copy before it takes effect (models a
  /// planner regression; the verifier must report the exact hole).
  void set_copy_filter(std::function<bool(const sym::Copy&)> f);
  /// Route planned copies through TransferPlanner::symbolic_route (on by
  /// default) — proves the routing layer preserves destination coverage.
  void set_routing_enabled(bool on) { routing_ = on; }
  /// Declares the topology's cluster-node count (sim::Topology::cluster).
  /// The symbolic model covers a single node only: its copies have no
  /// network tier, NICs or staged inter-node legs, so for nodes > 1
  /// verify_chain (and certify_strips, which runs it first) reports one
  /// "outside-model" failure instead of certifying transfers the simulator
  /// would route differently — the dynamic sanitizer owns that territory,
  /// exactly as it owns CustomAligned segmentations.
  void set_cluster_nodes(int nodes) { cluster_nodes_ = nodes; }

  /// Verifies a chain of steps starting from the cold-start state (host
  /// holds every datum). With `loop`, iterates the chain until the symbolic
  /// monitor state reaches a fixpoint, certifying unboundedly many
  /// iterations by induction; fails if no fixpoint appears within a small
  /// bound (a real steady state repeats within two iterations).
  CertResult verify_chain(const std::vector<SymStep>& chain, bool loop = true);

  /// Certifies the PR 4 interior/boundary strip split for the task at
  /// `strip_step` of a looping chain: the chain is first driven to its
  /// steady-state fixpoint, then for every slot the interior strip's reads
  /// are proved disjoint from every planned copy to its device (it waits on
  /// zero halo traffic), the boundary strips' widened reads are proved
  /// covered, and the strips are shown to tile the slot exactly. The
  /// family's gaps must be in block-row units (`unit` = rows per block row)
  /// and wide enough for a non-empty interior.
  CertResult certify_strips(const std::vector<SymStep>& chain,
                            std::size_t strip_step);

  /// Dispatch trace of the last verified iteration, for concretization
  /// cross-checks against compute_requirement / plan_copies.
  struct RegionTrace {
    int arg = -1;
    int slot = -1;
    sym::Interval global;
    bool zero_fill = false;
    bool aligned = true;
  };
  struct StepTrace {
    std::vector<RegionTrace> regions;
    std::vector<sym::Copy> copies;
    /// Monitor state as of the start of this step (strip certificates
    /// reason about what was already fresh before the task's own copies).
    sym::MonitorState pre_state;
  };
  const std::vector<StepTrace>& last_trace() const { return trace_; }

private:
  struct Ctx; // per-run context (state, failures, iteration)

  long datum_scale(int datum) const;
  sym::Expr datum_rows(int datum) const;
  sym::DatumState& state_for(Ctx& ctx, int datum);

  int task_slots(const SymStep& step) const;
  sym::Expr task_bound(const SymStep& step, int i) const;

  void run_step(Ctx& ctx, const SymStep& step, std::size_t index);
  void run_task(Ctx& ctx, const SymStep& step, std::size_t index);
  void run_gather(Ctx& ctx, const SymStep& step, std::size_t index);
  void run_host_write(Ctx& ctx, const SymStep& step, std::size_t index);

  /// Mirrors compute_requirement: the regions slot `s` must hold for `arg`.
  std::vector<RegionTrace> regions_for(Ctx& ctx, const SymStep& step,
                                       std::size_t index, int arg_index,
                                       int slot);
  /// Mirrors Algorithm 2 over the symbolic state: plans copies filling
  /// `region` at its destination (single covering source preferred, then
  /// provable multi-source pieces), reporting unprovable rows.
  void plan_region(Ctx& ctx, const SymStep& step, std::size_t index,
                   int arg_index, int slot, const RegionTrace& region,
                   std::vector<sym::Copy>& out);
  void apply_copies(Ctx& ctx, std::vector<sym::Copy>& copies,
                    std::size_t index);
  void check_reads(Ctx& ctx, const SymStep& step, std::size_t index);
  void check_and_apply_writes(Ctx& ctx, const SymStep& step,
                              std::size_t index);

  void fail(Ctx& ctx, std::size_t step, int datum, int slot, std::string what,
            std::string rect, std::string detail);
  void normalize(std::vector<sym::Interval>& set) const;

  sym::Family family_;
  std::map<int, long> scales_;
  std::function<void(ReadSpanFormula&)> mutator_;
  std::function<bool(const sym::Copy&)> filter_;
  bool routing_ = true;
  int cluster_nodes_ = 1; ///< >1 ⇒ outside the model (set_cluster_nodes)
  std::vector<StepTrace> trace_;
};

/// Certifies every shipped pattern class — pointwise, Window radii 1..3 ×
/// {Wrap, Clamp, Zero, NoChecks}, replicated inputs, Reductive (Static),
/// Unstructured Injective, Reductive (Dynamic), Traversal/SingleDevice,
/// 2/1 row scales, in-place updates, host-modify loops and the PR 4 strip
/// split — across device counts 1..max_devices and both partition shapes
/// (aligned even splits and fully unaligned gap families). Milliseconds per
/// family; the whole sweep is the CI `symbolic-cert` first gate.
CertResult certify_shipped(int max_devices = 8);

} // namespace maps::multi
