// Functional execution of a MAPS-Multi kernel over one device's share of the
// virtual grid.
//
// On real hardware the grid's thread-blocks run on the device's
// multiprocessors; here the framework sweeps the device's block rows and the
// threads within each block sequentially (the simulated Node accounts the
// parallel execution time separately, via LaunchStats). Containers receive
// the advancing ThreadContext, which is what makes the kernel body index
// free.
#pragma once

#include <cstdint>
#include <tuple>
#include <utility>

#include "maps/common.hpp"

namespace maps::multi {

namespace detail {

template <typename Kernel, typename Tuple, std::size_t... I>
void run_device_grid_impl(const maps::GridContext& gc, const Kernel& kernel,
                          Tuple& pats, std::index_sequence<I...>) {
  maps::ThreadContext tc;
  tc.grid = &gc;
  const unsigned brow_end = gc.block_row_offset + gc.block_rows;
  for (unsigned by = gc.block_row_offset; by < brow_end; ++by) {
    for (unsigned bx = 0; bx < gc.grid_dim.x; ++bx) {
      tc.block = maps::Dim3{bx, by, 0};
      for (unsigned ty = 0; ty < gc.block_dim.y; ++ty) {
        for (unsigned tx = 0; tx < gc.block_dim.x; ++tx) {
          tc.thread = maps::Dim3{tx, ty, 0};
          (std::get<I>(pats).set_thread(&tc), ...);
          kernel(tc, std::get<I>(pats)...);
        }
      }
    }
  }
}

} // namespace detail

/// Runs `kernel(tc, patterns...)` for every thread of this device's block
/// rows of the virtual grid.
template <typename Kernel, typename... Patterns>
void run_device_grid(const maps::GridContext& gc, const Kernel& kernel,
                     std::tuple<Patterns...>& pats) {
  detail::run_device_grid_impl(gc, kernel, pats,
                               std::index_sequence_for<Patterns...>{});
}

} // namespace maps::multi
