// Functional execution of a MAPS-Multi kernel over one device's share of the
// virtual grid.
//
// On real hardware the grid's thread-blocks run on the device's
// multiprocessors; here the framework sweeps the device's block rows and the
// threads within each block (the simulated Node accounts the parallel
// execution time separately, via LaunchStats). Containers receive the
// advancing ThreadContext, which is what makes the kernel body index free.
//
// Two sweep modes share the same inner loop:
//
//  * run_device_grid — the sequential legacy path: one thread sweeps the
//    device's block rows in order;
//  * run_device_grid_chunked — the parallel backend (DESIGN.md §5.12):
//    block rows are split into cache-sized chunks fanned out on a
//    ThreadPool, each chunk sweeping a PRIVATE copy of the pattern tuple so
//    containers never share mutable state. Results stay bit-identical to
//    the sequential sweep: injective outputs write disjoint rows/elements
//    concurrently, while aggregating outputs (Sum partials, dynamic
//    appends) accumulate into per-chunk private buffers that are merged on
//    the forking thread in ascending chunk order — a fixed reduction order,
//    independent of execution order. Sum outputs whose element type is not
//    exact under reassociation (floats) use a compensated (Neumaier) merge
//    (PatternSpec::agg_op_comp) over chunk boundaries that are a pure
//    function of the segment shape — never of pool parallelism — so float
//    sums are bit-identical across thread counts, though not to the
//    unchunked sequential order (the compensation bounds that drift).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "maps/common.hpp"
#include "multi/pattern_spec.hpp"
#include "multi/thread_pool.hpp"

namespace maps::multi {

namespace detail {

template <typename P>
concept HasAppendCounter = requires(P& p, std::uint64_t* c) {
  p.bind_append_counter(c);
};

template <typename Kernel, typename Tuple, std::size_t... I>
void run_device_grid_impl(const maps::GridContext& gc, const Kernel& kernel,
                          Tuple& pats, std::index_sequence<I...>) {
  maps::ThreadContext tc;
  tc.grid = &gc;
  const unsigned brow_end = gc.block_row_offset + gc.block_rows;
  for (unsigned by = gc.block_row_offset; by < brow_end; ++by) {
    for (unsigned bx = 0; bx < gc.grid_dim.x; ++bx) {
      tc.block = maps::Dim3{bx, by, 0};
      for (unsigned ty = 0; ty < gc.block_dim.y; ++ty) {
        for (unsigned tx = 0; tx < gc.block_dim.x; ++tx) {
          tc.thread = maps::Dim3{tx, ty, 0};
          (std::get<I>(pats).set_thread(&tc), ...);
          kernel(tc, std::get<I>(pats)...);
        }
      }
    }
  }
}

/// How one pattern participates in a chunked sweep.
enum class ChunkMerge : std::uint8_t {
  Shared,         ///< inputs / disjoint writers: chunks share the real view
  SumPartial,     ///< private zeroed copy, agg_op-merged in chunk order
  SumCompensated, ///< float Sum: Neumaier merge via agg_op_comp + carry
  AppendPartial,  ///< private staging + counter, concatenated in chunk order
};

/// Fixed chunk-count target for compensated float sums. Chunk boundaries for
/// such tasks must depend only on the segment's block-row count so every
/// thread count produces the same partial groupings (bit-identity).
inline constexpr unsigned kCompensatedSumChunks = 64;

template <typename P>
void privatize_chunk_pattern(P& p, ChunkMerge merge,
                             std::vector<std::byte>& store,
                             std::uint64_t& count) {
  if (merge == ChunkMerge::Shared) {
    return;
  }
  DeviceView v = p.view();
  store.assign(v.rows * v.pitch, std::byte{0});
  v.base = store.data();
  p.bind(v);
  if constexpr (HasAppendCounter<P>) {
    if (merge == ChunkMerge::AppendPartial) {
      p.bind_append_counter(&count);
    }
  }
  (void)count;
}

template <typename P>
void merge_chunk_pattern(P& proto, const PatternSpec& spec, ChunkMerge merge,
                         const std::vector<std::byte>& store,
                         std::uint64_t count, std::vector<std::byte>& carry) {
  if (merge == ChunkMerge::Shared) {
    return;
  }
  const DeviceView& v = proto.view();
  if (merge == ChunkMerge::SumPartial) {
    // Row-wise so pitched layouts merge exactly like a host-side gather.
    for (std::size_t r = 0; r < v.rows; ++r) {
      spec.agg_op(v.base + r * v.pitch, store.data() + r * v.pitch,
                  v.row_elems);
    }
    return;
  }
  if (merge == ChunkMerge::SumCompensated) {
    // All-zero bytes are +0.0 in IEEE-754, so byte-zeroing initializes the
    // carry correctly for any floating-point element type.
    if (carry.empty()) {
      carry.assign(v.rows * v.pitch, std::byte{0});
    }
    for (std::size_t r = 0; r < v.rows; ++r) {
      spec.agg_op_comp(v.base + r * v.pitch, store.data() + r * v.pitch,
                       carry.data() + r * v.pitch, v.row_elems);
    }
    return;
  }
  if constexpr (HasAppendCounter<P>) {
    std::uint64_t* shared = proto.append_counter();
    if (*shared + count > v.rows) {
      throw std::runtime_error("ReductiveDynamic: device segment overflow");
    }
    std::memcpy(v.base + *shared * v.pitch, store.data(), count * v.pitch);
    *shared += count;
  }
}

template <typename Tuple, std::size_t N, std::size_t... I>
void privatize_tuple(Tuple& pats, const std::array<ChunkMerge, N>& merge,
                     std::array<std::vector<std::byte>, N>& store,
                     std::array<std::uint64_t, N>& count,
                     std::index_sequence<I...>) {
  (privatize_chunk_pattern(std::get<I>(pats), merge[I], store[I], count[I]),
   ...);
}

template <typename Tuple, std::size_t N, std::size_t... I>
void merge_tuple(Tuple& pats, const std::array<PatternSpec, N>& specs,
                 const std::array<ChunkMerge, N>& merge,
                 const std::array<std::vector<std::byte>, N>& store,
                 const std::array<std::uint64_t, N>& count,
                 std::array<std::vector<std::byte>, N>& carry,
                 std::index_sequence<I...>) {
  (merge_chunk_pattern(std::get<I>(pats), specs[I], merge[I], store[I],
                       count[I], carry[I]),
   ...);
}

/// Folds the banked Neumaier carry back into a compensated Sum output after
/// the last chunk merged. A plain element-wise add (agg_op) completes the
/// compensated accumulation.
template <typename P>
void finalize_chunk_pattern(P& proto, const PatternSpec& spec,
                            ChunkMerge merge,
                            const std::vector<std::byte>& carry) {
  if (merge != ChunkMerge::SumCompensated || carry.empty()) {
    return;
  }
  const DeviceView& v = proto.view();
  for (std::size_t r = 0; r < v.rows; ++r) {
    spec.agg_op(v.base + r * v.pitch, carry.data() + r * v.pitch,
                v.row_elems);
  }
}

template <typename Tuple, std::size_t N, std::size_t... I>
void finalize_tuple(Tuple& pats, const std::array<PatternSpec, N>& specs,
                    const std::array<ChunkMerge, N>& merge,
                    const std::array<std::vector<std::byte>, N>& carry,
                    std::index_sequence<I...>) {
  (finalize_chunk_pattern(std::get<I>(pats), specs[I], merge[I], carry[I]),
   ...);
}

} // namespace detail

/// Runs `kernel(tc, patterns...)` for every thread of this device's block
/// rows of the virtual grid, sequentially on the calling thread.
template <typename Kernel, typename... Patterns>
void run_device_grid(const maps::GridContext& gc, const Kernel& kernel,
                     std::tuple<Patterns...>& pats) {
  detail::run_device_grid_impl(gc, kernel, pats,
                               std::index_sequence_for<Patterns...>{});
}

/// Parallel sweep: splits the device's block rows into chunks of
/// `chunk_block_rows`, runs each on `pool` with a private pattern-tuple
/// copy, and merges aggregating outputs deterministically in chunk order.
/// Falls back to the sequential sweep when there is only one chunk or when
/// an aggregating output cannot be merged exactly (see file header).
template <typename Kernel, typename... Patterns>
void run_device_grid_chunked(const maps::GridContext& gc, const Kernel& kernel,
                             std::tuple<Patterns...>& pats, ThreadPool& pool,
                             unsigned chunk_block_rows) {
  constexpr std::size_t N = sizeof...(Patterns);
  using Seq = std::index_sequence_for<Patterns...>;
  if (gc.block_rows == 0) {
    return; // empty segment: nothing to sweep
  }

  const std::array<PatternSpec, N> specs = std::apply(
      [](const auto&... p) { return std::array<PatternSpec, N>{p.spec()...}; },
      pats);
  constexpr std::array<bool, N> can_append = {
      detail::HasAppendCounter<Patterns>...};
  std::array<detail::ChunkMerge, N> merge{};
  bool compensated = false;
  for (std::size_t i = 0; i < N; ++i) {
    const PatternSpec& s = specs[i];
    if (s.is_input || s.agg == AggregationKind::None ||
        s.agg == AggregationKind::MaskedMerge) {
      // Injective writes are disjoint across chunks (rows for structured,
      // distinct elements/mask bytes for unstructured) — share the view.
      merge[i] = detail::ChunkMerge::Shared;
    } else if (s.agg == AggregationKind::Sum && s.agg_exact && s.agg_op) {
      merge[i] = detail::ChunkMerge::SumPartial;
    } else if (s.agg == AggregationKind::Sum && s.agg_op && s.agg_op_comp) {
      merge[i] = detail::ChunkMerge::SumCompensated;
      compensated = true;
    } else if (s.agg == AggregationKind::Append && can_append[i]) {
      merge[i] = detail::ChunkMerge::AppendPartial;
    } else {
      // No deterministic merge available for this aggregation — sweep
      // sequentially.
      run_device_grid(gc, kernel, pats);
      return;
    }
  }

  unsigned chunk = chunk_block_rows == 0 ? 1 : chunk_block_rows;
  if (compensated) {
    // Compensated float sums must chunk identically at every thread count:
    // derive the chunk size from the segment shape alone, ignoring the
    // cache-targeted, parallelism-dependent size the caller computed. Such
    // tasks also take the chunked path at parallelism <= 1 so single-worker
    // pools agree bitwise with wider ones.
    chunk = std::max(1u, (gc.block_rows + detail::kCompensatedSumChunks - 1) /
                             detail::kCompensatedSumChunks);
  }
  const unsigned nchunks = (gc.block_rows + chunk - 1) / chunk;
  if (!compensated && (nchunks <= 1 || pool.parallelism() <= 1)) {
    run_device_grid(gc, kernel, pats);
    return;
  }

  struct Chunk {
    explicit Chunk(const std::tuple<Patterns...>& p) : pats(p) {}
    std::tuple<Patterns...> pats;
    maps::GridContext gc;
    std::array<std::vector<std::byte>, N> store;
    std::array<std::uint64_t, N> count{};
  };
  std::vector<std::unique_ptr<Chunk>> chunks;
  chunks.reserve(nchunks);
  ThreadPool::Group group;
  for (unsigned c = 0; c < nchunks; ++c) {
    auto ck = std::make_unique<Chunk>(pats);
    ck->gc = gc;
    ck->gc.block_row_offset = gc.block_row_offset + c * chunk;
    ck->gc.block_rows = std::min(chunk, gc.block_rows - c * chunk);
    detail::privatize_tuple(ck->pats, merge, ck->store, ck->count, Seq{});
    Chunk* raw = ck.get();
    chunks.push_back(std::move(ck));
    // `kernel` outlives the group wait below (it is owned by the enclosing
    // launch body), so capturing it by reference is safe and avoids a copy
    // per chunk.
    pool.submit(group, [raw, &kernel] {
      detail::run_device_grid_impl(raw->gc, kernel, raw->pats, Seq{});
    });
  }
  pool.wait(group); // helping wait; rethrows the lowest-chunk failure
  // Deterministic merge: ascending chunk order on this (single) thread.
  std::array<std::vector<std::byte>, N> carry{};
  for (const auto& ck : chunks) {
    detail::merge_tuple(pats, specs, merge, ck->store, ck->count, carry,
                        Seq{});
  }
  detail::finalize_tuple(pats, specs, merge, carry, Seq{});
}

} // namespace maps::multi
