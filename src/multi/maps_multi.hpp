// Umbrella header for the MAPS-Multi framework.
//
//   #include "multi/maps_multi.hpp"
//
// pulls in the full host-level API (Datum/Matrix/Vector/NDArray, the pattern
// containers, Scheduler, unmodified-routine support) and the device-level
// iteration macros, matching the paper's single-header usage style (the CUDA
// MAPS framework is header-only, §1).
#pragma once

#include "maps/common.hpp"
#include "maps/foreach.hpp"

#include "multi/datum.hpp"
#include "multi/input_patterns.hpp"
#include "multi/output_patterns.hpp"
#include "multi/routine.hpp"
#include "multi/scheduler.hpp"

/// API-parity macro with the paper's kernel signature helper (Fig 2b). The
/// reproduction's kernels receive the thread context explicitly, so this is
/// documentation-only.
#define MAPS_MULTIDEF
/// API-parity macro with the paper's per-kernel initialization (Fig 2b).
#define MAPS_MULTI_INIT() ((void)0)
