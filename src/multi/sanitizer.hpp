// Runtime access sanitizer: a shadow write-version map over the multi-GPU
// pipeline.
//
// The whole value of MAPS-Multi is that every inter-GPU transfer is
// *inferred* from access-pattern hints (Algorithm 2). The failure mode of a
// bug in that inference — a missed halo exchange, a wrong bounding box, a
// plan-cache replay restoring the wrong location state — is not a crash but
// a silently-stale read that corrupts results. The sanitizer turns that
// class of bug into an immediate diagnostic.
//
// Model: every datum carries a monotonically increasing write-version. A
// `latest` interval map records, per global row range, the version the data
// *should* be at; a per-location `held` map records the version each
// location (host + device slots) actually holds. The scheduler advances the
// maps in program order at dispatch time — kernel outputs bump versions,
// inferred copies propagate them, gathers/aggregations resolve them — and,
// before each kernel executes, intersects the kernel's *input* pattern
// rectangles against the shadow map, asserting every row read is at the
// latest version. Because the hooks run on the plan the scheduler is about
// to execute (not on the monitor state it planned from), the build path and
// the plan-cache replay path are checked identically — replay is exactly the
// path that skips the monitor's per-copy marks.
//
// A violation throws SanitizerError naming the datum, device, stale
// rectangle, held vs latest version, and the transfer the Segment Location
// Monitor should have scheduled.
//
// The sanitizer is pure metadata: it never touches functional data, works in
// both Functional and TimingOnly modes, and costs one pointer test per
// dispatch when disabled (Scheduler::set_sanitizer_enabled).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "multi/datum.hpp"
#include "multi/interval_set.hpp"

namespace maps::multi {

/// Thrown on a stale read / stale copy source / unresolved aggregation.
class SanitizerError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// One row range at one write-version. Version 0 means "never written /
/// not held".
struct VersionedRange {
  RowInterval rows;
  std::uint64_t version = 0;
};

/// Piecewise-constant map from global datum rows to write-versions: sorted,
/// disjoint, coalesced when adjacent ranges carry the same version. Rows
/// absent from the map are at version 0.
class VersionMap {
public:
  /// Overwrites the range with one version (version 0 erases).
  void assign(const RowInterval& rows, std::uint64_t version);
  /// Overwrites this map's `rows` with `src`'s piecewise versions of the
  /// same rows (used to propagate `latest` into a copy destination).
  void assign_from(const VersionMap& src, const RowInterval& rows);
  /// Appends the piecewise versions of `rows` to `out`, including version-0
  /// pieces for uncovered gaps; the pieces partition `rows` exactly.
  void query(const RowInterval& rows, std::vector<VersionedRange>& out) const;
  /// Version at a single row (0 when absent).
  std::uint64_t at(std::size_t row) const;

  void clear() { entries_.clear(); }
  bool empty() const { return entries_.empty(); }
  std::size_t entry_count() const { return entries_.size(); }
  const std::vector<VersionedRange>& entries() const { return entries_; }

private:
  std::vector<VersionedRange> entries_;
};

class AccessSanitizer {
public:
  /// Location convention follows SegmentLocationMonitor: 0 = host,
  /// 1 + slot = device slot.
  static constexpr int kHost = 0;

  explicit AccessSanitizer(int slots);

  /// Names the task whose effects the following hooks describe (diagnostics
  /// context only).
  void begin_context(std::uint64_t task, const std::string& label);

  // --- Program-order hooks (called by the Scheduler at dispatch time) -------

  /// An inferred copy landing at its global position: verifies the SOURCE
  /// holds the latest version of `rows` (a stale source means Algorithm 2
  /// chose a location that should have been invalidated), then stamps the
  /// destination with the propagated versions.
  void on_copy(const Datum* datum, int src_location, int dst_location,
               const RowInterval& rows);
  /// A boundary copy into a Wrap/Clamp halo slot (rows do NOT land at their
  /// global position): the source freshness check only.
  void on_halo_source(const Datum* datum, int src_location,
                      const RowInterval& rows);
  /// Kernel input check: every row of `rows` must be held at `location` at
  /// its latest version. Throws SanitizerError otherwise.
  void on_read(const Datum* datum, int location, const RowInterval& rows);
  /// Reports a halo-slot read whose refill copy never ran this task.
  [[noreturn]] void report_missing_halo(const Datum* datum, int location,
                                        const RowInterval& rows);
  /// Reports an interior/boundary sub-kernel whose read span overlaps an
  /// inferred copy that does not gate it — the strip could launch before its
  /// halo (or chunk) lands. Caught structurally at dispatch time, for builds
  /// and plan-cache replays alike.
  [[noreturn]] void report_ungated_strip(const Datum* datum, int location,
                                         const RowInterval& strip_rows,
                                         const RowInterval& copy_rows);
  /// Kernel output: `rows` advance to a fresh version held only by `writer`.
  void on_write(const Datum* datum, int writer, const RowInterval& rows);
  /// Reductive/unstructured output: every replica becomes a partial copy; the
  /// datum is unreadable until an aggregation resolves it.
  void on_pending_aggregation(const Datum* datum);
  /// Gather aggregated the partials: the host holds the (fresh) result.
  void on_aggregation_resolved_host(const Datum* datum);
  /// ReduceScatter is resolving the partials device-side; the per-slot
  /// results are recorded through on_write.
  void on_aggregation_scattered(const Datum* datum);
  /// Out-of-band host write (MarkHostModified / re-Bind): the host buffer
  /// becomes the sole holder of a fresh version of every row.
  void on_host_write(const Datum* datum);
  /// Device-loss recovery: the location's replicas are gone. Clears its held
  /// maps and rewinds `latest` to the pointwise maximum version any surviving
  /// location still holds — minted writes the dead device never exchanged are
  /// rolled back so the re-executed repair writes can mint fresh versions
  /// that the survivors can actually reach. Pending-aggregation datums keep
  /// their whole-datum bump (partials are valid nowhere by definition).
  void on_device_lost(int location);
  /// One datum's replicas at one location were discarded without the device
  /// dying (buffer reallocated after a post-loss repartition): clear the held
  /// map only — `latest` stays reachable through the host mirror.
  void on_holdings_dropped(const Datum* datum, int location);
  /// Zeroes the check/write counters (shadow state is untouched).
  void reset_stats() { stats_ = Stats{}; }

  // --- Introspection ---------------------------------------------------------
  struct Stats {
    std::uint64_t tasks_checked = 0;  ///< begin_context calls
    std::uint64_t copies_checked = 0; ///< on_copy + on_halo_source
    std::uint64_t rects_checked = 0;  ///< on_read rectangles
    std::uint64_t writes_recorded = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Version each row range of the datum should be at (testing aid).
  const VersionMap& latest(const Datum* datum);
  /// Versions a location actually holds (testing aid).
  const VersionMap& held(const Datum* datum, int location);

private:
  struct ShadowState {
    std::uint64_t next_version = 1;
    bool pending_aggregation = false;
    VersionMap latest;
    std::vector<VersionMap> held; ///< per location
  };
  ShadowState& ensure(const Datum* datum);
  void check_fresh(const Datum* datum, int location, const RowInterval& rows,
                   const char* role);
  [[noreturn]] void fail_stale(const Datum* datum, int location,
                               const VersionedRange& held_piece,
                               std::uint64_t latest_version, const char* role);
  std::string location_name(int location) const;
  std::string context() const;
  /// A location currently holding `rows` at version `version`, or -1.
  int find_holder(const ShadowState& s, const RowInterval& rows,
                  std::uint64_t version) const;

  int locations_;
  std::uint64_t task_ = 0;
  std::string label_;
  Stats stats_;
  std::unordered_map<const void*, ShadowState> states_;
  std::vector<VersionedRange> scratch_held_, scratch_latest_;
};

} // namespace maps::multi
