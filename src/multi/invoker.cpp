#include "multi/invoker.hpp"

#include <stdexcept>
#include <string>

namespace maps::multi {

InvokerThread::InvokerThread(int slot)
    : slot_(slot), thread_([this] { run(); }) {}

InvokerThread::~InvokerThread() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void InvokerThread::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (abandoned_) {
      throw std::logic_error("invoker " + std::to_string(slot_) +
                             ": submit to an abandoned (lost-device) invoker");
    }
    jobs_.push_back(std::move(job));
  }
  jobs_submitted_.fetch_add(1, std::memory_order_release);
  cv_.notify_all();
}

void InvokerThread::abandon() {
  std::size_t discarded = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    abandoned_ = true;
    discarded = jobs_.size();
    jobs_.clear();
  }
  // Discarded jobs count as executed so the submitted/executed drain
  // invariant (see jobs_submitted) survives a device loss.
  jobs_executed_.fetch_add(discarded, std::memory_order_release);
  cv_.notify_all();
}

bool InvokerThread::abandoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return abandoned_;
}

void InvokerThread::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return jobs_.empty() && !busy_; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void InvokerThread::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
    if (stop_ && jobs_.empty()) {
      return;
    }
    auto job = std::move(jobs_.front());
    jobs_.pop_front();
    busy_ = true;
    lock.unlock();
    try {
      job();
    } catch (...) {
      jobs_executed_.fetch_add(1, std::memory_order_release);
      lock.lock();
      if (!error_) {
        error_ = std::current_exception();
      }
      busy_ = false;
      cv_.notify_all();
      continue;
    }
    jobs_executed_.fetch_add(1, std::memory_order_release);
    lock.lock();
    busy_ = false;
    cv_.notify_all();
  }
}

} // namespace maps::multi
