// Device-loss fault injection (§5.11 of DESIGN.md).
//
// A FaultInjector is a user-supplied predicate the scheduler consults at
// well-defined dispatch boundaries. Returning true kills the named device:
// the scheduler drains in-flight work (the simulated loss model is
// "drain-completes" — enqueued commands finish, then the device is gone),
// marks the slot dead, and runs recovery (segment re-execution from the host
// mirrors plus aggregation-partial repair). Fault injection only makes sense
// with fault tolerance enabled (Scheduler::set_fault_tolerance_enabled);
// without host mirroring a loss is unrecoverable.
#pragma once

#include <cstdint>
#include <functional>

namespace maps::multi {

/// Where in a task's dispatch the device is lost.
enum class KillStage {
  /// The victim's inferred input copies were issued, but its kernel was not:
  /// the device dies holding fresh inputs and no outputs.
  CopiesIssued,
  /// The victim's kernel was issued and completes (drain model) but its
  /// outputs were never mirrored or exchanged: they die with the device.
  KernelIssued,
  /// The device is lost at the entry of a Gather, before aggregation
  /// planning: pending partials on the victim are re-executed on survivors.
  PreGather,
};

/// One consultation point. `task` is the scheduler's task handle for the
/// dispatch being executed (0 at PreGather points, which are not tasks).
struct FaultPoint {
  int slot = 0;
  KillStage stage = KillStage::CopiesIssued;
  std::uint64_t task = 0;
  const char* label = nullptr; ///< task label, or "gather" at PreGather
};

/// Returns true to kill `point.slot` at `point.stage`. Consulted once per
/// (live slot, stage) per dispatch; at most one kill fires per dispatch.
using FaultInjector = std::function<bool(const FaultPoint&)>;

/// An injector that fires exactly once: at the n-th consultation (0-based)
/// matching (slot, stage). Counting is shared across copies of the returned
/// functor, so the scheduler may copy it freely.
FaultInjector kill_at_nth(int slot, KillStage stage, int n);

} // namespace maps::multi
