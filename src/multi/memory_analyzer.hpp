// The Memory Analyzer (§4.2 of the paper).
//
// Per-device buffers can be (a) whole-datum preallocations, (b) fragmented
// runtime allocations, or (c) exact preallocations from the access-pattern
// specification. MAPS-Multi — and this reproduction — implements (c): the
// analyzer tracks, per (datum, device), the bounding box of every segment
// requirement seen so far (AnalyzeCall), then materializes one contiguous
// device buffer covering it.
//
// As in the paper, requirements discovered only after allocation are a
// programmer error: if a later task needs a larger box than what was
// allocated, ensure() throws with guidance to AnalyzeCall all tasks first
// (§4.2: "a framework runtime error could occur when insufficient memory is
// allocated").
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/node.hpp"

#include "multi/datum.hpp"
#include "multi/hash_util.hpp"
#include "multi/segmenter.hpp"

namespace maps::multi {

class MemoryAnalyzer {
public:
  /// `devices`: sim device id per scheduler slot.
  MemoryAnalyzer(sim::Node& node, std::vector<int> devices);
  ~MemoryAnalyzer();
  MemoryAnalyzer(const MemoryAnalyzer&) = delete;
  MemoryAnalyzer& operator=(const MemoryAnalyzer&) = delete;

  /// Bounding box of all requirements recorded for (datum, slot), in virtual
  /// global rows [origin, end).
  struct Plan {
    long origin = 0;
    long end = 0;
    std::size_t extra_tail_bytes = 0; ///< e.g. write masks (MaskedMerge)
    std::size_t rows() const { return static_cast<std::size_t>(end - origin); }
  };

  /// Materialized device buffer for (datum, slot).
  struct Alloc {
    sim::Buffer* buffer = nullptr;
    long origin = 0;
    std::size_t rows = 0;
    std::size_t row_bytes = 0;

    /// Byte offset of a virtual global row inside the buffer.
    std::size_t row_offset(long virtual_row) const {
      return static_cast<std::size_t>(virtual_row - origin) * row_bytes;
    }
  };

  /// Records one requirement (AnalyzeCall path; also called lazily from
  /// Invoke for unanalyzed tasks).
  void record(const PatternSpec& spec, const SegmentReq& req, int slot);

  /// Returns the allocation for (datum, slot), materializing it on first
  /// use. Throws if the recorded plan outgrew an existing allocation.
  const Alloc& ensure(const Datum* datum, int slot);

  /// Allocation lookup without materialization (nullptr if none).
  const Alloc* find(const Datum* datum, int slot) const;
  /// Plan lookup (nullptr if the datum was never analyzed for this slot).
  const Plan* plan(const Datum* datum, int slot) const;

  /// Total bytes currently allocated on a slot by the analyzer.
  std::size_t allocated_bytes(int slot) const;

  // --- Device-loss recovery -------------------------------------------------

  /// Frees and forgets every plan/allocation on a lost slot. The slot can be
  /// analyzed again later, but the scheduler never does — it is dead.
  void drop_slot(int slot);
  /// True when the recorded plan outgrew an existing allocation — the
  /// condition under which ensure() would throw. The fault-tolerant scheduler
  /// probes this after a post-loss repartition to reallocate instead.
  bool needs_grow(const Datum* datum, int slot) const;
  /// Discards the (datum, slot) allocation so the next ensure() materializes
  /// a buffer sized to the grown plan. Contents are NOT migrated; the caller
  /// must invalidate the location's holdings.
  void grow(const Datum* datum, int slot);

  // --- Out-of-core eviction -------------------------------------------------

  /// Evicts the (datum, slot) allocation under the device-memory budget:
  /// the buffer is freed but the plan survives, so the next ensure()
  /// rematerializes a buffer of the same bounding box — that
  /// rematerialization (plus the monitor-planned copies into it) is the
  /// refill. Mechanically identical to grow(); a separate entry point so
  /// call sites read as residency policy, not as repartition recovery.
  /// Contents are NOT migrated; the caller must write back dirty rows and
  /// mark the holding spilled first.
  void evict(const Datum* datum, int slot) { grow(datum, slot); }

  /// Bytes ensure() would materialize for (datum, slot) given the recorded
  /// plan — the working-set contribution used by the scheduler's budget
  /// check. Zero when the datum was never analyzed for the slot.
  std::size_t planned_bytes(const Datum* datum, int slot) const;

  /// One materialized allocation on a slot, for eviction-policy scans.
  struct Resident {
    const Datum* datum = nullptr;
    const Alloc* alloc = nullptr;
  };
  /// Every allocation currently materialized on `slot`, sorted by datum name
  /// (hash-map iteration order must not leak into eviction decisions — the
  /// LRU tie-break has to be deterministic for the pinned-counter tests).
  std::vector<Resident> resident(int slot) const;

  /// Releases all device buffers (also done by the destructor).
  void release_all();

private:
  using Key = std::pair<const void*, int>;
  sim::Node& node_;
  std::vector<int> devices_;
  std::unordered_map<Key, Plan, PtrIntPairHash> plans_;
  std::unordered_map<Key, Alloc, PtrIntPairHash> allocs_;
  std::unordered_map<Key, const Datum*, PtrIntPairHash> datum_of_;
};

} // namespace maps::multi
