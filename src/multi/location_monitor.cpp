#include "multi/location_monitor.hpp"

#include <algorithm>

namespace maps::multi {

SegmentLocationMonitor::SegmentLocationMonitor(int slots)
    : locations_(slots + 1) {}

void SegmentLocationMonitor::register_datum(const Datum* datum) {
  if (known(datum)) {
    return;
  }
  State s;
  s.up_to_date.resize(static_cast<std::size_t>(locations_));
  s.last_output.resize(static_cast<std::size_t>(locations_));
  s.spilled.resize(static_cast<std::size_t>(locations_));
  if (datum->bound()) {
    // The bound host buffer is the initial authoritative copy.
    s.up_to_date[kHost].add(RowInterval{0, datum->rows()});
    s.holders.push_back(kHost);
  }
  states_.emplace(datum->key(), std::move(s));
}

void SegmentLocationMonitor::sync_holder(State& s, int location) {
  const bool holds =
      !s.up_to_date[static_cast<std::size_t>(location)].empty();
  auto it = std::lower_bound(s.holders.begin(), s.holders.end(), location);
  const bool present = it != s.holders.end() && *it == location;
  if (holds && !present) {
    s.holders.insert(it, location);
  } else if (!holds && present) {
    s.holders.erase(it);
  }
}

bool SegmentLocationMonitor::known(const Datum* datum) const {
  return states_.contains(datum->key());
}

SegmentLocationMonitor::State&
SegmentLocationMonitor::state(const Datum* datum) {
  auto it = states_.find(datum->key());
  if (it == states_.end()) {
    throw std::logic_error("location monitor: unknown datum '" +
                           datum->name() + "'");
  }
  return it->second;
}

const SegmentLocationMonitor::State&
SegmentLocationMonitor::state(const Datum* datum) const {
  auto it = states_.find(datum->key());
  if (it == states_.end()) {
    throw std::logic_error("location monitor: unknown datum '" +
                           datum->name() + "'");
  }
  return it->second;
}

std::vector<SegmentLocationMonitor::CopyOp>
SegmentLocationMonitor::plan_copies(const Datum* datum, int target,
                                    const RowInterval& required,
                                    bool target_holds_slot) const {
  const State& s = state(datum);
  if (s.has_pending) {
    throw std::runtime_error(
        "datum '" + datum->name() +
        "' has partial (unaggregated) device copies; Gather it before using "
        "it as an input");
  }

  std::vector<CopyOp> ops;
  // Algorithm 2 lines 2-4: up to date on the target — nothing to do. (Halo
  // slots at non-global positions always need the copy.)
  std::vector<RowInterval> missing;
  if (target_holds_slot) {
    missing =
        s.up_to_date[static_cast<std::size_t>(target)].missing_from(required);
  } else if (!required.empty()) {
    missing.push_back(required);
  }
  if (missing.empty()) {
    return ops;
  }

  for (const RowInterval& miss : missing) {
    // Lines 5-8: a single location holding the whole piece. Devices are
    // scanned before the host: after a Gather both the host and the writing
    // device hold the rows, and starting the scan at location 0 made the
    // host shadow every device replica — turning free P2P (or intra-device)
    // reuse into host transfers that also contend on the shared host links.
    // Both scans walk the holder index rather than all locations — an empty
    // set can neither cover nor intersect anything, so restricting to
    // holders picks the same winners in the same (ascending-device) order
    // while the scan cost tracks the replica count, not the device count.
    int single = -1;
    for (const int cand : s.holders) {
      if (cand == kHost) { // host is scanned last, below
        continue;
      }
      if ((cand != target || !target_holds_slot) &&
          s.up_to_date[static_cast<std::size_t>(cand)].covers(miss)) {
        single = cand;
        break;
      }
    }
    if (single < 0 && !s.holders.empty() && s.holders.front() == kHost &&
        (kHost != target || !target_holds_slot) &&
        s.up_to_date[kHost].covers(miss)) {
      single = kHost;
    }
    if (single >= 0) {
      ops.push_back(CopyOp{single, miss});
      continue;
    }
    // Lines 9-14: intersect with every other device's holdings.
    IntervalSet remaining({std::vector<RowInterval>{miss}});
    for (const int l : s.holders) {
      if (remaining.empty()) {
        break;
      }
      if (l == kHost || (l == target && target_holds_slot)) {
        continue;
      }
      for (const RowInterval& piece : remaining.intervals()) {
        for (const RowInterval& hit :
             s.up_to_date[static_cast<std::size_t>(l)].intersection_with(
                 piece)) {
          ops.push_back(CopyOp{l, hit});
        }
      }
      for (std::size_t i = ops.size(); i-- > 0;) {
        if (ops[i].src_location == l) {
          remaining.remove(ops[i].rows);
        }
      }
    }
    // Host fallback for whatever no device holds.
    for (const RowInterval& piece : remaining.intervals()) {
      for (const RowInterval& hit :
           s.up_to_date[kHost].intersection_with(piece)) {
        ops.push_back(CopyOp{kHost, hit});
        remaining.remove(hit);
      }
    }
    if (!remaining.empty()) {
      throw std::runtime_error("datum '" + datum->name() + "': rows [" +
                               std::to_string(remaining.intervals()[0].begin) +
                               ", " +
                               std::to_string(remaining.intervals()[0].end) +
                               ") are not available at any location (reading "
                               "data that was never written?)");
    }
  }
  // Canonicalize the plan: a deterministic (source, row) order independent of
  // the holdings' internal interval layout, with adjacent rows from the same
  // source merged into one op — each op becomes one simulated transfer, so
  // fragmented holdings would otherwise pay the per-transfer latency per
  // fragment.
  std::sort(ops.begin(), ops.end(), [](const CopyOp& a, const CopyOp& b) {
    return a.src_location != b.src_location ? a.src_location < b.src_location
                                            : a.rows.begin < b.rows.begin;
  });
  std::vector<CopyOp> merged;
  merged.reserve(ops.size());
  for (const CopyOp& op : ops) {
    if (!merged.empty() && merged.back().src_location == op.src_location &&
        merged.back().rows.end == op.rows.begin) {
      merged.back().rows.end = op.rows.end;
    } else {
      merged.push_back(op);
    }
  }
  return merged;
}

void SegmentLocationMonitor::mark_copied(const Datum* datum, int target,
                                         const RowInterval& rows) {
  State& s = state(datum);
  s.up_to_date[static_cast<std::size_t>(target)].add(rows);
  if (!s.spilled[static_cast<std::size_t>(target)].empty()) {
    s.spilled[static_cast<std::size_t>(target)].remove(rows); // refilled
  }
  sync_holder(s, target);
  s.epoch = ++epoch_counter_;
}

void SegmentLocationMonitor::mark_written(const Datum* datum, int writer,
                                          const RowInterval& rows) {
  State& s = state(datum);
  // Only holders can have rows to invalidate. lastOutput is covered too:
  // every addition to it also lands in up_to_date and every removal strips
  // both sets identically, so last_output[l] ⊆ up_to_date[l] always holds
  // and a non-holder has nothing in either set.
  for (std::size_t i = s.holders.size(); i-- > 0;) {
    const int l = s.holders[i];
    if (l != writer) {
      s.up_to_date[static_cast<std::size_t>(l)].remove(rows);
      s.last_output[static_cast<std::size_t>(l)].remove(rows);
      sync_holder(s, l);
    }
  }
  s.up_to_date[static_cast<std::size_t>(writer)].add(rows);
  s.last_output[static_cast<std::size_t>(writer)].add(rows);
  if (!s.spilled[static_cast<std::size_t>(writer)].empty()) {
    s.spilled[static_cast<std::size_t>(writer)].remove(rows); // re-resident
  }
  sync_holder(s, writer);
  s.epoch = ++epoch_counter_;
}

void SegmentLocationMonitor::mark_spilled(const Datum* datum, int location,
                                          const RowInterval& rows) {
  State& s = state(datum);
  s.spilled[static_cast<std::size_t>(location)].add(rows);
  s.up_to_date[static_cast<std::size_t>(location)].remove(rows);
  s.last_output[static_cast<std::size_t>(location)].remove(rows);
  sync_holder(s, location);
  s.epoch = ++epoch_counter_;
}

const IntervalSet& SegmentLocationMonitor::spilled(const Datum* datum,
                                                   int location) const {
  return state(datum).spilled[static_cast<std::size_t>(location)];
}

int SegmentLocationMonitor::spilled_datum_count(int location) const {
  int count = 0;
  for (const auto& [key, s] : states_) {
    if (!s.spilled[static_cast<std::size_t>(location)].intervals().empty()) {
      ++count;
    }
  }
  return count;
}

std::uint64_t SegmentLocationMonitor::epoch(const Datum* datum) const {
  auto it = states_.find(datum->key());
  return it == states_.end() ? 0 : it->second.epoch;
}

void SegmentLocationMonitor::state_snapshot(
    const Datum* datum, std::vector<std::uint64_t>& out) const {
  const State& s = state(datum);
  out.push_back(s.has_pending ? 1 : 0);
  // Sparse encoding: only holders appear, each tagged with its location
  // index. Canonical because the holder index is sorted and an empty set
  // cannot be a holder, so equal states produce byte-identical encodings.
  out.push_back(s.holders.size());
  for (const int l : s.holders) {
    const auto& ivs = s.up_to_date[static_cast<std::size_t>(l)].intervals();
    out.push_back(static_cast<std::uint64_t>(l));
    out.push_back(ivs.size());
    for (const RowInterval& iv : ivs) {
      out.push_back(iv.begin);
      out.push_back(iv.end);
    }
  }
  // Spilled residency records, same sparse canonical shape. In-core states
  // (no budget) contribute a single constant 0 here.
  std::uint64_t spilled_locs = 0;
  for (const IntervalSet& set : s.spilled) {
    spilled_locs += set.empty() ? 0 : 1;
  }
  out.push_back(spilled_locs);
  for (std::size_t l = 0; l < s.spilled.size(); ++l) {
    const auto& ivs = s.spilled[l].intervals();
    if (ivs.empty()) {
      continue;
    }
    out.push_back(static_cast<std::uint64_t>(l));
    out.push_back(ivs.size());
    for (const RowInterval& iv : ivs) {
      out.push_back(iv.begin);
      out.push_back(iv.end);
    }
  }
}

const IntervalSet& SegmentLocationMonitor::up_to_date(const Datum* datum,
                                                      int location) const {
  return state(datum).up_to_date[static_cast<std::size_t>(location)];
}

const IntervalSet& SegmentLocationMonitor::last_output(const Datum* datum,
                                                       int location) const {
  return state(datum).last_output[static_cast<std::size_t>(location)];
}

void SegmentLocationMonitor::drop_location(int location) {
  for (auto& [key, s] : states_) {
    s.up_to_date[static_cast<std::size_t>(location)].clear();
    s.last_output[static_cast<std::size_t>(location)].clear();
    s.spilled[static_cast<std::size_t>(location)].clear();
    sync_holder(s, location);
    s.epoch = ++epoch_counter_;
  }
}

void SegmentLocationMonitor::drop_holdings(const Datum* datum, int location) {
  State& s = state(datum);
  s.up_to_date[static_cast<std::size_t>(location)].clear();
  s.last_output[static_cast<std::size_t>(location)].clear();
  s.spilled[static_cast<std::size_t>(location)].clear();
  sync_holder(s, location);
  s.epoch = ++epoch_counter_;
}

void SegmentLocationMonitor::remove_pending_writer(const Datum* datum,
                                                   int slot) {
  State& s = state(datum);
  if (!s.has_pending) {
    return;
  }
  auto& ws = s.pending.writer_slots;
  ws.erase(std::remove(ws.begin(), ws.end(), slot), ws.end());
  s.epoch = ++epoch_counter_;
}

void SegmentLocationMonitor::set_pending_aggregation(const Datum* datum,
                                                     PendingAggregation agg) {
  State& s = state(datum);
  // Partial writes invalidate every replica of the datum.
  for (auto& set : s.up_to_date) {
    set.clear();
  }
  for (auto& set : s.last_output) {
    set.clear();
  }
  s.holders.clear();
  s.pending = std::move(agg);
  s.has_pending = true;
  s.epoch = ++epoch_counter_;
}

const SegmentLocationMonitor::PendingAggregation*
SegmentLocationMonitor::pending_aggregation(const Datum* datum) const {
  const State& s = state(datum);
  return s.has_pending ? &s.pending : nullptr;
}

void SegmentLocationMonitor::clear_pending_aggregation(const Datum* datum) {
  State& s = state(datum);
  s.has_pending = false;
  s.epoch = ++epoch_counter_;
}

void SegmentLocationMonitor::capture_state(const Datum* datum,
                                           StateCopy& out) const {
  const State& s = state(datum);
  out.up_to_date = s.up_to_date;
  out.spilled = s.spilled;
  out.holders = s.holders;
  if (s.has_pending) { // `pending` is only read behind the flag
    out.pending = s.pending;
  }
  out.has_pending = s.has_pending;
  out.epoch = s.epoch;
}

void SegmentLocationMonitor::restore_state(const Datum* datum,
                                           const StateCopy& sc) {
  State& s = state(datum);
  // Element-wise assignment reuses the existing interval storage, so a
  // steady-state restore allocates nothing.
  s.up_to_date = sc.up_to_date;
  s.spilled = sc.spilled;
  s.holders = sc.holders;
  if (sc.has_pending) { // `pending` is only read behind the flag
    s.pending = sc.pending;
  }
  s.has_pending = sc.has_pending;
  // A fresh counter value here would be sound but would defeat the epoch
  // fast path: steady-state loops would never see a repeated label. The
  // captured label is exact — it named precisely this state.
  s.epoch = sc.epoch;
}

} // namespace maps::multi
