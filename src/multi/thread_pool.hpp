// Shared worker pool for the parallel functional execution backend
// (DESIGN.md §5.12).
//
// Functional kernel sweeps are pure CPU work whose wall-clock cost — not sim
// fidelity — bounds the fuzz matrices and benches, so the scheduler splits
// each device sweep into cache-sized block-row chunks and fans them out
// here. The pool is deliberately simple and deterministic-friendly:
//
//  * per-worker deques with work stealing, so uneven chunk costs balance;
//  * fork-join Groups: submit() tags each job with its submission ordinal,
//    wait() blocks until the group drains and rethrows the captured
//    exception with the LOWEST ordinal (several chunks may throw
//    concurrently; picking the first-submitted one keeps error reporting
//    identical to the sequential sweep);
//  * helping waits: a thread blocked in wait() executes queued jobs (of any
//    group) instead of sleeping, so nested fork-join — a deferred kernel
//    body forking chunks while itself running on the pool — cannot
//    deadlock;
//  * stats (jobs executed, steals, idle sleeps) surfaced through
//    SchedulerStats.
//
// Execution ORDER is unspecified; determinism of results is the caller's
// contract (disjoint writes, or private partials merged in chunk order —
// see kernel_exec.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace maps::multi {

class ThreadPool {
public:
  /// Fork-join handle. A Group may be reused for several submit/wait rounds;
  /// it must not be destroyed with jobs pending (wait() first).
  class Group {
  public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    bool idle() const {
      return pending_.load(std::memory_order_acquire) == 0;
    }

  private:
    friend class ThreadPool;
    std::atomic<std::uint64_t> pending_{0};
    std::atomic<std::uint64_t> next_ordinal_{0};
    std::uint64_t error_ordinal_ = ~std::uint64_t{0};
    std::exception_ptr error_;      ///< lowest-ordinal capture
    std::mutex error_mutex_;
  };

  struct Stats {
    std::uint64_t executed = 0;   ///< jobs run (by workers and helpers)
    std::uint64_t stolen = 0;     ///< jobs taken from another queue
    std::uint64_t idle_waits = 0; ///< times a thread went to sleep
  };

  /// `parallelism` is the total intended concurrency: the pool spawns
  /// `parallelism - 1` workers and expects callers of wait() to contribute
  /// the remaining thread (helping waits). parallelism == 1 spawns no
  /// workers; submitted jobs run entirely inside wait().
  explicit ThreadPool(unsigned parallelism);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned parallelism() const { return parallelism_; }

  void submit(Group& group, std::function<void()> job);

  /// Blocks until every job submitted to `group` completed, executing queued
  /// jobs meanwhile; then rethrows the group's lowest-ordinal captured
  /// exception, if any (clearing it for the next round).
  void wait(Group& group);

  Stats stats() const;
  void reset_stats();

private:
  struct Job {
    Group* group = nullptr;
    std::uint64_t ordinal = 0;
    std::function<void()> fn;
  };
  struct Queue {
    std::mutex mutex;
    std::deque<Job> jobs;
  };

  /// Pops and runs one queued job, preferring `home`; returns false when
  /// every queue was empty at scan time.
  bool try_run_one(std::size_t home);
  void run_job(Job job);
  bool any_queued() const;
  void worker_loop(std::size_t index);

  unsigned parallelism_ = 1;
  std::vector<std::unique_ptr<Queue>> queues_; ///< one per worker (min 1)
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0}; ///< round-robin submit target

  /// Single sleep channel shared by workers and helping waiters; woken on
  /// every submit and every group-drain. `wake_epoch_` (guarded by
  /// `sleep_mutex_`) makes the wakeups lossless.
  mutable std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::uint64_t wake_epoch_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> idle_waits_{0};
};

} // namespace maps::multi
