#include "multi/thread_pool.hpp"

#include <utility>

namespace maps::multi {

ThreadPool::ThreadPool(unsigned parallelism)
    : parallelism_(parallelism == 0 ? 1 : parallelism) {
  const unsigned workers = parallelism_ - 1;
  const std::size_t queues = workers == 0 ? 1 : workers;
  queues_.reserve(queues);
  for (std::size_t q = 0; q < queues; ++q) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
    ++wake_epoch_;
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
  // Jobs still queued at destruction (a caller abandoned its Group, e.g. via
  // an exception unwind) are dropped unexecuted; their closures are freed
  // with the queues.
}

void ThreadPool::submit(Group& group, std::function<void()> job) {
  Job j;
  j.group = &group;
  j.ordinal = group.next_ordinal_.fetch_add(1, std::memory_order_relaxed);
  j.fn = std::move(job);
  // Publish the pending count before the job becomes runnable so wait()
  // can never observe an in-flight job with pending == 0.
  group.pending_.fetch_add(1, std::memory_order_release);
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->jobs.push_back(std::move(j));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++wake_epoch_;
  }
  sleep_cv_.notify_all();
}

void ThreadPool::run_job(Job job) {
  try {
    job.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(job.group->error_mutex_);
    // Keep the FIRST-submitted failure: several chunks may throw
    // concurrently and the rethrow must not depend on execution order.
    if (job.ordinal < job.group->error_ordinal_) {
      job.group->error_ordinal_ = job.ordinal;
      job.group->error_ = std::current_exception();
    }
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (job.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      ++wake_epoch_;
    }
    sleep_cv_.notify_all();
  }
}

bool ThreadPool::try_run_one(std::size_t home) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t q = (home + i) % n;
    Job job;
    {
      std::lock_guard<std::mutex> lock(queues_[q]->mutex);
      if (queues_[q]->jobs.empty()) {
        continue;
      }
      job = std::move(queues_[q]->jobs.front());
      queues_[q]->jobs.pop_front();
    }
    if (i != 0) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
    }
    run_job(std::move(job));
    return true;
  }
  return false;
}

bool ThreadPool::any_queued() const {
  for (const auto& q : queues_) {
    std::lock_guard<std::mutex> lock(q->mutex);
    if (!q->jobs.empty()) {
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  while (true) {
    if (try_run_one(index)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_) {
      return;
    }
    // Recheck under the sleep lock: a submit that completed after our queue
    // scan already bumped the epoch, so waiting on the captured epoch below
    // cannot miss it; a submit racing with the scan is caught here.
    if (any_queued()) {
      continue;
    }
    const std::uint64_t epoch = wake_epoch_;
    idle_waits_.fetch_add(1, std::memory_order_relaxed);
    sleep_cv_.wait(lock, [&] { return stop_ || wake_epoch_ != epoch; });
  }
}

void ThreadPool::wait(Group& group) {
  while (group.pending_.load(std::memory_order_acquire) != 0) {
    // Helping wait: make progress on ANY queued job rather than sleeping —
    // a nested fork (deferred kernel body forking its chunks while itself
    // occupying a pool thread) needs its waiter to keep executing.
    if (try_run_one(0)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (group.pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (any_queued()) {
      continue;
    }
    const std::uint64_t epoch = wake_epoch_;
    idle_waits_.fetch_add(1, std::memory_order_relaxed);
    sleep_cv_.wait(lock, [&] { return wake_epoch_ != epoch; });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(group.error_mutex_);
    error = std::exchange(group.error_, nullptr);
    group.error_ordinal_ = ~std::uint64_t{0};
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  s.idle_waits = idle_waits_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::reset_stats() {
  executed_.store(0, std::memory_order_relaxed);
  stolen_.store(0, std::memory_order_relaxed);
  idle_waits_.store(0, std::memory_order_relaxed);
}

} // namespace maps::multi
