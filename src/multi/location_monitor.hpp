// The Segment Location Monitor (§4.4, Algorithm 2 of the paper).
//
// Tracks, per datum, which rows are up to date at every location (the host
// and each device slot), plus which rows each location last produced
// (lastOutput). When the scheduler needs a segment on a device, the monitor
// computes the minimal list of copy operations: nothing when the target is
// already up to date; a single copy when one location holds everything;
// otherwise interval intersections against every other device's holdings
// (the paper's N-dimensional rectangle intersections, reduced to row
// intervals — see interval_set.hpp). The upToDate list also caches unmodified
// replicas so repeated reads cost no transfers.
//
// Reductive/unstructured outputs leave the datum "pending aggregation":
// device copies are partial and must not serve as sources; Gather resolves
// the state by aggregating to the host.
#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "multi/datum.hpp"
#include "multi/interval_set.hpp"
#include "multi/pattern_spec.hpp"

namespace maps::multi {

class SegmentLocationMonitor {
public:
  /// Location index convention: 0 = host, 1 + slot = device slot.
  static constexpr int kHost = 0;
  static int loc(int slot) { return slot + 1; }

  explicit SegmentLocationMonitor(int slots);

  /// First use of a datum: its bound host buffer is the authoritative copy.
  void register_datum(const Datum* datum);
  bool known(const Datum* datum) const;

  struct CopyOp {
    int src_location = kHost;
    RowInterval rows;
  };

  /// Algorithm 2: plans the copies making `required` up to date at `target`.
  /// Throws if some rows exist nowhere (reading uninitialized output data).
  ///
  /// `target_holds_slot`: when false, the rows are destined for a buffer
  /// slot that does not correspond to their global position (a Wrap/Clamp
  /// halo slot), so the target's own up-to-date holdings do not satisfy the
  /// requirement — they may, however, serve as the copy's source (an
  /// intra-device transfer when a wrapped boundary folds onto one device).
  std::vector<CopyOp> plan_copies(const Datum* datum, int target,
                                  const RowInterval& required,
                                  bool target_holds_slot = true) const;

  /// Marks rows as valid (unmodified replica) at a location after a copy.
  void mark_copied(const Datum* datum, int target, const RowInterval& rows);
  /// Marks rows as (re)written by `writer`: all other locations' replicas of
  /// those rows become stale.
  void mark_written(const Datum* datum, int writer, const RowInterval& rows);

  const IntervalSet& up_to_date(const Datum* datum, int location) const;
  const IntervalSet& last_output(const Datum* datum, int location) const;

  // --- Aggregation state (Reductive / Unstructured outputs) ----------------
  struct PendingAggregation {
    AggregationKind kind = AggregationKind::None;
    std::function<void(void*, const void*, std::size_t)> op;
    std::vector<int> writer_slots; ///< Slots holding partial copies.
  };
  void set_pending_aggregation(const Datum* datum, PendingAggregation agg);
  const PendingAggregation* pending_aggregation(const Datum* datum) const;
  void clear_pending_aggregation(const Datum* datum);

private:
  struct State {
    std::vector<IntervalSet> up_to_date;  // per location
    std::vector<IntervalSet> last_output; // per location
    PendingAggregation pending;
    bool has_pending = false;
  };
  State& state(const Datum* datum);
  const State& state(const Datum* datum) const;

  int locations_;
  std::map<const void*, State> states_;
};

} // namespace maps::multi
