// The Segment Location Monitor (§4.4, Algorithm 2 of the paper).
//
// Tracks, per datum, which rows are up to date at every location (the host
// and each device slot), plus which rows each location last produced
// (lastOutput). When the scheduler needs a segment on a device, the monitor
// computes the minimal list of copy operations: nothing when the target is
// already up to date; a single copy when one location holds everything;
// otherwise interval intersections against every other device's holdings
// (the paper's N-dimensional rectangle intersections, reduced to row
// intervals — see interval_set.hpp). The upToDate list also caches unmodified
// replicas so repeated reads cost no transfers.
//
// Reductive/unstructured outputs leave the datum "pending aggregation":
// device copies are partial and must not serve as sources; Gather resolves
// the state by aggregating to the host.
//
// For the scheduler's steady-state plan cache the monitor additionally
// maintains, per datum, a monotonically increasing *location epoch* (bumped
// by every state mutation) and a canonical *state snapshot* of the
// up-to-date holdings. A cached task plan is valid exactly when every
// referenced datum's location state equals the state captured at plan time:
// equal epochs prove it cheaply; on epoch mismatch the snapshots decide
// (steady-state loops cycle through a periodic sequence of states, so the
// snapshot comparison is what makes replay possible there).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "multi/datum.hpp"
#include "multi/interval_set.hpp"
#include "multi/pattern_spec.hpp"

namespace maps::multi {

class SegmentLocationMonitor {
public:
  /// Location index convention: 0 = host, 1 + slot = device slot.
  static constexpr int kHost = 0;
  static int loc(int slot) { return slot + 1; }

  explicit SegmentLocationMonitor(int slots);

  /// First use of a datum: its bound host buffer is the authoritative copy.
  void register_datum(const Datum* datum);
  bool known(const Datum* datum) const;

  struct CopyOp {
    int src_location = kHost;
    RowInterval rows;
    /// Path override set by the transfer planner: dispatch this device->device
    /// copy through host RAM (memcpy_p2p_host_staged) even though the peers
    /// could go direct. On cluster topologies with pipelined crossings the
    /// planner uses the bounce as a second candidate path for cross-bus
    /// fan-out, spilling load from the saturated inter-socket link onto the
    /// per-bus host links. Never set by the monitor itself.
    bool via_host = false;
  };

  /// Algorithm 2: plans the copies making `required` up to date at `target`.
  /// Throws if some rows exist nowhere (reading uninitialized output data).
  ///
  /// Source preference: device replicas are scanned before the host, so a
  /// host copy left behind by a Gather never shadows a device-resident one.
  /// The returned ops are canonical — sorted by (source, row) and with
  /// adjacent same-source rows coalesced into one op — so a given location
  /// state always yields the same plan (the scheduler's plan cache and the
  /// transfer planner both rely on this determinism).
  ///
  /// `target_holds_slot`: when false, the rows are destined for a buffer
  /// slot that does not correspond to their global position (a Wrap/Clamp
  /// halo slot), so the target's own up-to-date holdings do not satisfy the
  /// requirement — they may, however, serve as the copy's source (an
  /// intra-device transfer when a wrapped boundary folds onto one device).
  std::vector<CopyOp> plan_copies(const Datum* datum, int target,
                                  const RowInterval& required,
                                  bool target_holds_slot = true) const;

  /// Marks rows as valid (unmodified replica) at a location after a copy.
  /// Clears any "spilled" record for the rows at the target: residency has
  /// returned, so a later eviction of the same rows is a fresh spill.
  void mark_copied(const Datum* datum, int target, const RowInterval& rows);
  /// Marks rows as (re)written by `writer`: all other locations' replicas of
  /// those rows become stale.
  void mark_written(const Datum* datum, int writer, const RowInterval& rows);

  // --- Out-of-core residency ------------------------------------------------

  /// Marks rows as *spilled to host* at a device location: the device buffer
  /// backing them was evicted under the memory budget after their content was
  /// written back, so the location no longer holds them (up-to-date and
  /// last-output are stripped) but the monitor remembers that it once did.
  /// The host's own up-to-date entry is NOT touched here — the scheduler
  /// marks the actual write-back copy via mark_copied(kHost, ...), keeping
  /// Algorithm 2 the single source of refill planning: once the device
  /// holding is gone, any later requirement is served from the host (or a
  /// peer replica) through the ordinary plan_copies path.
  void mark_spilled(const Datum* datum, int location, const RowInterval& rows);
  /// Rows recorded as spilled from `location` and not yet refilled. Used by
  /// the scheduler to classify planned copies landing on previously evicted
  /// rows as refills (SpillStats) rather than first-touch distribution.
  const IntervalSet& spilled(const Datum* datum, int location) const;
  /// Number of datums with rows currently recorded as spilled from
  /// `location`. On a device loss these rows are already host-resident by
  /// construction (the write-back precedes every eviction), so recovery
  /// restores them from the host without re-executing anything — the
  /// scheduler counts them into RecoveryStats::segments_restored_from_host
  /// before dropping the location.
  int spilled_datum_count(int location) const;

  const IntervalSet& up_to_date(const Datum* datum, int location) const;
  const IntervalSet& last_output(const Datum* datum, int location) const;

  // --- Device-loss recovery -------------------------------------------------

  /// A location died: every datum's up-to-date and last-output intervals at
  /// that location are invalidated (the replicas are gone with the device).
  /// Pending-aggregation writer lists are NOT touched — the scheduler's
  /// recovery repairs lost partials explicitly (remove_pending_writer).
  void drop_location(int location);
  /// Invalidates one datum's holdings at one location (used when a device
  /// buffer is reallocated without content migration after a repartition).
  void drop_holdings(const Datum* datum, int location);
  /// Removes a lost device from a pending aggregation's writer list after
  /// its partial contribution has been re-executed and folded into a
  /// survivor's partial.
  void remove_pending_writer(const Datum* datum, int slot);

  // --- Plan-cache validity oracle ------------------------------------------

  /// Label for the datum's location state; 0 for unknown datums. Equal
  /// epochs imply an identical state: every mutation (mark_copied /
  /// mark_written / set_pending_aggregation / clear_pending_aggregation)
  /// stamps the datum with a fresh value from a monitor-global counter, and
  /// restore_state re-applies the exact value captured alongside the state it
  /// restores. Steady-state loops therefore cycle through the *same* epoch
  /// values, keeping the scheduler's cache validation on the integer fast
  /// path instead of the snapshot comparison.
  std::uint64_t epoch(const Datum* datum) const;

  /// Current value of the monitor-global label counter (test introspection:
  /// lets tests assert exactly which operations mint fresh labels and that
  /// restore_state does NOT).
  std::uint64_t epoch_counter() const { return epoch_counter_; }

  /// Appends a canonical encoding of the datum's planning-relevant state
  /// (up-to-date holdings per location, spilled residency records, and the
  /// pending-aggregation flag) to `out`. Spilled records are included even
  /// though Algorithm 2 never consults them: the scheduler's refill
  /// accounting is a function of them, so two states differing only in
  /// residency must not alias in the plan cache.
  /// lastOutput is deliberately excluded: Algorithm 2 never consults it, so
  /// two states with equal snapshots plan identical copies. The encoding is
  /// sparse — only locations that hold anything appear, each tagged with its
  /// index — so snapshot size scales with the holders, not the device count
  /// (at 64 devices a datum typically lives on a handful of them).
  void state_snapshot(const Datum* datum, std::vector<std::uint64_t>& out) const;

  // --- Aggregation state (Reductive / Unstructured outputs) ----------------
  struct PendingAggregation {
    AggregationKind kind = AggregationKind::None;
    std::function<void(void*, const void*, std::size_t)> op;
    std::vector<int> writer_slots; ///< Slots holding partial copies.
  };
  void set_pending_aggregation(const Datum* datum, PendingAggregation agg);
  const PendingAggregation* pending_aggregation(const Datum* datum) const;
  void clear_pending_aggregation(const Datum* datum);

  // --- Plan-replay state restore -------------------------------------------
  /// Deep copy of one datum's planning-relevant location state. The scheduler
  /// captures it right after building a plan; on every cache replay the hit
  /// has already proved the pre-states equal, so the post-state is the same
  /// deterministic function of (plan, pre-state) and can be restored
  /// wholesale instead of re-running mark_copied / mark_written per copy and
  /// output. lastOutput is excluded, mirroring state_snapshot: Algorithm 2
  /// never consults it, and the validity oracle proves nothing about it, so
  /// a replay leaves whatever the live mark path last produced.
  struct StateCopy {
    std::vector<IntervalSet> up_to_date;
    std::vector<IntervalSet> spilled; ///< Out-of-core eviction records.
    std::vector<int> holders; ///< Captured holder index (see State::holders).
    PendingAggregation pending;
    bool has_pending = false;
    std::uint64_t epoch = 0; ///< The label this state carried when captured.
  };
  void capture_state(const Datum* datum, StateCopy& out) const;
  /// Overwrites the datum's state with `sc`, restoring the captured epoch —
  /// epoch values label states, so re-applying a state re-applies its label.
  void restore_state(const Datum* datum, const StateCopy& sc);

private:
  struct State {
    std::vector<IntervalSet> up_to_date;  // per location
    std::vector<IntervalSet> last_output; // per location
    /// Per location: rows once resident here whose device buffer was evicted
    /// under the memory budget ("spilled to host"). Cleared as the rows are
    /// copied or written back in. Always empty in in-core runs.
    std::vector<IntervalSet> spilled;
    /// Holder index: ascending locations whose up_to_date set is non-empty,
    /// maintained by every mutation. Algorithm 2's source scans and the
    /// state snapshot iterate this instead of all locations, keeping both
    /// O(holders) — sub-linear in device count for the common case of a
    /// datum resident on a few devices out of 64.
    std::vector<int> holders;
    PendingAggregation pending;
    bool has_pending = false;
    std::uint64_t epoch = 1;
  };
  State& state(const Datum* datum);
  const State& state(const Datum* datum) const;
  /// Re-syncs one location's membership in the holder index with the
  /// emptiness of its up_to_date set.
  static void sync_holder(State& s, int location);

  int locations_;
  std::uint64_t epoch_counter_ = 1; ///< Source of unique state labels.
  std::unordered_map<const void*, State> states_;
};

} // namespace maps::multi
