// Invoker threads (§4.3): one host thread per device, queuing commands to
// its designated device so copies and kernel launches are issued
// concurrently across devices. Synchronization with the scheduler uses
// flush() barriers; exceptions thrown by jobs are captured and rethrown at
// the next flush.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace maps::multi {

class InvokerThread {
public:
  explicit InvokerThread(int slot);
  ~InvokerThread();
  InvokerThread(const InvokerThread&) = delete;
  InvokerThread& operator=(const InvokerThread&) = delete;

  /// Queues a job (typically: enqueue this task's commands for my device).
  void submit(std::function<void()> job);

  /// Blocks until all submitted jobs completed; rethrows the first captured
  /// job exception, if any.
  void flush();

  int slot() const { return slot_; }

private:
  void run();

  int slot_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::exception_ptr error_;
  bool stop_ = false;
  bool busy_ = false;
  std::thread thread_;
};

} // namespace maps::multi
