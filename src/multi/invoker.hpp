// Invoker threads (§4.3): one host thread per device, queuing commands to
// its designated device so copies and kernel launches are issued
// concurrently across devices. Synchronization with the scheduler uses
// flush() barriers; exceptions thrown by jobs are captured and rethrown at
// the next flush.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace maps::multi {

class InvokerThread {
public:
  explicit InvokerThread(int slot);
  ~InvokerThread();
  InvokerThread(const InvokerThread&) = delete;
  InvokerThread& operator=(const InvokerThread&) = delete;

  /// Queues a job (typically: enqueue this task's commands for my device).
  void submit(std::function<void()> job);

  /// Blocks until all submitted jobs completed; rethrows the first captured
  /// job exception, if any.
  void flush();

  /// Device-loss recovery: discards every queued job and marks the invoker
  /// abandoned — further submit() calls throw std::logic_error. The running
  /// job (if any) completes; flush() still works and still reports captured
  /// errors. Abandoning is irreversible for the invoker's lifetime.
  void abandon();
  bool abandoned() const;

  int slot() const { return slot_; }

  /// Pipeline-health introspection: after a flush() both counters are equal;
  /// a lasting gap means a job died without reporting (validation harnesses
  /// assert the drained invariant). Acquire loads pair with the release
  /// increments on the submitting/worker threads, so the drained-invariant
  /// busy-recheck is race-free (a reader that observes an executed count
  /// also observes the submit that preceded it).
  std::uint64_t jobs_submitted() const {
    return jobs_submitted_.load(std::memory_order_acquire);
  }
  std::uint64_t jobs_executed() const {
    return jobs_executed_.load(std::memory_order_acquire);
  }

private:
  void run();

  int slot_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::exception_ptr error_;
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_executed_{0};
  bool stop_ = false;
  bool busy_ = false;
  bool abandoned_ = false;
  std::thread thread_;
};

} // namespace maps::multi
