#include "multi/segmenter.hpp"

#include <algorithm>
#include <stdexcept>

#include "multi/read_spans.hpp"

namespace maps::multi {

const char* to_string(PatternKind kind) {
  switch (kind) {
  case PatternKind::Block1D: return "Block(1D)";
  case PatternKind::Block2D: return "Block(2D)";
  case PatternKind::Block2DTransposed: return "Block(2D-Transposed)";
  case PatternKind::Window: return "Window(ND)";
  case PatternKind::Adjacency: return "Adjacency";
  case PatternKind::Permutation: return "Permutation";
  case PatternKind::Traversal: return "Traversal";
  case PatternKind::IrregularInput: return "Irregular(input)";
  case PatternKind::StructuredInjective: return "StructuredInjective";
  case PatternKind::UnstructuredInjective: return "UnstructuredInjective";
  case PatternKind::ReductiveStatic: return "Reductive(Static)";
  case PatternKind::ReductiveDynamic: return "Reductive(Dynamic)";
  case PatternKind::IrregularOutput: return "Irregular(output)";
  }
  return "?";
}

TaskPartition make_partition(std::size_t work_rows, std::size_t work_cols,
                             maps::Dim3 block_dim, unsigned ilp_x,
                             unsigned ilp_y, int slots) {
  if (work_rows == 0 || work_cols == 0) {
    throw std::invalid_argument("make_partition: empty work dimensions");
  }
  TaskPartition p;
  p.work_rows = work_rows;
  p.work_cols = work_cols;
  p.block_dim = block_dim;
  p.ilp_x = ilp_x;
  p.ilp_y = ilp_y;
  const std::size_t span_x = static_cast<std::size_t>(block_dim.x) * ilp_x;
  const std::size_t span_y = static_cast<std::size_t>(block_dim.y) * ilp_y;
  p.blocks_x = (work_cols + span_x - 1) / span_x;
  p.blocks_y = (work_rows + span_y - 1) / span_y;

  // Distribute thread-block rows evenly among the devices (§2.1).
  for (int s = 0; s < slots; ++s) {
    const std::size_t b0 = p.blocks_y * static_cast<std::size_t>(s) /
                           static_cast<std::size_t>(slots);
    const std::size_t b1 = p.blocks_y * static_cast<std::size_t>(s + 1) /
                           static_cast<std::size_t>(slots);
    p.block_rows.push_back(RowInterval{b0, b1});
    const std::size_t w0 = std::min(b0 * span_y, work_rows);
    const std::size_t w1 = std::min(b1 * span_y, work_rows);
    p.work_row_ranges.push_back(RowInterval{w0, w1});
  }
  return p;
}

namespace {

/// Emits the copy regions filling halo rows [virtual_begin, virtual_end)
/// (rows outside [0, datum_rows) resolve per the boundary mode).
void emit_halo(const PatternSpec& spec, long virtual_begin, long virtual_end,
               long origin, std::size_t datum_rows,
               std::vector<CopyRegion>& out) {
  const long R = static_cast<long>(datum_rows);
  long v = virtual_begin;
  while (v < virtual_end) {
    const long local = v - origin;
    if (v >= 0 && v < R) {
      // In-range rows: one contiguous copy up to the range end.
      const long run_end = std::min(virtual_end, R);
      out.push_back(CopyRegion{RowInterval{static_cast<std::size_t>(v),
                                           static_cast<std::size_t>(run_end)},
                               local, false});
      v = run_end;
      continue;
    }
    switch (spec.boundary) {
    case maps::Boundary::Wrap: {
      // Contiguous run of wrapped rows.
      const long wrapped = ((v % R) + R) % R;
      long run = std::min(virtual_end - v, R - wrapped);
      if (v < 0) {
        run = std::min(run, -v); // don't run past virtual row 0
      }
      out.push_back(CopyRegion{
          RowInterval{static_cast<std::size_t>(wrapped),
                      static_cast<std::size_t>(wrapped + run)},
          local, false});
      v += run;
      break;
    }
    case maps::Boundary::Clamp: {
      const std::size_t edge = v < 0 ? 0 : datum_rows - 1;
      out.push_back(
          CopyRegion{RowInterval{edge, edge + 1}, local, false});
      ++v;
      break;
    }
    case maps::Boundary::Zero:
      out.push_back(CopyRegion{RowInterval{0, 0}, local, true});
      ++v;
      break;
    case maps::Boundary::NoChecks:
      ++v; // caller guarantees these rows are never read
      break;
    }
  }
}

SegmentReq partition_aligned(const PatternSpec& spec,
                             const TaskPartition& partition, int slot) {
  SegmentReq req;
  const RowInterval work = partition.work_row_ranges[static_cast<std::size_t>(slot)];
  if (work.empty()) {
    return req; // more devices than block rows: this slot idles
  }
  const std::size_t datum_rows = spec.datum->rows();
  std::size_t c0 = spec.scale_rows_begin(work.begin);
  std::size_t c1 = std::min(spec.scale_rows_end(work.end), datum_rows);
  if (c0 >= c1) {
    return req;
  }
  req.active = true;
  req.core = RowInterval{c0, c1};
  req.origin = static_cast<long>(c0) - spec.radius_low;
  req.local_rows = (c1 - c0) + static_cast<std::size_t>(spec.radius_low) +
                   static_cast<std::size_t>(spec.radius_high);

  if (spec.is_input) {
    // Core band.
    req.input_regions.push_back(
        CopyRegion{req.core, spec.radius_low, false});
    // Halos (boundary exchanges / global-edge materialization).
    emit_halo(spec, req.origin, static_cast<long>(c0), req.origin, datum_rows,
              req.input_regions);
    emit_halo(spec, static_cast<long>(c1),
              static_cast<long>(c1) + spec.radius_high, req.origin, datum_rows,
              req.input_regions);
  }
  return req;
}

} // namespace

SegmentReq compute_requirement(const PatternSpec& spec,
                               const TaskPartition& partition, int slot) {
  if (spec.datum == nullptr) {
    throw std::invalid_argument("pattern has no datum");
  }
  switch (spec.seg) {
  case Segmentation::PartitionAligned:
    return partition_aligned(spec, partition, slot);

  case Segmentation::Replicate: {
    SegmentReq req;
    req.active = !partition.work_row_ranges[static_cast<std::size_t>(slot)]
                      .empty();
    if (!req.active) {
      return req;
    }
    req.whole = true;
    req.origin = 0;
    req.local_rows = spec.datum->rows();
    req.core = RowInterval{0, spec.datum->rows()};
    if (spec.is_input) {
      req.input_regions.push_back(CopyRegion{req.core, 0, false});
    }
    return req;
  }

  case Segmentation::DuplicateFull: {
    SegmentReq req;
    req.active = !partition.work_row_ranges[static_cast<std::size_t>(slot)]
                      .empty();
    if (!req.active) {
      return req;
    }
    req.whole = true;
    req.private_copy = true;
    req.origin = 0;
    req.local_rows = spec.datum->rows();
    req.core = RowInterval{0, spec.datum->rows()};
    // Reductive/unstructured partials accumulate from zero (§3.2: data
    // duplication and aggregation).
    req.input_regions.push_back(
        CopyRegion{RowInterval{0, req.local_rows}, 0, true});
    return req;
  }

  case Segmentation::DynamicAppend: {
    SegmentReq req;
    const RowInterval work =
        partition.work_row_ranges[static_cast<std::size_t>(slot)];
    if (work.empty()) {
      return req;
    }
    req.active = true;
    req.private_copy = true;
    req.origin = 0;
    // Capacity: Reductive (Dynamic) emits at most one output per local work
    // row; Irregular outputs have unknown per-thread counts (§3.2), so each
    // device gets the full datum capacity.
    req.local_rows =
        spec.kind == PatternKind::IrregularOutput
            ? spec.datum->rows()
            : std::min(spec.scale_rows_end(work.end) -
                           spec.scale_rows_begin(work.begin),
                       spec.datum->rows());
    req.core = RowInterval{0, req.local_rows};
    return req;
  }

  case Segmentation::CustomAligned: {
    SegmentReq req;
    const RowInterval work =
        partition.work_row_ranges[static_cast<std::size_t>(slot)];
    if (work.empty() || !spec.custom_rows) {
      return req;
    }
    const auto [r0, r1] = spec.custom_rows(work.begin, work.end);
    if (r0 >= r1) {
      return req;
    }
    req.active = true;
    req.core = RowInterval{r0, r1};
    req.origin = static_cast<long>(r0);
    req.local_rows = r1 - r0;
    if (spec.is_input) {
      req.input_regions.push_back(CopyRegion{req.core, 0, false});
    }
    return req;
  }

  case Segmentation::SingleDevice: {
    SegmentReq req;
    if (slot != 0) {
      return req;
    }
    req.active = true;
    req.whole = true;
    req.origin = 0;
    req.local_rows = spec.datum->rows();
    req.core = RowInterval{0, spec.datum->rows()};
    if (spec.is_input) {
      req.input_regions.push_back(CopyRegion{req.core, 0, false});
    }
    return req;
  }
  }
  throw std::logic_error("unknown segmentation kind");
}

void split_read_rows(const SegmentReq& req, std::vector<RowInterval>& aligned,
                     std::vector<RowInterval>& halo) {
  for (const CopyRegion& region : req.input_regions) {
    if (region.zero_fill || region.global.empty()) {
      continue;
    }
    // Same alignment test the scheduler uses to decide whether a region's
    // rows land at their global position (plan_copies_for).
    (region_lands_aligned(region, req.origin) ? aligned : halo)
        .push_back(region.global);
  }
}

std::vector<StripRange> compute_strips(const std::vector<PatternSpec>& specs,
                                       const TaskPartition& partition, int slot,
                                       const std::vector<SegmentReq>& reqs) {
  const RowInterval br = partition.block_rows[static_cast<std::size_t>(slot)];
  if (br.size() < 2) {
    return {};
  }
  const std::size_t span = partition.rows_per_block_row();

  // A block row is boundary when any windowed input's read range leaves the
  // slot's core band — reads served through halo rows (interior halos copied
  // from peers, or Wrap/Clamp/Zero slots refilled each task).
  const auto is_boundary = [&](std::size_t y) {
    const std::size_t w0 = y * span;
    const std::size_t w1 = std::min((y + 1) * span, partition.work_rows);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const PatternSpec& s = specs[i];
      const SegmentReq& req = reqs[i];
      if (!s.is_input || !req.active ||
          s.seg != Segmentation::PartitionAligned ||
          (s.radius_low == 0 && s.radius_high == 0)) {
        continue;
      }
      const long lo = read_span_lo(s, w0);
      const long hi = read_span_hi(s, w1);
      if (lo < static_cast<long>(req.core.begin) ||
          hi > static_cast<long>(req.core.end)) {
        return true;
      }
    }
    return false;
  };

  std::size_t top = 0;
  while (top < br.size() && is_boundary(br.begin + top)) {
    ++top;
  }
  if (top == br.size()) {
    return {}; // no interior: the segment is thinner than its halo reach
  }
  std::size_t bottom = 0;
  while (bottom < br.size() - top && is_boundary(br.end - 1 - bottom)) {
    ++bottom;
  }
  if (top == 0 && bottom == 0) {
    return {}; // nothing waits on halo traffic; a single launch is optimal
  }

  std::vector<StripRange> strips;
  if (top > 0) {
    strips.push_back(StripRange{RowInterval{br.begin, br.begin + top}, true});
  }
  strips.push_back(
      StripRange{RowInterval{br.begin + top, br.end - bottom}, false});
  if (bottom > 0) {
    strips.push_back(StripRange{RowInterval{br.end - bottom, br.end}, true});
  }
  return strips;
}

StripShape strip_halo_blocks(const std::vector<PatternSpec>& specs,
                             std::size_t rows_per_block_row) {
  StripShape shape;
  const std::size_t span = rows_per_block_row == 0 ? 1 : rows_per_block_row;
  for (const PatternSpec& s : specs) {
    if (!s.is_input || s.seg != Segmentation::PartitionAligned ||
        (s.radius_low == 0 && s.radius_high == 0)) {
      continue;
    }
    shape.any = true;
    // Block row k of a slot is boundary below iff k·span < radius_low, i.e.
    // for the first ceil(radius_low / span) rows; symmetrically above.
    shape.lead = std::max(
        shape.lead, (static_cast<std::size_t>(s.radius_low) + span - 1) / span);
    shape.trail = std::max(
        shape.trail,
        (static_cast<std::size_t>(s.radius_high) + span - 1) / span);
  }
  return shape;
}

unsigned exec_chunk_block_rows(unsigned block_rows,
                               std::size_t bytes_per_block_row,
                               unsigned parallelism) {
  if (block_rows <= 1 || parallelism <= 1) {
    return block_rows == 0 ? 1 : block_rows;
  }
  // ~4 chunks per thread for load balancing under stealing.
  const unsigned target_chunks = 4 * parallelism;
  unsigned chunk = (block_rows + target_chunks - 1) / target_chunks;
  // Cache-interference cap: keep one chunk's touched bytes near a per-core
  // L2 budget so concurrently sweeping chunks stay cache-resident.
  constexpr std::size_t kChunkCacheBytes = 1u << 20;
  if (bytes_per_block_row > 0) {
    const std::size_t cap =
        std::max<std::size_t>(1, kChunkCacheBytes / bytes_per_block_row);
    chunk = static_cast<unsigned>(
        std::min<std::size_t>(chunk, cap));
  }
  return std::max(1u, std::min(chunk, block_rows));
}

std::size_t streaming_window_block_rows(std::size_t bytes_per_block_row,
                                        std::size_t persistent_bytes,
                                        std::size_t budget_bytes,
                                        std::size_t total_block_rows) {
  if (budget_bytes <= persistent_bytes || bytes_per_block_row == 0) {
    return 0;
  }
  const std::size_t windowed = budget_bytes - persistent_bytes;
  // Two windows must fit: the executing pass and the prefetched next pass.
  const std::size_t w = windowed / (2 * bytes_per_block_row);
  return std::min(w, total_block_rows);
}

} // namespace maps::multi
