#include "multi/sanitizer.hpp"

#include <algorithm>

namespace maps::multi {

// --- VersionMap --------------------------------------------------------------

void VersionMap::assign(const RowInterval& rows, std::uint64_t version) {
  if (rows.empty()) {
    return;
  }
  std::vector<VersionedRange> out;
  out.reserve(entries_.size() + 2);
  for (const VersionedRange& e : entries_) {
    if (e.rows.end <= rows.begin || e.rows.begin >= rows.end) {
      out.push_back(e);
      continue;
    }
    if (e.rows.begin < rows.begin) {
      out.push_back({RowInterval{e.rows.begin, rows.begin}, e.version});
    }
    if (e.rows.end > rows.end) {
      out.push_back({RowInterval{rows.end, e.rows.end}, e.version});
    }
  }
  if (version != 0) {
    out.push_back({rows, version});
  }
  std::sort(out.begin(), out.end(),
            [](const VersionedRange& a, const VersionedRange& b) {
              return a.rows.begin < b.rows.begin;
            });
  // Coalesce adjacent ranges at the same version.
  entries_.clear();
  for (const VersionedRange& e : out) {
    if (!entries_.empty() && entries_.back().version == e.version &&
        entries_.back().rows.end == e.rows.begin) {
      entries_.back().rows.end = e.rows.end;
    } else {
      entries_.push_back(e);
    }
  }
}

void VersionMap::assign_from(const VersionMap& src, const RowInterval& rows) {
  if (rows.empty()) {
    return;
  }
  std::vector<VersionedRange> pieces;
  src.query(rows, pieces);
  for (const VersionedRange& p : pieces) {
    assign(p.rows, p.version);
  }
}

void VersionMap::query(const RowInterval& rows,
                       std::vector<VersionedRange>& out) const {
  if (rows.empty()) {
    return;
  }
  std::size_t cursor = rows.begin;
  for (const VersionedRange& e : entries_) {
    if (e.rows.end <= cursor) {
      continue;
    }
    if (e.rows.begin >= rows.end) {
      break;
    }
    const std::size_t lo = std::max(e.rows.begin, cursor);
    if (lo > cursor) {
      out.push_back({RowInterval{cursor, lo}, 0});
    }
    const std::size_t hi = std::min(e.rows.end, rows.end);
    out.push_back({RowInterval{lo, hi}, e.version});
    cursor = hi;
    if (cursor >= rows.end) {
      break;
    }
  }
  if (cursor < rows.end) {
    out.push_back({RowInterval{cursor, rows.end}, 0});
  }
}

std::uint64_t VersionMap::at(std::size_t row) const {
  for (const VersionedRange& e : entries_) {
    if (row >= e.rows.begin && row < e.rows.end) {
      return e.version;
    }
  }
  return 0;
}

// --- AccessSanitizer ---------------------------------------------------------

namespace {
std::string rows_str(const RowInterval& iv) {
  return "[" + std::to_string(iv.begin) + ", " + std::to_string(iv.end) + ")";
}
} // namespace

AccessSanitizer::AccessSanitizer(int slots) : locations_(slots + 1) {}

void AccessSanitizer::begin_context(std::uint64_t task,
                                    const std::string& label) {
  task_ = task;
  label_ = label;
  ++stats_.tasks_checked;
}

AccessSanitizer::ShadowState& AccessSanitizer::ensure(const Datum* datum) {
  auto it = states_.find(datum->key());
  if (it != states_.end()) {
    return it->second;
  }
  ShadowState s;
  s.held.resize(static_cast<std::size_t>(locations_));
  if (datum->bound()) {
    // The bound host buffer is the initial authoritative copy (mirrors
    // SegmentLocationMonitor::register_datum).
    const RowInterval whole{0, datum->rows()};
    s.latest.assign(whole, 1);
    s.held[kHost].assign(whole, 1);
    s.next_version = 2;
  }
  return states_.emplace(datum->key(), std::move(s)).first->second;
}

std::string AccessSanitizer::location_name(int location) const {
  return location == kHost ? std::string("host")
                           : "device " + std::to_string(location - 1);
}

std::string AccessSanitizer::context() const {
  return "task #" + std::to_string(task_) + " (" + label_ + ")";
}

int AccessSanitizer::find_holder(const ShadowState& s, const RowInterval& rows,
                                 std::uint64_t version) const {
  for (int l = 0; l < locations_; ++l) {
    std::vector<VersionedRange> pieces;
    s.held[static_cast<std::size_t>(l)].query(rows, pieces);
    if (!pieces.empty() &&
        std::all_of(pieces.begin(), pieces.end(),
                    [&](const VersionedRange& p) {
                      return p.version == version;
                    })) {
      return l;
    }
  }
  return -1;
}

void AccessSanitizer::fail_stale(const Datum* datum, int location,
                                 const VersionedRange& held_piece,
                                 std::uint64_t latest_version,
                                 const char* role) {
  ShadowState& s = ensure(datum);
  const int holder = find_holder(s, held_piece.rows, latest_version);
  std::string msg = "access sanitizer: " + context() + ": " +
                    location_name(location) + " " + role + " datum '" +
                    datum->name() + "' rows " + rows_str(held_piece.rows);
  if (held_piece.version == 0) {
    msg += " which it does not hold at all";
  } else {
    msg += " at stale version " + std::to_string(held_piece.version);
  }
  msg += "; the latest is version " + std::to_string(latest_version);
  if (holder >= 0) {
    msg += " (held at " + location_name(holder) + ")";
    msg += ". The location monitor should have scheduled a copy " +
           location_name(holder) + " -> " + location_name(location) +
           " of rows " + rows_str(held_piece.rows) + " before this task";
  } else {
    msg += ", which no location currently holds (lost update or unresolved "
           "aggregation)";
  }
  throw SanitizerError(msg);
}

void AccessSanitizer::check_fresh(const Datum* datum, int location,
                                  const RowInterval& rows, const char* role) {
  ShadowState& s = ensure(datum);
  if (s.pending_aggregation) {
    throw SanitizerError(
        "access sanitizer: " + context() + ": datum '" + datum->name() +
        "' rows " + rows_str(rows) + " are unaggregated partial copies (" +
        location_name(location) + " " + role +
        " them); Gather or ReduceScatter must resolve the datum first");
  }
  scratch_held_.clear();
  scratch_latest_.clear();
  s.held[static_cast<std::size_t>(location)].query(rows, scratch_held_);
  s.latest.query(rows, scratch_latest_);
  // Both piece lists partition `rows`; merge-walk their boundaries.
  std::size_t hi = 0, li = 0;
  std::size_t cursor = rows.begin;
  while (cursor < rows.end) {
    while (scratch_held_[hi].rows.end <= cursor) {
      ++hi;
    }
    while (scratch_latest_[li].rows.end <= cursor) {
      ++li;
    }
    const std::size_t piece_end =
        std::min(scratch_held_[hi].rows.end, scratch_latest_[li].rows.end);
    if (scratch_held_[hi].version != scratch_latest_[li].version) {
      fail_stale(datum, location,
                 VersionedRange{RowInterval{cursor, piece_end},
                                scratch_held_[hi].version},
                 scratch_latest_[li].version, role);
    }
    cursor = piece_end;
  }
}

void AccessSanitizer::on_copy(const Datum* datum, int src_location,
                              int dst_location, const RowInterval& rows) {
  ++stats_.copies_checked;
  check_fresh(datum, src_location, rows, "sources a copy from");
  ShadowState& s = ensure(datum);
  s.held[static_cast<std::size_t>(dst_location)].assign_from(s.latest, rows);
}

void AccessSanitizer::on_halo_source(const Datum* datum, int src_location,
                                     const RowInterval& rows) {
  ++stats_.copies_checked;
  check_fresh(datum, src_location, rows, "sources a halo copy from");
}

void AccessSanitizer::on_read(const Datum* datum, int location,
                              const RowInterval& rows) {
  ++stats_.rects_checked;
  check_fresh(datum, location, rows, "reads");
}

void AccessSanitizer::report_missing_halo(const Datum* datum, int location,
                                          const RowInterval& rows) {
  throw SanitizerError(
      "access sanitizer: " + context() + ": " + location_name(location) +
      " reads datum '" + datum->name() + "' rows " + rows_str(rows) +
      " through a boundary halo slot that was not refilled by this task (the "
      "planned Wrap/Clamp boundary copy is missing or was dropped)");
}

void AccessSanitizer::report_ungated_strip(const Datum* datum, int location,
                                           const RowInterval& strip_rows,
                                           const RowInterval& copy_rows) {
  throw SanitizerError(
      "access sanitizer: " + context() + ": " + location_name(location) +
      " sub-kernel strip reads datum '" + datum->name() + "' local rows " +
      rows_str(strip_rows) + " overlapping an inferred copy into local rows " +
      rows_str(copy_rows) +
      " that does not gate the strip (compute-transfer overlap would race "
      "the halo/chunk transfer)");
}

void AccessSanitizer::on_write(const Datum* datum, int writer,
                               const RowInterval& rows) {
  ++stats_.writes_recorded;
  ShadowState& s = ensure(datum);
  const std::uint64_t v = s.next_version++;
  s.latest.assign(rows, v);
  // Peers' replicas of `rows` now differ from `latest` and are implicitly
  // stale; only the writer advances.
  s.held[static_cast<std::size_t>(writer)].assign(rows, v);
}

void AccessSanitizer::on_pending_aggregation(const Datum* datum) {
  ShadowState& s = ensure(datum);
  const std::uint64_t v = s.next_version++;
  s.latest.assign(RowInterval{0, datum->rows()}, v);
  for (VersionMap& h : s.held) {
    h.clear(); // every replica is a partial copy, valid nowhere
  }
  s.pending_aggregation = true;
}

void AccessSanitizer::on_aggregation_resolved_host(const Datum* datum) {
  ShadowState& s = ensure(datum);
  s.pending_aggregation = false;
  const std::uint64_t v = s.next_version++;
  const RowInterval whole{0, datum->rows()};
  s.latest.assign(whole, v);
  s.held[kHost].assign(whole, v);
}

void AccessSanitizer::on_aggregation_scattered(const Datum* datum) {
  ensure(datum).pending_aggregation = false;
}

void AccessSanitizer::on_host_write(const Datum* datum) {
  // Deliberately leaves pending_aggregation untouched: the monitor keeps its
  // pending flag through MarkHostModified too, and the next read reports it.
  ShadowState& s = ensure(datum);
  const std::uint64_t v = s.next_version++;
  const RowInterval whole{0, datum->rows()};
  s.latest.assign(whole, v);
  for (VersionMap& h : s.held) {
    h.assign(whole, 0); // erase every device replica
  }
  s.held[kHost].assign(whole, v);
}

void AccessSanitizer::on_device_lost(int location) {
  for (auto& [key, s] : states_) {
    s.held[static_cast<std::size_t>(location)].clear();
    if (s.pending_aggregation) {
      // The whole-datum bump stays: partials are valid nowhere by definition,
      // and the recovery's fold repair resolves the datum like a Gather would.
      continue;
    }
    // Rewind `latest` to the pointwise maximum any survivor still holds.
    // Invariant for non-pending datums: latest == pointwise-max over held —
    // every mint (on_write / on_host_write / resolved_host) stamps its holder,
    // and with host mirroring the host tracks every committed write. Applying
    // all surviving pieces in ascending version order rebuilds that maximum.
    std::vector<VersionedRange> pieces;
    for (const VersionMap& h : s.held) {
      const auto& es = h.entries();
      pieces.insert(pieces.end(), es.begin(), es.end());
    }
    std::sort(pieces.begin(), pieces.end(),
              [](const VersionedRange& a, const VersionedRange& b) {
                return a.version < b.version;
              });
    VersionMap rebuilt;
    for (const VersionedRange& p : pieces) {
      rebuilt.assign(p.rows, p.version);
    }
    s.latest = std::move(rebuilt);
    // next_version is NOT rewound: re-executed repair writes mint versions
    // strictly above anything any replica carries.
  }
}

void AccessSanitizer::on_holdings_dropped(const Datum* datum, int location) {
  ensure(datum).held[static_cast<std::size_t>(location)].clear();
}

const VersionMap& AccessSanitizer::latest(const Datum* datum) {
  return ensure(datum).latest;
}

const VersionMap& AccessSanitizer::held(const Datum* datum, int location) {
  return ensure(datum).held[static_cast<std::size_t>(location)];
}

} // namespace maps::multi
