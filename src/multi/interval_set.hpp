// Half-open row-interval arithmetic used by the Segment Location Monitor and
// the Scheduler's dependency tracking.
//
// All MAPS-Multi transfers in this reproduction are bands of whole rows along
// the partition dimension (DESIGN.md §5), so the N-dimensional rectangle
// intersections of the paper's Algorithm 2 reduce to 1-D interval algebra on
// row ranges. The operations here are exactly the primitives that algorithm
// needs: intersection, subtraction and coverage tests over sorted disjoint
// interval sets.
//
// IntervalEventMap / AccessIntervalMap track which simulated event produced
// (or last accessed) each row range of a buffer. Both keep their entries
// sorted and disjoint, so lookups binary-search to the affected range and
// updates splice it in place — O(log n + k) instead of the linear scans a
// flat (interval, event) list needs. Adjacent ranges carrying the same
// event(s) are merged on insert, so steady-state loops that repeatedly touch
// the same bands keep the maps at their natural, bounded size.
#pragma once

#include <cstddef>
#include <vector>

namespace maps::multi {

/// Half-open interval of global datum rows: [begin, end).
struct RowInterval {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
  friend bool operator==(const RowInterval&, const RowInterval&) = default;
};

/// Intersection of two intervals (empty interval when disjoint).
RowInterval intersect(const RowInterval& a, const RowInterval& b);

/// A set of disjoint, sorted intervals.
class IntervalSet {
public:
  IntervalSet() = default;
  explicit IntervalSet(std::vector<RowInterval> intervals);

  void add(RowInterval iv);    ///< Union with one interval (merges).
  void remove(RowInterval iv); ///< Set difference with one interval.
  void clear() { intervals_.clear(); }

  bool covers(const RowInterval& iv) const;
  bool empty() const { return intervals_.empty(); }
  std::size_t total_rows() const;

  /// Portions of `iv` contained in this set.
  std::vector<RowInterval> intersection_with(const RowInterval& iv) const;
  /// Portions of `iv` NOT contained in this set.
  std::vector<RowInterval> missing_from(const RowInterval& iv) const;

  const std::vector<RowInterval>& intervals() const { return intervals_; }

private:
  void normalize();
  std::vector<RowInterval> intervals_;
};

/// Tracks which simulated event made each row range of a buffer available at
/// one location. Availability must be range-granular: a halo fill into a
/// device must not serialize peers that read the device's core rows (coarse
/// per-location events recreate the very exchange-ring serialization the
/// framework exists to avoid). Entries are sorted, disjoint, and coalesced
/// when adjacent ranges share a producing event.
class IntervalEventMap {
public:
  /// Overwrites the range with a new producing event.
  void update(const RowInterval& rows, int event);
  /// Events producing any part of the range, appended to `out` and
  /// deduplicated against out[dedup_from..] (callers packing several wait
  /// lists into one flat pool dedup only within their own range).
  void collect(const RowInterval& rows, std::vector<int>& out,
               std::size_t dedup_from = 0) const;

  std::size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

private:
  struct Entry {
    RowInterval iv;
    int event = 0;
  };
  void coalesce_around(std::size_t lo, std::size_t hi);
  std::vector<Entry> entries_; ///< sorted by iv.begin, disjoint
};

/// Range-granular access ordering for one buffer at one location, in LOCAL
/// buffer rows. Writers must wait for every prior reader/writer of the rows
/// they touch (WAR/WAW); readers accumulate per range and are compacted by
/// the next write of those rows (the write already waited on them, so any
/// later writer is ordered transitively). Readers are stored as a sorted
/// disjoint interval map onto event sets: registering the same (range,
/// event) twice is a no-op, so reader lists stay bounded across steady-state
/// loops instead of growing with every task.
class AccessIntervalMap {
public:
  void add_reader(const RowInterval& rows, int event);
  /// Registers a write: waits-for semantics are obtained by calling
  /// collect() first; write() then supersedes all overlapped entries.
  void write(const RowInterval& rows, int event);
  /// Events of every reader/writer overlapping the range, appended to `out`
  /// and deduplicated against out[dedup_from..].
  void collect(const RowInterval& rows, std::vector<int>& out,
               std::size_t dedup_from = 0) const;

  std::size_t entry_count() const {
    return writers_.size() + readers_.size();
  }
  std::size_t reader_entry_count() const { return readers_.size(); }
  void clear() {
    writers_.clear();
    readers_.clear();
  }

private:
  struct Writer {
    RowInterval iv;
    int event = 0;
  };
  struct Readers {
    RowInterval iv;
    std::vector<int> events;
  };
  void coalesce_writers_around(std::size_t lo, std::size_t hi);
  void coalesce_readers_around(std::size_t lo, std::size_t hi);
  std::vector<Writer> writers_;   ///< sorted, disjoint
  std::vector<Readers> readers_;  ///< sorted, disjoint
  std::vector<Readers> repl_scratch_; ///< add_reader splice staging, reused
};

} // namespace maps::multi
