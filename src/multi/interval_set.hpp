// Half-open row-interval arithmetic used by the Segment Location Monitor.
//
// All MAPS-Multi transfers in this reproduction are bands of whole rows along
// the partition dimension (DESIGN.md §5), so the N-dimensional rectangle
// intersections of the paper's Algorithm 2 reduce to 1-D interval algebra on
// row ranges. The operations here are exactly the primitives that algorithm
// needs: intersection, subtraction and coverage tests over sorted disjoint
// interval sets.
#pragma once

#include <cstddef>
#include <vector>

namespace maps::multi {

/// Half-open interval of global datum rows: [begin, end).
struct RowInterval {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
  friend bool operator==(const RowInterval&, const RowInterval&) = default;
};

/// Intersection of two intervals (empty interval when disjoint).
RowInterval intersect(const RowInterval& a, const RowInterval& b);

/// A set of disjoint, sorted intervals.
class IntervalSet {
public:
  IntervalSet() = default;
  explicit IntervalSet(std::vector<RowInterval> intervals);

  void add(RowInterval iv);    ///< Union with one interval (merges).
  void remove(RowInterval iv); ///< Set difference with one interval.
  void clear() { intervals_.clear(); }

  bool covers(const RowInterval& iv) const;
  bool empty() const { return intervals_.empty(); }
  std::size_t total_rows() const;

  /// Portions of `iv` contained in this set.
  std::vector<RowInterval> intersection_with(const RowInterval& iv) const;
  /// Portions of `iv` NOT contained in this set.
  std::vector<RowInterval> missing_from(const RowInterval& iv) const;

  const std::vector<RowInterval>& intervals() const { return intervals_; }

private:
  void normalize();
  std::vector<RowInterval> intervals_;
};

} // namespace maps::multi
